//! Small statistical helpers shared by the progress reporter and the
//! framework proper.

/// 95% Wilson score interval for a binomial proportion.
///
/// This is the canonical implementation for the workspace —
/// `fidelity_core::campaign::wilson_interval` delegates here, the live
/// progress line uses it for its running masking-probability bounds, and the
/// adaptive campaign planner's per-stratum termination rule leans on it (the
/// paper sizes campaigns for a 95% confidence target).
pub fn wilson95(successes: usize, n: usize) -> (f64, f64) {
    wilson(successes, n, Z95)
}

/// The standard-normal quantile behind [`wilson95`].
pub const Z95: f64 = 1.959_964;

/// Wilson score interval at an explicit standard-normal quantile `z`.
///
/// `n == 0` returns the vacuous `(0, 1)` interval: with no observations
/// every proportion is plausible, which is exactly the reading the adaptive
/// planner needs (an unsampled stratum is maximally uncertain, never
/// spuriously resolved).
pub fn wilson(successes: usize, n: usize, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let centre = p + z2 / (2.0 * nf);
    let margin = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

/// The standard-normal quantile for a supported two-sided confidence level.
///
/// The planner only accepts levels with a pinned quantile — deriving z at
/// runtime would need an inverse-normal approximation whose low-order bits
/// could drift between implementations and break checkpoint bit-identity.
pub fn z_for_confidence(confidence: f64) -> Option<f64> {
    // Bit-exact match: the supported levels are spec constants, not
    // measured quantities, so a caller holding anything but the literal
    // constant should be rejected rather than fuzzily accepted.
    const BITS_90: u64 = 0.90f64.to_bits();
    const BITS_95: u64 = 0.95f64.to_bits();
    const BITS_99: u64 = 0.99f64.to_bits();
    match confidence.to_bits() {
        BITS_90 => Some(1.644_854),
        BITS_95 => Some(Z95),
        BITS_99 => Some(2.575_829),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interval_brackets_the_point_estimate() {
        let (lo, hi) = wilson95(50, 100);
        assert!(lo < 0.5 && hi > 0.5);
        assert_eq!(wilson95(0, 0), (0.0, 1.0));
        assert!(wilson95(0, 10).0.abs() < 1e-12);
        assert!((wilson95(10, 10).1 - 1.0).abs() < 1e-12);
    }

    /// n = 0 is the vacuous interval regardless of the success count the
    /// caller claims (the planner treats unsampled strata as maximally
    /// uncertain).
    #[test]
    fn zero_samples_is_vacuous() {
        assert_eq!(wilson95(0, 0), (0.0, 1.0));
        assert_eq!(wilson95(7, 0), (0.0, 1.0));
        assert_eq!(wilson(0, 0, 2.575_829), (0.0, 1.0));
    }

    /// Degenerate proportions stay pinned to their endpoint: p̂ = 0 keeps
    /// lo = 0, p̂ = 1 keeps hi = 1, and the opposite bound pulls strictly
    /// inside (0, 1) — the Wilson interval never collapses to a point on
    /// finite n.
    #[test]
    fn degenerate_proportions_hug_one_endpoint_only() {
        for n in [1usize, 2, 10, 1000] {
            let (lo0, hi0) = wilson95(0, n);
            assert!(lo0.abs() < 1e-12, "n={n}: lo={lo0}");
            assert!(hi0 > 0.0 && hi0 < 1.0, "n={n}: hi={hi0}");
            let (lo1, hi1) = wilson95(n, n);
            assert!((hi1 - 1.0).abs() < 1e-12, "n={n}: hi={hi1}");
            assert!(lo1 > 0.0 && lo1 < 1.0, "n={n}: lo={lo1}");
        }
    }

    /// A single observation is nearly vacuous but already informative: both
    /// orderings bracket p̂ and the interval is strictly narrower than (0,1).
    #[test]
    fn single_sample_is_wide_but_proper() {
        for (s, n) in [(0usize, 1usize), (1, 1)] {
            let (lo, hi) = wilson95(s, n);
            assert!(lo >= 0.0 && hi <= 1.0);
            assert!(hi - lo < 1.0, "({s},{n}): width {}", hi - lo);
            let p = s as f64 / n as f64;
            assert!(lo <= p && p <= hi, "({s},{n}): [{lo},{hi}] vs {p}");
        }
    }

    /// Huge n: the interval contracts toward p̂ without numerical blowup,
    /// and the half-width tracks the 1/sqrt(n) rate.
    #[test]
    fn huge_n_contracts_without_blowup() {
        let n = 1_000_000_000usize;
        let (lo, hi) = wilson95(n / 2, n);
        assert!(lo.is_finite() && hi.is_finite());
        assert!(lo < 0.5 && hi > 0.5);
        let hw = (hi - lo) / 2.0;
        // z/2 * 1/sqrt(n) ≈ 3.1e-5 at p = 0.5.
        assert!(hw > 1e-6 && hw < 1e-4, "half-width {hw}");
        // Degenerate extremes stay pinned at scale, too.
        assert!(wilson95(0, n).0.abs() < 1e-12);
        assert!((wilson95(n, n).1 - 1.0).abs() < 1e-12);
    }

    /// Higher confidence must widen the interval (z = 1.64 < 1.96 < 2.58).
    #[test]
    fn interval_widens_with_confidence() {
        let z90 = z_for_confidence(0.90).unwrap();
        let z95 = z_for_confidence(0.95).unwrap();
        let z99 = z_for_confidence(0.99).unwrap();
        let width = |z: f64| {
            let (lo, hi) = wilson(30, 100, z);
            hi - lo
        };
        assert!(width(z90) < width(z95));
        assert!(width(z95) < width(z99));
        assert_eq!(z_for_confidence(0.42), None);
        assert_eq!(z_for_confidence(f64::NAN), None);
    }

    proptest! {
        /// The interval always contains the point estimate and stays inside
        /// [0, 1], for any (successes ≤ n) pair.
        #[test]
        fn interval_always_contains_p_hat(n in 1usize..5000, frac in 0.0f64..1.05) {
            let s = ((n as f64) * frac).round() as usize;
            let s = s.min(n);
            let (lo, hi) = wilson95(s, n);
            let p = s as f64 / n as f64;
            prop_assert!((0.0..=1.0).contains(&lo));
            prop_assert!((0.0..=1.0).contains(&hi));
            prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12,
                "[{lo}, {hi}] must contain {p} (s={s}, n={n})");
        }

        /// Monotone narrowing: at a fixed proportion, growing n never widens
        /// the interval (the planner's waves rely on extra samples always
        /// buying confidence).
        #[test]
        fn interval_narrows_monotonically_in_n(base in 1usize..400, frac in 0.0f64..1.05, steps in 1usize..6) {
            let width_at = |n: usize| {
                let s = ((n as f64) * frac).round() as usize;
                let (lo, hi) = wilson95(s.min(n), n);
                hi - lo
            };
            let mut n = base;
            let mut w = width_at(n);
            for _ in 0..steps {
                // Scale n so the realizable proportion stays (nearly) fixed;
                // doubling keeps s/n exactly proportional when s doubles.
                n *= 2;
                let next = width_at(n);
                prop_assert!(next <= w + 1e-9,
                    "width grew from {w} to {next} at n={n} (frac={frac})");
                w = next;
            }
        }
    }
}
