//! Small statistical helpers shared by the progress reporter and the
//! framework proper.

/// 95% Wilson score interval for a binomial proportion.
///
/// This is the canonical implementation for the workspace —
/// `fidelity_core::campaign::wilson_interval` delegates here, and the live
/// progress line uses it for its running masking-probability bounds (the
/// paper sizes campaigns for a 95% confidence target).
pub fn wilson95(successes: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_964f64;
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let centre = p + z2 / (2.0 * nf);
    let margin = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_point_estimate() {
        let (lo, hi) = wilson95(50, 100);
        assert!(lo < 0.5 && hi > 0.5);
        assert_eq!(wilson95(0, 0), (0.0, 1.0));
        assert!(wilson95(0, 10).0.abs() < 1e-12);
        assert!((wilson95(10, 10).1 - 1.0).abs() < 1e-12);
    }
}
