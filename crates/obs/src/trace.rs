//! Span/event tracing: typed events, the sink abstraction, and the JSONL
//! file sink.
//!
//! Emission goes through the global facade in the crate root ([`crate::event!`],
//! [`crate::span!`], [`crate::emit_event`]); this module defines what an
//! event *is* and where it goes. Everything here runs on campaign worker
//! threads, so it must never panic and never block longer than one buffered
//! write.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::clock;
use crate::json;
use crate::metrics;

/// A typed field value. Borrowed strings keep the hot path allocation-free;
/// temporaries in an [`crate::event!`] call live until the end of the
/// emitting statement, which is all the sink needs (sinks serialize or copy
/// before returning).
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// An unsigned integer (counts, indices, durations).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (probabilities, rates). Non-finite values serialize as null.
    F64(f64),
    /// A borrowed string (names, reasons).
    Str(&'a str),
    /// A boolean flag.
    Bool(bool),
}

macro_rules! value_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl<'a> From<$t> for Value<'a> {
            fn from(v: $t) -> Self {
                Value::$variant(v as $conv)
            }
        })*
    };
}
value_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    u16 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}

impl<'a> From<&'a String> for Value<'a> {
    fn from(v: &'a String) -> Self {
        Value::Str(v.as_str())
    }
}

impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One field: `(key, value)`. Keys are static by construction (the `event!`
/// macro stringifies identifiers).
pub type Field<'a> = (&'static str, Value<'a>);

/// A trace event as handed to sinks: name, monotonic timestamp, global
/// sequence number, and the call site's fields.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent<'a> {
    /// Event name, dot-separated by convention (`campaign.start`,
    /// `cell.done`, `span`).
    pub name: &'a str,
    /// Microseconds since the process epoch ([`clock::since_epoch_us`]).
    pub t_us: u64,
    /// Global emission sequence number (total order across threads).
    pub seq: u64,
    /// Call-site fields.
    pub fields: &'a [Field<'a>],
}

impl TraceEvent<'_> {
    /// Serializes the event as one JSONL line (no trailing newline).
    /// Reserved keys `ev`, `t_us`, `seq` come first; a field colliding with
    /// a reserved key is prefixed with `f_` rather than dropped.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        out.push_str("{\"ev\":");
        json::escape_into(&mut out, self.name);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(",\"t_us\":{},\"seq\":{}", self.t_us, self.seq),
        );
        for (key, value) in self.fields {
            out.push(',');
            if matches!(*key, "ev" | "t_us" | "seq") {
                json::escape_into(&mut out, &format!("f_{key}"));
            } else {
                json::escape_into(&mut out, key);
            }
            out.push(':');
            match value {
                Value::U64(v) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
                }
                Value::I64(v) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
                }
                Value::F64(v) => json::number_into(&mut out, *v),
                Value::Str(v) => json::escape_into(&mut out, v),
                Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }
}

/// Where trace events go. Implementations must be thread-safe and must not
/// panic: a broken sink degrades to dropped events, never a dead campaign.
pub trait TraceSink: Send + Sync {
    /// Records one event. Called from campaign worker threads.
    fn record(&self, event: &TraceEvent<'_>);

    /// Flushes buffered events to durable storage.
    ///
    /// # Errors
    ///
    /// Returns the sink's description of what failed (the CLI surfaces it).
    fn flush(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Buffered JSONL file sink: one event per line, flushed on demand.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    /// Events dropped because a write failed (disk full, closed fd).
    dropped: AtomicU64,
    /// Bytes successfully written (including the byte count the file held
    /// when an [`JsonlSink::append`] sink opened it) — rotation caps key
    /// off this.
    bytes_written: AtomicU64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JsonlSink(dropped={}, bytes={})",
            self.dropped.load(Ordering::Relaxed),
            self.bytes_written.load(Ordering::Relaxed),
        )
    }
}

fn ensure_parent(path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    Ok(())
}

impl JsonlSink {
    /// Creates (or truncates) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns a description when the file cannot be created.
    pub fn create(path: &Path) -> Result<Self, String> {
        ensure_parent(path)?;
        let file = File::create(path)
            .map_err(|e| format!("cannot create trace file {}: {e}", path.display()))?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            dropped: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// Opens the trace file at `path` for appending, creating it if absent.
    /// Existing bytes count toward [`JsonlSink::bytes_written`], so a
    /// restarted daemon's rotation cap covers the whole file, not just the
    /// current generation's writes.
    ///
    /// # Errors
    ///
    /// Returns a description when the file cannot be opened.
    pub fn append(path: &Path) -> Result<Self, String> {
        ensure_parent(path)?;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open trace file {}: {e}", path.display()))?;
        let existing = file.metadata().map_or(0, |m| m.len());
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            dropped: AtomicU64::new(0),
            bytes_written: AtomicU64::new(existing),
        })
    }

    /// Events dropped due to write errors so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Bytes written so far (plus pre-existing bytes for append sinks).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &TraceEvent<'_>) {
        let line = event.to_json_line();
        let failed = {
            let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            // The writer lock exists to serialize sink I/O; events
            // interleaving mid-line would corrupt the JSONL stream.
            // statcheck:allow(block-under-lock)
            writeln!(w, "{line}").is_err()
        };
        if failed {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            // Dropped events must not vanish: every lossy sink also bumps
            // the global registry so `/metrics` exposes the loss.
            metrics::counter("obs.trace.dropped_events").inc();
        } else {
            self.bytes_written
                .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        }
    }

    fn flush(&self) -> Result<(), String> {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // Same contract as `record`: the flush must not race a concurrent
        // writeln on the shared sink.
        // statcheck:allow(block-under-lock)
        w.flush().map_err(|e| format!("trace flush failed: {e}"))?;
        let dropped = self.dropped();
        if dropped > 0 {
            return Err(format!("{dropped} trace event(s) dropped by write errors"));
        }
        Ok(())
    }
}

/// An owned copy of an event, as kept by [`MemorySink`].
#[derive(Debug, Clone)]
pub struct OwnedEvent {
    /// Event name.
    pub name: String,
    /// Microseconds since the process epoch.
    pub t_us: u64,
    /// Global sequence number.
    pub seq: u64,
    /// Fields rendered to `(key, json-fragment)` pairs.
    pub fields: Vec<(String, String)>,
}

/// In-memory sink for tests and overhead benches.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<OwnedEvent>>,
}

impl MemorySink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Snapshot of recorded events.
    pub fn events(&self) -> Vec<OwnedEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &TraceEvent<'_>) {
        let owned = OwnedEvent {
            name: event.name.to_owned(),
            t_us: event.t_us,
            seq: event.seq,
            fields: event
                .fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), format!("{v:?}")))
                .collect(),
        };
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(owned);
    }
}

/// Builds a [`TraceEvent`] stamped with the current time and the next global
/// sequence number, then hands it to `sink`.
pub fn record_now(sink: &dyn TraceSink, name: &str, fields: &[Field<'_>]) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let event = TraceEvent {
        name,
        t_us: clock::since_epoch_us(),
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        fields,
    };
    sink.record(&event);
}

/// A cloneable, debuggable handle to a [`TraceSink`], so sinks can ride on
/// spec structs that derive `Debug`/`Clone` (e.g. a per-job trace outlet on
/// `ProgressSpec`) without every spec field knowing the concrete sink type.
#[derive(Clone)]
pub struct SinkHandle(pub std::sync::Arc<dyn TraceSink>);

impl SinkHandle {
    /// The sink behind the handle.
    pub fn sink(&self) -> &dyn TraceSink {
        self.0.as_ref()
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn json_line_is_parseable_and_ordered() {
        let ev = TraceEvent {
            name: "cell.done",
            t_us: 42,
            seq: 7,
            fields: &[
                ("node", Value::U64(3)),
                ("layer", Value::Str("conv \"2\"")),
                ("p", Value::F64(0.25)),
                ("ok", Value::Bool(true)),
                ("delta", Value::I64(-4)),
            ],
        };
        let line = ev.to_json_line();
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ev").and_then(Json::as_str), Some("cell.done"));
        assert_eq!(v.get("t_us").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("node").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("layer").and_then(Json::as_str), Some("conv \"2\""));
        assert_eq!(v.get("p").and_then(Json::as_f64), Some(0.25));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("delta").and_then(Json::as_f64), Some(-4.0));
    }

    #[test]
    fn reserved_keys_are_renamed_not_dropped() {
        let ev = TraceEvent {
            name: "x",
            t_us: 1,
            seq: 2,
            fields: &[("seq", Value::U64(99))],
        };
        let v = crate::json::parse(&ev.to_json_line()).unwrap();
        assert_eq!(v.get("seq").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("f_seq").and_then(Json::as_u64), Some(99));
    }

    #[test]
    fn append_sink_accumulates_across_generations() {
        let dir =
            std::env::temp_dir().join(format!("fidelity-trace-append-{}", std::process::id()));
        let path = dir.join("job.trace.jsonl");
        let _ = std::fs::remove_file(&path);

        let first = JsonlSink::append(&path).expect("open append sink");
        record_now(&first, "gen.one", &[("n", Value::U64(1))]);
        first.flush().expect("flush first generation");
        let gen1_bytes = first.bytes_written();
        assert!(gen1_bytes > 0);
        drop(first);

        // A second generation (daemon restart) appends; pre-existing bytes
        // count toward its rotation accounting.
        let second = JsonlSink::append(&path).expect("reopen append sink");
        assert_eq!(second.bytes_written(), gen1_bytes);
        record_now(&second, "gen.two", &[("n", Value::U64(2))]);
        second.flush().expect("flush second generation");
        assert!(second.bytes_written() > gen1_bytes);

        let text = std::fs::read_to_string(&path).expect("read trace file");
        let names: Vec<_> = text
            .lines()
            .map(|l| {
                crate::json::parse(l)
                    .expect("line parses")
                    .get("ev")
                    .and_then(Json::as_str)
                    .map(str::to_owned)
            })
            .collect();
        assert_eq!(
            names,
            vec![Some("gen.one".to_owned()), Some("gen.two".to_owned())]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nan_field_serializes_as_null() {
        let ev = TraceEvent {
            name: "x",
            t_us: 0,
            seq: 0,
            fields: &[("v", Value::F64(f64::NAN))],
        };
        let v = crate::json::parse(&ev.to_json_line()).unwrap();
        assert_eq!(v.get("v"), Some(&Json::Null));
    }
}
