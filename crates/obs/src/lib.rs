//! `fidelity-obs` — zero-dependency observability for the FIdelity
//! workspace: structured span/event tracing, atomic metrics, and live
//! campaign progress telemetry.
//!
//! The crate is built around one invariant: **instrumentation is free when
//! nobody is listening.** Every [`event!`] expands to a single relaxed
//! atomic load when no sink is installed, timing only reads the clock when
//! [`timing_enabled`] says a consumer asked for it
//! ([`clock::Stopwatch::start_if`]), and metrics counters are single
//! `fetch_add`s. The fault-injection hot paths in `fidelity-core`,
//! `fidelity-rtl`, and `fidelity-dnn` stay instrumented permanently and pay
//! for it only when `--trace` / `--metrics` / `--progress` are on.
//!
//! Layout:
//! - [`clock`] — the workspace's only sanctioned wall-clock site
//!   (monotonic, epoch-relative; the determinism lint bans the clock
//!   everywhere else).
//! - [`trace`] — typed events, the [`trace::TraceSink`] abstraction, and the
//!   JSONL file sink behind `--trace <file>`.
//! - [`metrics`] — counters / gauges / log2 histograms with a global
//!   registry snapshotted by `--metrics`.
//! - [`progress`] — the live stderr campaign progress line (`--progress`).
//! - [`prom`] — Prometheus text exposition: rendering [`metrics`] snapshots
//!   for `GET /metrics` and the strict parser that validates them.
//! - [`prof`] — the scoped phase self-profiler with collapsed-stack
//!   (flamegraph) export.
//! - [`report`] — trace summarization for `fidelity report --trace`.
//! - [`stats`] — the canonical Wilson-interval implementation.

pub mod clock;
pub mod json;
pub mod metrics;
#[cfg(feature = "loom_model")]
pub mod modelcheck;
pub mod prof;
pub mod progress;
pub mod prom;
pub mod report;
pub mod stats;
pub mod trace;

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use trace::{Field, JsonlSink, TraceSink};

/// Fast-path flag mirroring "a sink is installed".
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Fast-path flag for "some consumer wants durations" (trace or metrics).
static TIMING: AtomicBool = AtomicBool::new(false);

type SinkSlot = RwLock<Option<Arc<dyn TraceSink>>>;

fn sink_slot() -> &'static SinkSlot {
    static SLOT: OnceLock<SinkSlot> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Whether a trace sink is installed. One relaxed load — the gate every
/// instrumentation site checks first.
#[inline]
pub fn trace_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether duration measurement is wanted (a sink is installed, or
/// [`set_timing`] was called for `--metrics`). Gates clock reads via
/// [`clock::Stopwatch::start_if`].
#[inline]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// Enables or disables duration measurement independently of tracing
/// (`--metrics` wants latency histograms without a trace file).
pub fn set_timing(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// Installs `sink` as the process-global trace sink (replacing any previous
/// one) and turns timing on.
pub fn install_sink(sink: Arc<dyn TraceSink>) {
    let mut slot = sink_slot().write().unwrap_or_else(PoisonError::into_inner);
    *slot = Some(sink);
    TIMING.store(true, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Creates a JSONL trace file at `path` and installs it as the global sink.
///
/// # Errors
///
/// Returns a description when the file cannot be created.
pub fn install_jsonl_sink(path: &Path) -> Result<(), String> {
    let sink = JsonlSink::create(path)?;
    install_sink(Arc::new(sink));
    Ok(())
}

/// Removes the global sink (subsequent events are no-ops). Timing stays as
/// configured so metrics keep their latency histograms.
pub fn clear_sink() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut slot = sink_slot().write().unwrap_or_else(PoisonError::into_inner);
    *slot = None;
}

/// Flushes the installed sink, if any.
///
/// # Errors
///
/// Propagates the sink's flush error (e.g. dropped-event counts from the
/// JSONL sink).
pub fn flush() -> Result<(), String> {
    let slot = sink_slot().read().unwrap_or_else(PoisonError::into_inner);
    match slot.as_ref() {
        Some(sink) => sink.flush(),
        None => Ok(()),
    }
}

/// Emits one event to the installed sink. Prefer the [`event!`] macro, which
/// checks [`trace_enabled`] before evaluating any field expression.
pub fn emit_event(name: &str, fields: &[Field<'_>]) {
    if !trace_enabled() {
        return;
    }
    let slot = sink_slot().read().unwrap_or_else(PoisonError::into_inner);
    if let Some(sink) = slot.as_ref() {
        trace::record_now(sink.as_ref(), name, fields);
    }
}

/// Emits a structured trace event:
/// `event!("cell.done", node = id, cat = tag, masked = m)`.
///
/// Field values go through [`trace::Value::from`], so integers, floats,
/// `&str`, and `bool` all work. When no sink is installed the whole call is
/// one relaxed atomic load; field expressions are not evaluated.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace_enabled() {
            $crate::emit_event(
                $name,
                &[$((stringify!($key), $crate::trace::Value::from($val))),*],
            );
        }
    };
}

/// Times a scope and emits a `span` event with its duration on drop:
/// `let _span = span!("rfa.derive");`.
///
/// When tracing is off the guard is inert (no clock read, no event).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// Guard returned by [`span!`]; emits `span { name, dur_us }` when dropped,
/// provided tracing was on when the scope was entered.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    stopwatch: clock::Stopwatch,
}

impl SpanGuard {
    /// Starts the span (reads the clock only when tracing is enabled).
    pub fn enter(name: &'static str) -> Self {
        SpanGuard {
            name,
            stopwatch: clock::Stopwatch::start_if(trace_enabled()),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(dur_us) = self.stopwatch.elapsed_us() {
            emit_event(
                "span",
                &[
                    ("name", trace::Value::Str(self.name)),
                    ("dur_us", trace::Value::U64(dur_us)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::MemorySink;

    // The global sink is process-wide, so the facade tests share one `#[test]`
    // to avoid cross-test interference under the parallel test runner.
    #[test]
    fn facade_gates_and_delivers_events() {
        assert!(!trace_enabled());
        event!("dropped.event", x = 1u64); // no sink: must be a no-op

        let sink = Arc::new(MemorySink::new());
        install_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        assert!(trace_enabled());
        assert!(timing_enabled());

        event!("campaign.start", cells = 3u64, label = "unit");
        {
            let _span = span!("unit.scope");
        }
        clear_sink();
        event!("after.clear", x = 2u64);
        assert!(flush().is_ok());

        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "campaign.start");
        assert_eq!(events[1].name, "span");
        assert!(events[1].fields.iter().any(|(k, _)| k == "dur_us"));
        assert!(events.iter().all(|e| e.name != "after.clear"));
    }
}
