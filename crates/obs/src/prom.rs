//! Prometheus text exposition: rendering a [`MetricsReport`] and a strict
//! parser for the same format.
//!
//! The renderer turns the registry's dotted metric names
//! (`campaign.injections`) into Prometheus-legal ones
//! (`campaign_injections`) and renders log2 histograms as cumulative
//! `_bucket`/`_sum`/`_count` families. Because registry samples are
//! integers, each finite bucket's *inclusive* upper bound is exact:
//! bucket 0 holds zeros (`le="0"`), bucket `i` holds `[2^(i-1), 2^i)`
//! (`le="{2^i - 1}"`).
//!
//! The parser is deliberately strict — it is the validation oracle for the
//! `/metrics` endpoint in tests and CI, and the decoder behind
//! `fidelity top`. Every sample must be preceded by a `# TYPE` line for its
//! family, histogram buckets must be cumulative and end in an `+Inf` bucket
//! equal to `_count`, and malformed lines fail with a line number.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, HistogramSnapshot, MetricsReport};

/// Rewrites a registry metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every illegal character becomes `_`, and a
/// leading digit gets a `_` prefix. Distinct registry names can collide
/// (`a.b` / `a_b`); the registry's naming convention avoids that in
/// practice.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if legal {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// The inclusive Prometheus `le` bound of log2 bucket `i`, or `None` for
/// the overflow (`+Inf`) bucket. Exact for the integer samples the registry
/// records: bucket 0 is `le="0"`, bucket `i` ends at `2^i - 1`.
fn le_bound(i: usize) -> Option<u64> {
    bucket_upper_bound(i).map(|ub| ub.saturating_sub(1))
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        cumulative += n;
        if let Some(le) = le_bound(i) {
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
    }
    // Concurrent recording can leave `count` and the bucket total skewed by
    // in-flight samples; clamping keeps the output internally consistent
    // (`+Inf` bucket == `_count` >= every finite bucket) so the strict
    // parser always accepts a live scrape.
    let total = cumulative.max(h.count);
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {total}");
}

/// Renders `report` in Prometheus text exposition format (version 0.0.4).
pub fn render(report: &MetricsReport) -> String {
    let mut out = String::with_capacity(1024);
    for (name, v) in &report.counters {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &report.gauges {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, h) in &report.histograms {
        render_histogram(&mut out, &sanitize_name(name), h);
    }
    out
}

/// Metric kind as declared by a `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromKind {
    /// Monotone counter.
    Counter,
    /// Free-moving gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
    /// A kind this parser does not model (`summary`, `untyped`).
    Other,
}

/// One parsed sample line.
#[derive(Debug, Clone)]
pub struct PromSample {
    /// Full sample name (`foo`, `foo_bucket`, `foo_sum`, ...).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`/`-Inf`/`NaN` accepted).
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One metric family: a `# TYPE` declaration plus its samples.
#[derive(Debug, Clone)]
pub struct PromFamily {
    /// Declared kind.
    pub kind: PromKind,
    /// Samples in source order.
    pub samples: Vec<PromSample>,
}

/// A parsed exposition dump, keyed by family name.
#[derive(Debug, Clone, Default)]
pub struct PromDump {
    families: BTreeMap<String, PromFamily>,
}

impl PromDump {
    /// The family named `name`.
    pub fn family(&self, name: &str) -> Option<&PromFamily> {
        self.families.get(name)
    }

    /// Iterates `(name, family)` in name order.
    pub fn families(&self) -> impl Iterator<Item = (&String, &PromFamily)> {
        self.families.iter()
    }

    /// Number of families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether the dump has no families.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// The single unlabelled value of a counter or gauge family.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        let fam = self.families.get(name)?;
        match fam.samples.as_slice() {
            [s] if s.labels.is_empty() => Some(s.value),
            _ => None,
        }
    }

    /// The `_count` value of histogram family `name`.
    pub fn histogram_count(&self, name: &str) -> Option<f64> {
        let fam = self.families.get(name)?;
        let want = format!("{name}_count");
        fam.samples.iter().find(|s| s.name == want).map(|s| s.value)
    }

    /// The `_sum` value of histogram family `name`.
    pub fn histogram_sum(&self, name: &str) -> Option<f64> {
        let fam = self.families.get(name)?;
        let want = format!("{name}_sum");
        fam.samples.iter().find(|s| s.name == want).map(|s| s.value)
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse::<f64>().ok(),
    }
}

/// A parsed label block: `(key, value)` pairs in source order.
type Labels = Vec<(String, String)>;

/// Parses a `{key="value",...}` label block. `rest` starts after `{`.
/// Returns the labels and the remainder after the closing `}`.
fn parse_labels(rest: &str, lineno: usize) -> Result<(Labels, &str), String> {
    let mut labels = Vec::new();
    let mut s = rest;
    loop {
        s = s.trim_start();
        if let Some(tail) = s.strip_prefix('}') {
            return Ok((labels, tail));
        }
        let eq = s
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without '='"))?;
        let key = s[..eq].trim().to_owned();
        if !valid_name(&key) {
            return Err(format!("line {lineno}: illegal label name {key:?}"));
        }
        s = s[eq + 1..].trim_start();
        let mut rest_chars = s.char_indices();
        match rest_chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("line {lineno}: label value must be quoted")),
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest_chars {
            if escaped {
                match c {
                    'n' => value.push('\n'),
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    other => value.push(other),
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
        labels.push((key, value));
        s = s[end + 1..].trim_start();
        if let Some(tail) = s.strip_prefix(',') {
            s = tail;
        } else if !s.starts_with('}') {
            return Err(format!("line {lineno}: expected ',' or '}}' after label"));
        }
    }
}

fn parse_sample(line: &str, lineno: usize) -> Result<PromSample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_ascii_whitespace())
        .ok_or_else(|| format!("line {lineno}: sample without value"))?;
    let name = line[..name_end].to_owned();
    if !valid_name(&name) {
        return Err(format!("line {lineno}: illegal metric name {name:?}"));
    }
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(tail) = rest.strip_prefix('{') {
        parse_labels(tail, lineno)?
    } else {
        (Vec::new(), rest)
    };
    let mut parts = rest.split_ascii_whitespace();
    let value_str = parts
        .next()
        .ok_or_else(|| format!("line {lineno}: sample without value"))?;
    let value =
        parse_value(value_str).ok_or_else(|| format!("line {lineno}: bad value {value_str:?}"))?;
    // An optional trailing timestamp is legal exposition format; anything
    // after it is not.
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() || parts.next().is_some() {
            return Err(format!("line {lineno}: trailing garbage after value"));
        }
    }
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

/// The family a sample belongs to: its own name, or the base name for
/// histogram `_bucket`/`_sum`/`_count` series.
fn family_of(sample_name: &str, kind: PromKind) -> Option<String> {
    if kind == PromKind::Histogram {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = sample_name.strip_suffix(suffix) {
                return Some(base.to_owned());
            }
        }
        return None;
    }
    Some(sample_name.to_owned())
}

fn check_histogram(name: &str, fam: &PromFamily) -> Result<(), String> {
    let mut prev = f64::NEG_INFINITY;
    let mut last_le: Option<String> = None;
    let bucket_name = format!("{name}_bucket");
    let mut buckets = 0usize;
    for s in &fam.samples {
        if s.name != bucket_name {
            continue;
        }
        buckets += 1;
        let le = s
            .label("le")
            .ok_or_else(|| format!("histogram {name}: bucket without le label"))?;
        if s.value < prev {
            return Err(format!(
                "histogram {name}: bucket le={le} not cumulative ({} < {prev})",
                s.value
            ));
        }
        prev = s.value;
        last_le = Some(le.to_owned());
    }
    if buckets == 0 {
        return Err(format!("histogram {name}: no buckets"));
    }
    if last_le.as_deref() != Some("+Inf") {
        return Err(format!("histogram {name}: last bucket must be le=\"+Inf\""));
    }
    let count = fam
        .samples
        .iter()
        .find(|s| s.name == format!("{name}_count"))
        .ok_or_else(|| format!("histogram {name}: missing _count"))?
        .value;
    fam.samples
        .iter()
        .find(|s| s.name == format!("{name}_sum"))
        .ok_or_else(|| format!("histogram {name}: missing _sum"))?;
    if (prev - count).abs() > f64::EPSILON * count.abs().max(1.0) {
        return Err(format!(
            "histogram {name}: +Inf bucket {prev} != _count {count}"
        ));
    }
    Ok(())
}

/// Parses Prometheus text exposition strictly.
///
/// # Errors
///
/// Returns a line-numbered description for malformed lines, samples outside
/// a `# TYPE` family, duplicate `# TYPE` declarations, and histogram
/// families whose buckets are not cumulative or lack a `+Inf == _count`
/// terminal bucket.
pub fn parse(text: &str) -> Result<PromDump, String> {
    let mut dump = PromDump::default();
    let mut current: Option<(String, PromKind)> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_ascii_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without name"))?;
                let kind = match parts.next() {
                    Some("counter") => PromKind::Counter,
                    Some("gauge") => PromKind::Gauge,
                    Some("histogram") => PromKind::Histogram,
                    Some(_) => PromKind::Other,
                    None => return Err(format!("line {lineno}: TYPE without kind")),
                };
                if !valid_name(name) {
                    return Err(format!("line {lineno}: illegal metric name {name:?}"));
                }
                if dump.families.contains_key(name) {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
                dump.families.insert(
                    name.to_owned(),
                    PromFamily {
                        kind,
                        samples: Vec::new(),
                    },
                );
                current = Some((name.to_owned(), kind));
            }
            // `# HELP` and plain comments are legal and ignored.
            continue;
        }
        let sample = parse_sample(line, lineno)?;
        let (fam_name, kind) = current
            .as_ref()
            .ok_or_else(|| format!("line {lineno}: sample before any # TYPE"))?;
        let expected = family_of(&sample.name, *kind);
        if expected.as_deref() != Some(fam_name.as_str()) {
            return Err(format!(
                "line {lineno}: sample {} outside its TYPE family {fam_name}",
                sample.name
            ));
        }
        if let Some(fam) = dump.families.get_mut(fam_name) {
            fam.samples.push(sample);
        }
    }
    for (name, fam) in &dump.families {
        match fam.kind {
            PromKind::Histogram => check_histogram(name, fam)?,
            _ => {
                if fam.samples.is_empty() {
                    return Err(format!("family {name}: TYPE with no samples"));
                }
            }
        }
    }
    Ok(dump)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LOG2_BUCKETS;

    fn sample_report() -> MetricsReport {
        let mut buckets = vec![0u64; LOG2_BUCKETS + 1];
        buckets[0] = 2; // two zeros
        buckets[3] = 5; // five samples in [4, 8)
        buckets[LOG2_BUCKETS] = 1; // one overflow
        MetricsReport {
            counters: vec![("campaign.injections".to_owned(), 42)],
            gauges: vec![("serve.queue_depth".to_owned(), -1)],
            histograms: vec![(
                "campaign.injection_ns".to_owned(),
                HistogramSnapshot {
                    count: 8,
                    sum: 1234,
                    buckets,
                },
            )],
        }
    }

    #[test]
    fn render_round_trips_through_parser() {
        let text = render(&sample_report());
        let dump = parse(&text).expect("rendered output must parse");
        assert_eq!(dump.scalar("campaign_injections"), Some(42.0));
        assert_eq!(dump.scalar("serve_queue_depth"), Some(-1.0));
        assert_eq!(dump.histogram_count("campaign_injection_ns"), Some(8.0));
        assert_eq!(dump.histogram_sum("campaign_injection_ns"), Some(1234.0));
        let fam = dump.family("campaign_injection_ns").unwrap();
        assert_eq!(fam.kind, PromKind::Histogram);
        // Cumulative: le="0" holds the two zeros, le="7" adds the five.
        let le0 = fam
            .samples
            .iter()
            .find(|s| s.label("le") == Some("0"))
            .unwrap();
        assert_eq!(le0.value, 2.0);
        let le7 = fam
            .samples
            .iter()
            .find(|s| s.label("le") == Some("7"))
            .unwrap();
        assert_eq!(le7.value, 7.0);
    }

    #[test]
    fn count_clamps_to_bucket_total_under_skew() {
        // Simulate a scrape racing a record(): bucket landed, count not yet.
        let mut buckets = vec![0u64; LOG2_BUCKETS + 1];
        buckets[1] = 3;
        let report = MetricsReport {
            counters: vec![],
            gauges: vec![],
            histograms: vec![(
                "skewed".to_owned(),
                HistogramSnapshot {
                    count: 2,
                    sum: 3,
                    buckets,
                },
            )],
        };
        let dump = parse(&render(&report)).expect("skewed snapshot must still parse");
        assert_eq!(dump.histogram_count("skewed"), Some(3.0));
    }

    #[test]
    fn sanitize_rewrites_illegal_chars() {
        assert_eq!(sanitize_name("campaign.cells.done"), "campaign_cells_done");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name(""), "_");
        assert!(valid_name(&sanitize_name("7/weird metric.name")));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("no_type_line 1\n").is_err());
        assert!(parse("# TYPE x counter\ny 1\n").is_err());
        assert!(parse("# TYPE x counter\nx notanumber\n").is_err());
        assert!(parse("# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n").is_err());
        assert!(parse("# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\nh_count 1\n").is_err());
        assert!(
            parse("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 0\nh_count 1\n").is_err()
        );
        assert!(parse("# TYPE x counter\n").is_err());
    }

    #[test]
    fn parser_accepts_labels_and_timestamps() {
        let text =
            "# HELP x something\n# TYPE x gauge\nx{host=\"a b\",q=\"\\\"v\\\"\"} 1.5 1700000000\n";
        let dump = parse(text).expect("labelled gauge parses");
        let fam = dump.family("x").unwrap();
        assert_eq!(fam.samples[0].label("host"), Some("a b"));
        assert_eq!(fam.samples[0].label("q"), Some("\"v\""));
        assert_eq!(fam.samples[0].value, 1.5);
        // Labelled sample: scalar() refuses (not a single unlabelled value).
        assert_eq!(dump.scalar("x"), None);
    }

    #[test]
    fn live_registry_snapshot_renders_and_parses() {
        crate::metrics::counter("test.prom.live").add(3);
        crate::metrics::histogram("test.prom.live_ns").record(1500);
        let text = render(&crate::metrics::snapshot());
        let dump = parse(&text).expect("live snapshot parses");
        assert!(dump.scalar("test_prom_live").unwrap_or(0.0) >= 3.0);
        assert!(dump.histogram_count("test_prom_live_ns").unwrap_or(0.0) >= 1.0);
    }
}
