//! Deterministic interleaving model of the log2-bucket histogram.
//!
//! [`crate::metrics::Histogram`] records lock-free: `record` bumps `count`,
//! then `sum`, then the bucket; `snapshot` reads the buckets first and
//! `count` last. That ordering is a protocol, not an accident — a bucket
//! increment can only be observed after its count increment, and the count
//! is read after every bucket, so a concurrent snapshot always satisfies
//! `Σ buckets ≤ count` and the gap is bounded by the number of in-flight
//! recorders. This module re-expresses record/snapshot against the `loom`
//! model atomics and enumerates every interleaving of two recorders and a
//! concurrent reader.
//!
//! Checked invariants, in every explored interleaving:
//!
//! - **mid-flight monotonicity**: a snapshot taken while recorders run
//!   never shows more bucketed samples than counted ones (`Σ buckets ≤
//!   count`). The gap is *not* bounded by the number of recorder threads:
//!   the snapshot itself is not atomic, so whole records can complete
//!   between the first bucket read and the final count read — the model
//!   checker found that schedule on the first version of this test, which
//!   asserted the tighter (wrong) bound;
//! - **quiescent exactness**: after the recorders join, buckets, count,
//!   and per-bucket tallies all agree exactly with what was recorded.
//!
//! (The production orderings are `Relaxed`; the model explores sequential
//! consistency only, which is the stronger regime — the Relaxed-adequacy
//! argument is `fidelity concheck`'s atomics-discipline job, not this
//! model's. See the `loom` crate docs.)

use loom::model::sync::atomic::{AtomicU64, Ordering};
use loom::model::sync::Arc;
use loom::model::thread;

const BUCKETS: usize = 3;

/// `Histogram` reduced to its count/bucket commit protocol.
struct ModelHistogram {
    count: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl ModelHistogram {
    fn new() -> Self {
        ModelHistogram {
            count: AtomicU64::new(0),
            buckets: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// Mirrors `Histogram::record`: count first, bucket last.
    fn record(&self, bucket: usize) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Mirrors `Histogram::snapshot`: buckets first, count last.
    fn snapshot(&self) -> ([u64; BUCKETS], u64) {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        (buckets, count)
    }
}

/// One model execution: two recorders, one concurrent snapshotter,
/// exactness after the join.
fn run_model() {
    let h = Arc::new(ModelHistogram::new());
    let r1 = {
        let h = Arc::clone(&h);
        thread::spawn(move || {
            h.record(0);
            h.record(2);
        })
    };
    let r2 = {
        let h = Arc::clone(&h);
        thread::spawn(move || h.record(0))
    };
    // Concurrent read from the root thread: the interesting schedules are
    // the ones where this lands between a count bump and its bucket bump.
    let (buckets, count) = h.snapshot();
    let seen: u64 = buckets.iter().sum();
    assert!(
        seen <= count,
        "snapshot shows {seen} bucketed samples but only {count} counted \
         (bucket read overtook its count increment)"
    );
    assert!(count <= 3, "snapshot counted more records than were made");
    r1.join().expect("recorder 1 panicked");
    r2.join().expect("recorder 2 panicked");
    let (buckets, count) = h.snapshot();
    assert_eq!(count, 3);
    assert_eq!(buckets, [2, 0, 1]);
}

/// Exhaustively model-checks histogram recording under contention with a
/// concurrent snapshot, under a 3-preemption bound (three threads of
/// straight-line atomics make the unbounded space run to hundreds of
/// thousands of schedules; three preemptions are enough to land whole
/// records, and partial ones, inside the snapshot's read window).
pub fn histogram_exhaustive() -> loom::Report {
    loom::Builder {
        preemption_bound: Some(3),
        ..loom::Builder::default()
    }
    .check(run_model)
}
