//! `obs::prof` — a hand-rolled scoped phase profiler.
//!
//! Answers "where does wall-clock actually go" for the daemon and the
//! campaign runner without any external profiler: code brackets a phase
//! with [`scope`], nested scopes form semicolon-joined paths
//! (`campaign.execute;cell.run`), and exit attributes *self time*
//! (total minus time spent in child scopes) to the path. The aggregate
//! exports [`collapsed`] — the collapsed-stack format every standard
//! flamegraph tool consumes (`path self_ns` per line).
//!
//! Same discipline as the rest of the crate: disabled is the default and
//! costs one relaxed load per scope ([`enabled`] gates before any clock
//! read, which goes through [`crate::clock`] — the lint's single
//! sanctioned wall-clock site); enabling is a run-time switch
//! ([`set_enabled`]), not a rebuild. Per-thread stacks are thread-local,
//! so the only shared state is the aggregate table, locked once per scope
//! *exit* — profiled phases are coarse (campaign phases, supervisor
//! steps), so that lock is far off any per-injection path.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::clock;

static PROF: AtomicBool = AtomicBool::new(false);

/// Whether profiling is on. One relaxed load — the gate every [`scope`]
/// checks first.
#[inline]
pub fn enabled() -> bool {
    PROF.load(Ordering::Relaxed)
}

/// Turns the profiler on or off (`fidelity --profile <file>` and the
/// daemon's self-profile both flip this at startup).
pub fn set_enabled(on: bool) {
    PROF.store(on, Ordering::Relaxed);
}

/// Aggregated statistics for one scope path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStat {
    /// Times the scope exited.
    pub count: u64,
    /// Nanoseconds spent in the scope excluding child scopes.
    pub self_ns: u64,
    /// Nanoseconds spent in the scope including child scopes.
    pub total_ns: u64,
}

fn table() -> &'static Mutex<BTreeMap<String, PathStat>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, PathStat>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

struct Frame {
    start_ns: u64,
    child_ns: u64,
    /// Length of the thread's path string up to and including this frame.
    path_len: usize,
}

struct Stack {
    path: String,
    frames: Vec<Frame>,
}

thread_local! {
    static STACK: RefCell<Stack> = const {
        RefCell::new(Stack {
            path: String::new(),
            frames: Vec::new(),
        })
    };
}

/// Guard returned by [`scope`]; attributes the elapsed time on drop.
/// Inert (no clock read, no lock) when profiling was off at entry.
#[derive(Debug)]
pub struct ProfGuard {
    armed: bool,
}

/// Enters a profiled scope: `let _p = prof::scope("campaign.execute");`.
///
/// Nested scopes extend the current thread's semicolon-joined path. The
/// guard never panics: a re-entrant borrow (e.g. from a destructor running
/// inside the profiler itself) degrades to an inert guard.
pub fn scope(name: &'static str) -> ProfGuard {
    if !enabled() {
        return ProfGuard { armed: false };
    }
    let armed = STACK.with(|s| match s.try_borrow_mut() {
        Ok(mut st) => {
            if !st.path.is_empty() {
                st.path.push(';');
            }
            st.path.push_str(name);
            let path_len = st.path.len();
            st.frames.push(Frame {
                start_ns: clock::since_epoch_ns(),
                child_ns: 0,
                path_len,
            });
            true
        }
        Err(_) => false,
    });
    ProfGuard { armed }
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end_ns = clock::since_epoch_ns();
        STACK.with(|s| {
            let Ok(mut st) = s.try_borrow_mut() else {
                return;
            };
            let Some(frame) = st.frames.pop() else {
                return;
            };
            let total = end_ns.saturating_sub(frame.start_ns);
            let self_ns = total.saturating_sub(frame.child_ns);
            st.path.truncate(frame.path_len);
            {
                let mut t = table().lock().unwrap_or_else(PoisonError::into_inner);
                let stat = t.entry(st.path.clone()).or_default();
                stat.count = stat.count.saturating_add(1);
                stat.self_ns = stat.self_ns.saturating_add(self_ns);
                stat.total_ns = stat.total_ns.saturating_add(total);
            }
            let parent_len = st.frames.last().map_or(0, |f| f.path_len);
            st.path.truncate(parent_len);
            if let Some(parent) = st.frames.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(total);
            }
        });
    }
}

/// Point-in-time copy of the aggregate table, sorted by path.
pub fn snapshot() -> Vec<(String, PathStat)> {
    let t = table().lock().unwrap_or_else(PoisonError::into_inner);
    t.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Clears the aggregate table (the per-thread stacks are untouched, so
/// open scopes still attribute on exit).
pub fn reset() {
    let mut t = table().lock().unwrap_or_else(PoisonError::into_inner);
    t.clear();
}

/// Exports the aggregate in collapsed-stack format: one
/// `path;sub;leaf <self_ns>` line per path, sorted, zero-self paths
/// skipped. Feed straight into `flamegraph.pl` / `inferno-flamegraph`.
pub fn collapsed() -> String {
    let mut out = String::new();
    for (path, stat) in snapshot() {
        if stat.self_ns > 0 {
            let _ = writeln!(out, "{path} {}", stat.self_ns);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(iters: u64) -> u64 {
        // FNV-1a over the counter: real work the optimizer cannot remove,
        // a few ns per iteration.
        let mut h = 0xcbf29ce484222325u64;
        for i in 0..iters {
            h = (h ^ i).wrapping_mul(0x100000001b3);
            std::hint::black_box(h);
        }
        h
    }

    // The profiler's flag and table are process-global, so all prof tests
    // share one `#[test]` (same pattern as the facade test in lib.rs) to
    // avoid cross-test interference under the parallel runner.
    #[test]
    fn profiler_gates_attributes_and_exports() {
        // --- Disabled: inert guards, no entries, bounded cost. ---
        assert!(!enabled());
        {
            let _p = scope("prof.test.disabled");
        }
        assert!(snapshot().iter().all(|(p, _)| p != "prof.test.disabled"));

        // Overhead: a disabled scope must cost one load + branch, not a
        // clock read. Best-of-N comparison of a work loop against the same
        // loop with a disabled scope per iteration; a regression that reads
        // the clock (or takes a lock) per call multiplies the iteration
        // cost and trips the generous 3x bound. (The precise <2% end-to-end
        // budget is tracked by the `telemetry_overhead` bench group.)
        const ITERS: u64 = 200_000;
        let best = |f: &dyn Fn() -> u64| {
            (0..5)
                .map(|_| {
                    let sw = clock::Stopwatch::start();
                    std::hint::black_box(f());
                    sw.elapsed_ns().unwrap_or(u64::MAX)
                })
                .min()
                .unwrap_or(u64::MAX)
        };
        let bare = best(&|| spin(ITERS));
        let gated = best(&|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                let _p = scope("prof.test.overhead");
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc.wrapping_add(spin(ITERS))
        });
        assert!(
            gated < bare.saturating_mul(3).max(bare + 10_000_000),
            "disabled prof::scope too expensive: bare={bare}ns gated={gated}ns"
        );

        // --- Enabled: nesting builds paths, self time excludes children. ---
        set_enabled(true);
        {
            let _outer = scope("prof.test.outer");
            std::hint::black_box(spin(20_000));
            {
                let _inner = scope("prof.test.inner");
                std::hint::black_box(spin(20_000));
            }
        }
        set_enabled(false);

        let snap = snapshot();
        let get = |p: &str| {
            snap.iter()
                .find(|(k, _)| k == p)
                .map_or_else(|| panic!("missing path {p}"), |(_, v)| *v)
        };
        let outer = get("prof.test.outer");
        let inner = get("prof.test.outer;prof.test.inner");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns <= outer.total_ns.saturating_sub(inner.total_ns) + outer.total_ns / 2,
            "outer self time must exclude the inner scope"
        );

        // --- Collapsed export: one line per path, value = self_ns. ---
        let collapsed = collapsed();
        let line = collapsed
            .lines()
            .find(|l| l.starts_with("prof.test.outer;prof.test.inner "))
            .expect("nested path exported");
        let val: u64 = line
            .rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .expect("collapsed value parses");
        assert_eq!(val, inner.self_ns);

        // --- Guard dropped after disable still attributes (armed at entry). ---
        set_enabled(true);
        let g = scope("prof.test.straddle");
        set_enabled(false);
        drop(g);
        assert!(snapshot().iter().any(|(p, _)| p == "prof.test.straddle"));
    }
}
