//! Post-hoc trace summarization for `fidelity report --trace <file>`:
//! phase breakdown from span durations, outcome tallies, the slowest cells,
//! retry/watchdog totals, and per-job span trees (queue-wait vs run vs
//! retry-backoff, keyed by trace id), all recovered from a JSONL trace.
//!
//! The summary is honest about loss: `trace.lossy` markers and sequence
//! gaps both trigger a loud warning at the top of the report, because a
//! lossy trace silently undercounts everything below it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::BufRead;
use std::path::Path;

use crate::json::{self, Json};

/// How many slowest cells the summary keeps.
pub const SLOWEST_CELLS: usize = 5;

/// Aggregate of all `span` events sharing one name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of spans.
    pub count: u64,
    /// Total duration across spans, microseconds.
    pub total_us: u64,
}

/// Per-job phase breakdown recovered from `job.*` events sharing one
/// trace id — the span tree `fidelity report --trace` renders.
#[derive(Debug, Clone, Default)]
pub struct JobTraceStat {
    /// Job id (spec fingerprint, hex), when an admission event named it.
    pub job: String,
    /// Daemon process ids that touched the job — more than one means the
    /// trace spans a crash + recovery.
    pub pids: BTreeSet<u64>,
    /// Microseconds spent queued before each run attempt.
    pub queue_wait_us: u64,
    /// Microseconds spent actually running the campaign.
    pub run_us: u64,
    /// Microseconds spent in retry backoff.
    pub backoff_us: u64,
    /// Run attempts observed.
    pub attempts: u64,
    /// Times the job was requeued by crash recovery.
    pub recoveries: u64,
    /// Last lifecycle state seen (`accepted`, `running`, `done`, ...).
    pub state: String,
}

/// One `cell.done` record, kept for the slowest-cells table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellStat {
    /// Graph node id.
    pub node: u64,
    /// FF category tag.
    pub cat: String,
    /// Injections sampled in the cell.
    pub samples: u64,
    /// Wall time spent on the cell, microseconds (0 when timing was off).
    pub elapsed_us: u64,
}

/// Everything `fidelity report` prints, recovered from one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Total events parsed.
    pub events: u64,
    /// Events per `ev` name.
    pub by_name: BTreeMap<String, u64>,
    /// Span aggregates keyed by span name.
    pub phases: BTreeMap<String, PhaseStat>,
    /// Masked / output-error / anomaly tallies (from `campaign.finish` when
    /// present, otherwise summed over `cell.done`).
    pub masked: u64,
    /// SDC tally.
    pub output_error: u64,
    /// Anomaly tally (includes watchdog-classified injections).
    pub anomaly: u64,
    /// Cells completed (`cell.done` events).
    pub cells_done: u64,
    /// Cells restored from a checkpoint (`campaign.resume`).
    pub cells_restored: u64,
    /// Cell attempts retried.
    pub retries: u64,
    /// Watchdog deadline overruns.
    pub watchdog: u64,
    /// Cells that exhausted their retry budget.
    pub cells_failed: u64,
    /// Checkpoint cell appends observed.
    pub checkpoint_cells: u64,
    /// Slowest cells, descending by `elapsed_us` (at most
    /// [`SLOWEST_CELLS`]).
    pub slowest: Vec<CellStat>,
    /// Trace duration: max − min `t_us` over all events.
    pub span_us: u64,
    /// Per-job span breakdown, keyed by trace id (`job.*` events).
    pub jobs: BTreeMap<String, JobTraceStat>,
    /// Events the emitting sink reported dropped (`trace.lossy` markers).
    pub dropped_reported: u64,
    /// Whether the sequence numbers imply missing events (more sequence
    /// span than events, which per-generation restarts cannot cause).
    pub seq_gap: bool,
}

fn field_u64(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

impl TraceSummary {
    fn absorb(&mut self, v: &Json, t_range: &mut Option<(u64, u64)>) {
        let name = v.get("ev").and_then(Json::as_str).unwrap_or("?").to_owned();
        self.events += 1;
        *self.by_name.entry(name.clone()).or_insert(0) += 1;
        if let Some(t) = v.get("t_us").and_then(Json::as_u64) {
            *t_range = Some(match *t_range {
                None => (t, t),
                Some((lo, hi)) => (lo.min(t), hi.max(t)),
            });
        }
        match name.as_str() {
            "span" => {
                let phase = v.get("name").and_then(Json::as_str).unwrap_or("?");
                let stat = self.phases.entry(phase.to_owned()).or_default();
                stat.count += 1;
                stat.total_us += field_u64(v, "dur_us");
            }
            "cell.done" => {
                self.cells_done += 1;
                self.slowest.push(CellStat {
                    node: field_u64(v, "node"),
                    cat: v
                        .get("cat")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    samples: field_u64(v, "samples"),
                    elapsed_us: field_u64(v, "elapsed_us"),
                });
            }
            "cell.retry" => self.retries += 1,
            "cell.failed" => self.cells_failed += 1,
            "watchdog.fired" => self.watchdog += 1,
            "campaign.resume" => self.cells_restored = field_u64(v, "restored"),
            "checkpoint.cell" => self.checkpoint_cells += 1,
            "trace.lossy" => self.dropped_reported += field_u64(v, "dropped"),
            _ => {}
        }
        if let Some(trace) = v.get("trace").and_then(Json::as_str) {
            self.absorb_job(trace, &name, v);
        }
    }

    fn absorb_job(&mut self, trace: &str, name: &str, v: &Json) {
        let job = self.jobs.entry(trace.to_owned()).or_default();
        if let Some(pid) = v.get("pid").and_then(Json::as_u64) {
            job.pids.insert(pid);
        }
        if let Some(id) = v.get("job").and_then(Json::as_str) {
            if job.job.is_empty() {
                job.job = id.to_owned();
            }
        }
        match name {
            "job.admit" | "job.terminal" => {
                if let Some(state) = v.get("state").and_then(Json::as_str) {
                    job.state = state.to_owned();
                }
            }
            "job.recover" => job.recoveries += 1,
            "job.span" => {
                let dur = field_u64(v, "dur_us");
                match v.get("phase").and_then(Json::as_str) {
                    Some("queue_wait") => job.queue_wait_us += dur,
                    Some("run") => {
                        job.run_us += dur;
                        job.attempts += 1;
                    }
                    Some("backoff") => job.backoff_us += dur,
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn finalize(&mut self, finish: Option<&Json>, cell_tallies: (u64, u64, u64)) {
        if let Some(f) = finish {
            self.masked = field_u64(f, "masked");
            self.output_error = field_u64(f, "output_error");
            self.anomaly = field_u64(f, "anomaly");
        } else {
            (self.masked, self.output_error, self.anomaly) = cell_tallies;
        }
        self.slowest
            .sort_by_key(|c| std::cmp::Reverse(c.elapsed_us));
        self.slowest.truncate(SLOWEST_CELLS);
    }

    /// Whether the trace is known (or inferred) to be missing events.
    pub fn is_lossy(&self) -> bool {
        self.dropped_reported > 0 || self.seq_gap
    }
}

/// Summarizes a JSONL trace read from `reader`.
///
/// # Errors
///
/// Returns a description (with line number) for any unparseable line, and
/// rejects traces with zero events — an empty trace means the instrumented
/// run recorded nothing, which the CI smoke test treats as a failure.
pub fn summarize<R: BufRead>(reader: R) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut t_range = None;
    let mut seq_range: Option<(u64, u64)> = None;
    let mut finish: Option<Json> = None;
    let mut cell_tallies = (0u64, 0u64, 0u64);
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", idx + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(&line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if v.get("ev").and_then(Json::as_str).is_none() {
            return Err(format!("line {}: record has no `ev` field", idx + 1));
        }
        if v.get("ev").and_then(Json::as_str) == Some("cell.done") {
            cell_tallies.0 += field_u64(&v, "masked");
            cell_tallies.1 += field_u64(&v, "output_error");
            cell_tallies.2 += field_u64(&v, "anomaly");
        }
        if let Some(seq) = v.get("seq").and_then(Json::as_u64) {
            seq_range = Some(match seq_range {
                None => (seq, seq),
                Some((lo, hi)) => (lo.min(seq), hi.max(seq)),
            });
        }
        summary.absorb(&v, &mut t_range);
        if v.get("ev").and_then(Json::as_str) == Some("campaign.finish") {
            finish = Some(v);
        }
    }
    if summary.events == 0 {
        return Err("trace contains no events".to_owned());
    }
    if let Some((lo, hi)) = t_range {
        summary.span_us = hi - lo;
    }
    // More sequence span than events means records went missing. The test
    // is one-sided on purpose: a multi-generation file (daemon restarts
    // append with the sequence counter reset) has *less* span than events,
    // so restarts never false-positive here.
    if let Some((lo, hi)) = seq_range {
        summary.seq_gap = hi - lo + 1 > summary.events;
    }
    summary.finalize(finish.as_ref(), cell_tallies);
    Ok(summary)
}

/// Summarizes the JSONL trace file at `path` (see [`summarize`]).
///
/// # Errors
///
/// As [`summarize`], plus file-open failures.
pub fn summarize_file(path: &Path) -> Result<TraceSummary, String> {
    let file = std::fs::File::open(path)
        .map_err(|e| format!("cannot open trace {}: {e}", path.display()))?;
    summarize(std::io::BufReader::new(file))
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_lossy() {
            writeln!(
                f,
                "!!! LOSSY TRACE — every count below may be an undercount !!!"
            )?;
            if self.dropped_reported > 0 {
                writeln!(
                    f,
                    "!!! the emitting sink reported {} dropped event(s)",
                    self.dropped_reported
                )?;
            }
            if self.seq_gap {
                writeln!(f, "!!! sequence numbers imply missing records (gap in seq)")?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "trace: {} events over {:.3} s",
            self.events,
            self.span_us as f64 / 1e6
        )?;

        writeln!(f, "\nevents")?;
        for (name, n) in &self.by_name {
            writeln!(f, "  {name:<20} {n}")?;
        }

        if !self.phases.is_empty() {
            writeln!(f, "\nphases (span time)")?;
            let total: u64 = self.phases.values().map(|p| p.total_us).sum();
            for (name, p) in &self.phases {
                writeln!(
                    f,
                    "  {name:<20} {:>10.3} s  ({:>5.1}%)  n={}",
                    p.total_us as f64 / 1e6,
                    pct(p.total_us, total),
                    p.count
                )?;
            }
        }

        let injections = self.masked + self.output_error + self.anomaly;
        writeln!(f, "\noutcomes ({injections} injections)")?;
        writeln!(
            f,
            "  masked               {:>8}  ({:.1}%)",
            self.masked,
            pct(self.masked, injections)
        )?;
        writeln!(
            f,
            "  output_error         {:>8}  ({:.1}%)",
            self.output_error,
            pct(self.output_error, injections)
        )?;
        writeln!(
            f,
            "  anomaly              {:>8}  ({:.1}%)",
            self.anomaly,
            pct(self.anomaly, injections)
        )?;

        writeln!(f, "\ncells")?;
        writeln!(f, "  done                 {:>8}", self.cells_done)?;
        if self.cells_restored > 0 {
            writeln!(f, "  restored             {:>8}", self.cells_restored)?;
        }
        writeln!(f, "  retried attempts     {:>8}", self.retries)?;
        writeln!(f, "  failed (budget)      {:>8}", self.cells_failed)?;
        writeln!(f, "  watchdog fires       {:>8}", self.watchdog)?;
        writeln!(f, "  checkpoint appends   {:>8}", self.checkpoint_cells)?;

        if self.slowest.iter().any(|c| c.elapsed_us > 0) {
            writeln!(f, "\nslowest cells")?;
            for c in &self.slowest {
                writeln!(
                    f,
                    "  node {:<5} {:<14} {:>10.3} s  ({} samples)",
                    c.node,
                    c.cat,
                    c.elapsed_us as f64 / 1e6,
                    c.samples
                )?;
            }
        }

        if !self.jobs.is_empty() {
            writeln!(f, "\njobs (time in phase, by trace id)")?;
            for (trace, j) in &self.jobs {
                let generations = j.pids.len().max(1);
                write!(f, "  {trace}")?;
                if !j.job.is_empty() && j.job != *trace {
                    write!(f, " (job {})", j.job)?;
                }
                writeln!(
                    f,
                    " [{}] attempts={} generations={}{}",
                    if j.state.is_empty() { "?" } else { &j.state },
                    j.attempts,
                    generations,
                    if j.recoveries > 0 {
                        format!(" recoveries={}", j.recoveries)
                    } else {
                        String::new()
                    }
                )?;
                let phases = [
                    ("queue_wait", j.queue_wait_us),
                    ("run", j.run_us),
                    ("backoff", j.backoff_us),
                ];
                let total: u64 = phases.iter().map(|(_, us)| us).sum();
                for (i, (name, us)) in phases.iter().enumerate() {
                    let glyph = if i + 1 == phases.len() {
                        "└─"
                    } else {
                        "├─"
                    };
                    writeln!(
                        f,
                        "    {glyph} {name:<11} {:>10.3} s  ({:>5.1}%)",
                        *us as f64 / 1e6,
                        pct(*us, total)
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        "{\"ev\":\"campaign.start\",\"t_us\":0,\"seq\":0,\"cells\":2}\n",
        "{\"ev\":\"span\",\"t_us\":5,\"seq\":1,\"name\":\"rfa\",\"dur_us\":5}\n",
        "{\"ev\":\"cell.done\",\"t_us\":10,\"seq\":2,\"node\":1,\"cat\":\"dp\",",
        "\"samples\":4,\"masked\":3,\"output_error\":1,\"anomaly\":0,\"elapsed_us\":9}\n",
        "{\"ev\":\"cell.retry\",\"t_us\":11,\"seq\":3,\"node\":2,\"attempt\":1}\n",
        "{\"ev\":\"cell.done\",\"t_us\":20,\"seq\":4,\"node\":2,\"cat\":\"gc\",",
        "\"samples\":4,\"masked\":2,\"output_error\":0,\"anomaly\":2,\"elapsed_us\":15}\n",
        "{\"ev\":\"campaign.finish\",\"t_us\":21,\"seq\":5,\"masked\":5,",
        "\"output_error\":1,\"anomaly\":2}\n",
    );

    #[test]
    fn summarizes_outcomes_phases_and_slowest() {
        let s = summarize(TRACE.as_bytes()).unwrap();
        assert_eq!(s.events, 6);
        assert_eq!((s.masked, s.output_error, s.anomaly), (5, 1, 2));
        assert_eq!(s.cells_done, 2);
        assert_eq!(s.retries, 1);
        assert_eq!(
            s.phases["rfa"],
            PhaseStat {
                count: 1,
                total_us: 5
            }
        );
        assert_eq!(s.slowest[0].node, 2);
        assert_eq!(s.span_us, 21);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn tallies_fall_back_to_cell_done_without_finish() {
        let partial: String = TRACE.lines().take(5).fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
        let s = summarize(partial.as_bytes()).unwrap();
        assert_eq!((s.masked, s.output_error, s.anomaly), (5, 1, 2));
    }

    const JOB_TRACE: &str = concat!(
        // Generation one: admit, queue-wait, first run attempt, crash.
        "{\"ev\":\"job.admit\",\"t_us\":1,\"seq\":0,\"trace\":\"t1\",\"job\":\"j1\",",
        "\"pid\":100,\"state\":\"accepted\"}\n",
        "{\"ev\":\"job.span\",\"t_us\":10,\"seq\":1,\"trace\":\"t1\",\"pid\":100,",
        "\"phase\":\"queue_wait\",\"dur_us\":9}\n",
        "{\"ev\":\"job.span\",\"t_us\":50,\"seq\":2,\"trace\":\"t1\",\"pid\":100,",
        "\"phase\":\"run\",\"dur_us\":40}\n",
        "{\"ev\":\"job.span\",\"t_us\":60,\"seq\":3,\"trace\":\"t1\",\"pid\":100,",
        "\"phase\":\"backoff\",\"dur_us\":10}\n",
        // Generation two (restart, seq resets): recovery + finishing run.
        "{\"ev\":\"job.recover\",\"t_us\":5,\"seq\":0,\"trace\":\"t1\",\"job\":\"j1\",",
        "\"pid\":200}\n",
        "{\"ev\":\"job.span\",\"t_us\":90,\"seq\":1,\"trace\":\"t1\",\"pid\":200,",
        "\"phase\":\"run\",\"dur_us\":80}\n",
        "{\"ev\":\"job.terminal\",\"t_us\":95,\"seq\":2,\"trace\":\"t1\",\"pid\":200,",
        "\"state\":\"done\"}\n",
    );

    #[test]
    fn job_spans_aggregate_across_generations() {
        let s = summarize(JOB_TRACE.as_bytes()).unwrap();
        // Sequence restarts across generations must not read as loss.
        assert!(!s.seq_gap);
        assert!(!s.is_lossy());
        let j = &s.jobs["t1"];
        assert_eq!(j.job, "j1");
        assert_eq!(j.pids.len(), 2, "two daemon generations");
        assert_eq!(j.queue_wait_us, 9);
        assert_eq!(j.run_us, 120);
        assert_eq!(j.backoff_us, 10);
        assert_eq!(j.attempts, 2);
        assert_eq!(j.recoveries, 1);
        assert_eq!(j.state, "done");
        let rendered = format!("{s}");
        assert!(rendered.contains("jobs (time in phase"));
        assert!(rendered.contains("generations=2"));
        assert!(!rendered.contains("LOSSY"));
    }

    #[test]
    fn lossy_traces_warn_loudly() {
        // Explicit drop marker.
        let mut trace = TRACE.to_owned();
        trace.push_str("{\"ev\":\"trace.lossy\",\"t_us\":30,\"seq\":6,\"dropped\":3}\n");
        let s = summarize(trace.as_bytes()).unwrap();
        assert_eq!(s.dropped_reported, 3);
        assert!(s.is_lossy());
        assert!(format!("{s}").contains("LOSSY TRACE"));
        assert!(format!("{s}").contains("3 dropped"));

        // Inferred from a sequence gap: seq 0..=5 with one line removed.
        let gappy: String = TRACE.lines().enumerate().filter(|(i, _)| *i != 2).fold(
            String::new(),
            |mut acc, (_, l)| {
                acc.push_str(l);
                acc.push('\n');
                acc
            },
        );
        let s = summarize(gappy.as_bytes()).unwrap();
        assert!(s.seq_gap);
        assert!(format!("{s}").contains("gap in seq"));
    }

    #[test]
    fn rejects_empty_and_malformed_traces() {
        assert!(summarize(&b""[..]).is_err());
        assert!(summarize(&b"not json\n"[..])
            .unwrap_err()
            .contains("line 1"));
        assert!(summarize(&b"{\"no_ev\":1}\n"[..])
            .unwrap_err()
            .contains("no `ev`"));
    }
}
