//! Post-hoc trace summarization for `fidelity report --trace <file>`:
//! phase breakdown from span durations, outcome tallies, the slowest cells,
//! and retry/watchdog totals, all recovered from a JSONL trace.

use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

use crate::json::{self, Json};

/// How many slowest cells the summary keeps.
pub const SLOWEST_CELLS: usize = 5;

/// Aggregate of all `span` events sharing one name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of spans.
    pub count: u64,
    /// Total duration across spans, microseconds.
    pub total_us: u64,
}

/// One `cell.done` record, kept for the slowest-cells table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellStat {
    /// Graph node id.
    pub node: u64,
    /// FF category tag.
    pub cat: String,
    /// Injections sampled in the cell.
    pub samples: u64,
    /// Wall time spent on the cell, microseconds (0 when timing was off).
    pub elapsed_us: u64,
}

/// Everything `fidelity report` prints, recovered from one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Total events parsed.
    pub events: u64,
    /// Events per `ev` name.
    pub by_name: BTreeMap<String, u64>,
    /// Span aggregates keyed by span name.
    pub phases: BTreeMap<String, PhaseStat>,
    /// Masked / output-error / anomaly tallies (from `campaign.finish` when
    /// present, otherwise summed over `cell.done`).
    pub masked: u64,
    /// SDC tally.
    pub output_error: u64,
    /// Anomaly tally (includes watchdog-classified injections).
    pub anomaly: u64,
    /// Cells completed (`cell.done` events).
    pub cells_done: u64,
    /// Cells restored from a checkpoint (`campaign.resume`).
    pub cells_restored: u64,
    /// Cell attempts retried.
    pub retries: u64,
    /// Watchdog deadline overruns.
    pub watchdog: u64,
    /// Cells that exhausted their retry budget.
    pub cells_failed: u64,
    /// Checkpoint cell appends observed.
    pub checkpoint_cells: u64,
    /// Slowest cells, descending by `elapsed_us` (at most
    /// [`SLOWEST_CELLS`]).
    pub slowest: Vec<CellStat>,
    /// Trace duration: max − min `t_us` over all events.
    pub span_us: u64,
}

fn field_u64(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

impl TraceSummary {
    fn absorb(&mut self, v: &Json, t_range: &mut Option<(u64, u64)>) {
        let name = v.get("ev").and_then(Json::as_str).unwrap_or("?").to_owned();
        self.events += 1;
        *self.by_name.entry(name.clone()).or_insert(0) += 1;
        if let Some(t) = v.get("t_us").and_then(Json::as_u64) {
            *t_range = Some(match *t_range {
                None => (t, t),
                Some((lo, hi)) => (lo.min(t), hi.max(t)),
            });
        }
        match name.as_str() {
            "span" => {
                let phase = v.get("name").and_then(Json::as_str).unwrap_or("?");
                let stat = self.phases.entry(phase.to_owned()).or_default();
                stat.count += 1;
                stat.total_us += field_u64(v, "dur_us");
            }
            "cell.done" => {
                self.cells_done += 1;
                self.slowest.push(CellStat {
                    node: field_u64(v, "node"),
                    cat: v
                        .get("cat")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    samples: field_u64(v, "samples"),
                    elapsed_us: field_u64(v, "elapsed_us"),
                });
            }
            "cell.retry" => self.retries += 1,
            "cell.failed" => self.cells_failed += 1,
            "watchdog.fired" => self.watchdog += 1,
            "campaign.resume" => self.cells_restored = field_u64(v, "restored"),
            "checkpoint.cell" => self.checkpoint_cells += 1,
            _ => {}
        }
    }

    fn finalize(&mut self, finish: Option<&Json>, cell_tallies: (u64, u64, u64)) {
        if let Some(f) = finish {
            self.masked = field_u64(f, "masked");
            self.output_error = field_u64(f, "output_error");
            self.anomaly = field_u64(f, "anomaly");
        } else {
            (self.masked, self.output_error, self.anomaly) = cell_tallies;
        }
        self.slowest
            .sort_by_key(|c| std::cmp::Reverse(c.elapsed_us));
        self.slowest.truncate(SLOWEST_CELLS);
    }
}

/// Summarizes a JSONL trace read from `reader`.
///
/// # Errors
///
/// Returns a description (with line number) for any unparseable line, and
/// rejects traces with zero events — an empty trace means the instrumented
/// run recorded nothing, which the CI smoke test treats as a failure.
pub fn summarize<R: BufRead>(reader: R) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut t_range = None;
    let mut finish: Option<Json> = None;
    let mut cell_tallies = (0u64, 0u64, 0u64);
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", idx + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(&line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if v.get("ev").and_then(Json::as_str).is_none() {
            return Err(format!("line {}: record has no `ev` field", idx + 1));
        }
        if v.get("ev").and_then(Json::as_str) == Some("cell.done") {
            cell_tallies.0 += field_u64(&v, "masked");
            cell_tallies.1 += field_u64(&v, "output_error");
            cell_tallies.2 += field_u64(&v, "anomaly");
        }
        summary.absorb(&v, &mut t_range);
        if v.get("ev").and_then(Json::as_str) == Some("campaign.finish") {
            finish = Some(v);
        }
    }
    if summary.events == 0 {
        return Err("trace contains no events".to_owned());
    }
    if let Some((lo, hi)) = t_range {
        summary.span_us = hi - lo;
    }
    summary.finalize(finish.as_ref(), cell_tallies);
    Ok(summary)
}

/// Summarizes the JSONL trace file at `path` (see [`summarize`]).
///
/// # Errors
///
/// As [`summarize`], plus file-open failures.
pub fn summarize_file(path: &Path) -> Result<TraceSummary, String> {
    let file = std::fs::File::open(path)
        .map_err(|e| format!("cannot open trace {}: {e}", path.display()))?;
    summarize(std::io::BufReader::new(file))
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} events over {:.3} s",
            self.events,
            self.span_us as f64 / 1e6
        )?;

        writeln!(f, "\nevents")?;
        for (name, n) in &self.by_name {
            writeln!(f, "  {name:<20} {n}")?;
        }

        if !self.phases.is_empty() {
            writeln!(f, "\nphases (span time)")?;
            let total: u64 = self.phases.values().map(|p| p.total_us).sum();
            for (name, p) in &self.phases {
                writeln!(
                    f,
                    "  {name:<20} {:>10.3} s  ({:>5.1}%)  n={}",
                    p.total_us as f64 / 1e6,
                    pct(p.total_us, total),
                    p.count
                )?;
            }
        }

        let injections = self.masked + self.output_error + self.anomaly;
        writeln!(f, "\noutcomes ({injections} injections)")?;
        writeln!(
            f,
            "  masked               {:>8}  ({:.1}%)",
            self.masked,
            pct(self.masked, injections)
        )?;
        writeln!(
            f,
            "  output_error         {:>8}  ({:.1}%)",
            self.output_error,
            pct(self.output_error, injections)
        )?;
        writeln!(
            f,
            "  anomaly              {:>8}  ({:.1}%)",
            self.anomaly,
            pct(self.anomaly, injections)
        )?;

        writeln!(f, "\ncells")?;
        writeln!(f, "  done                 {:>8}", self.cells_done)?;
        if self.cells_restored > 0 {
            writeln!(f, "  restored             {:>8}", self.cells_restored)?;
        }
        writeln!(f, "  retried attempts     {:>8}", self.retries)?;
        writeln!(f, "  failed (budget)      {:>8}", self.cells_failed)?;
        writeln!(f, "  watchdog fires       {:>8}", self.watchdog)?;
        writeln!(f, "  checkpoint appends   {:>8}", self.checkpoint_cells)?;

        if self.slowest.iter().any(|c| c.elapsed_us > 0) {
            writeln!(f, "\nslowest cells")?;
            for c in &self.slowest {
                writeln!(
                    f,
                    "  node {:<5} {:<14} {:>10.3} s  ({} samples)",
                    c.node,
                    c.cat,
                    c.elapsed_us as f64 / 1e6,
                    c.samples
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        "{\"ev\":\"campaign.start\",\"t_us\":0,\"seq\":0,\"cells\":2}\n",
        "{\"ev\":\"span\",\"t_us\":5,\"seq\":1,\"name\":\"rfa\",\"dur_us\":5}\n",
        "{\"ev\":\"cell.done\",\"t_us\":10,\"seq\":2,\"node\":1,\"cat\":\"dp\",",
        "\"samples\":4,\"masked\":3,\"output_error\":1,\"anomaly\":0,\"elapsed_us\":9}\n",
        "{\"ev\":\"cell.retry\",\"t_us\":11,\"seq\":3,\"node\":2,\"attempt\":1}\n",
        "{\"ev\":\"cell.done\",\"t_us\":20,\"seq\":4,\"node\":2,\"cat\":\"gc\",",
        "\"samples\":4,\"masked\":2,\"output_error\":0,\"anomaly\":2,\"elapsed_us\":15}\n",
        "{\"ev\":\"campaign.finish\",\"t_us\":21,\"seq\":5,\"masked\":5,",
        "\"output_error\":1,\"anomaly\":2}\n",
    );

    #[test]
    fn summarizes_outcomes_phases_and_slowest() {
        let s = summarize(TRACE.as_bytes()).unwrap();
        assert_eq!(s.events, 6);
        assert_eq!((s.masked, s.output_error, s.anomaly), (5, 1, 2));
        assert_eq!(s.cells_done, 2);
        assert_eq!(s.retries, 1);
        assert_eq!(
            s.phases["rfa"],
            PhaseStat {
                count: 1,
                total_us: 5
            }
        );
        assert_eq!(s.slowest[0].node, 2);
        assert_eq!(s.span_us, 21);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn tallies_fall_back_to_cell_done_without_finish() {
        let partial: String = TRACE.lines().take(5).fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
        let s = summarize(partial.as_bytes()).unwrap();
        assert_eq!((s.masked, s.output_error, s.anomaly), (5, 1, 2));
    }

    #[test]
    fn rejects_empty_and_malformed_traces() {
        assert!(summarize(&b""[..]).is_err());
        assert!(summarize(&b"not json\n"[..])
            .unwrap_err()
            .contains("line 1"));
        assert!(summarize(&b"{\"no_ev\":1}\n"[..])
            .unwrap_err()
            .contains("no `ev`"));
    }
}
