//! Deterministic synthetic weight/data generation.
//!
//! Workloads substitute trained parameters with deterministic pseudo-random
//! values (see DESIGN.md §2): resilience phenomena depend on network
//! structure and numeric format, not on the particular trained weights. A
//! small SplitMix64 generator keeps every experiment bit-reproducible across
//! runs and platforms without threading an RNG through every builder.

use crate::tensor::Tensor;

/// A tiny deterministic SplitMix64 stream.
///
/// # Examples
///
/// ```
/// use fidelity_dnn::init::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The current internal state. `SplitMix64::new(state)` reconstructs a
    /// stream that continues exactly where this one is — which is how
    /// checkpointable consumers (the adaptive campaign planner) persist and
    /// resume a stream mid-way without replaying its prefix.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform value in `[-bound, bound)`.
    pub fn next_symmetric(&mut self, bound: f32) -> f32 {
        (self.next_f32() * 2.0 - 1.0) * bound
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        // Multiply-shift reduction; bias is negligible for our ranges.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A tensor of uniform values in `[-bound, bound)`, deterministic in
/// `(seed, shape)`.
pub fn uniform_tensor(seed: u64, shape: Vec<usize>, bound: f32) -> Tensor {
    let mut rng = SplitMix64::new(seed ^ mix_shape(&shape));
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.next_symmetric(bound)).collect();
    Tensor::from_vec(shape, data).expect("shape/product consistent by construction")
}

/// Kaiming-style fan-in scaled weights: uniform in `±sqrt(3 / fan_in)`.
///
/// Keeps activations in a stable range through deep stacks, which matters for
/// the quantized deployments (a blown-up dynamic range would make INT8
/// useless and distort the FIT comparison across precisions).
pub fn kaiming_tensor(seed: u64, shape: Vec<usize>, fan_in: usize) -> Tensor {
    let bound = (3.0 / fan_in.max(1) as f32).sqrt();
    uniform_tensor(seed, shape, bound)
}

fn mix_shape(shape: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &d in shape {
        h ^= d as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = uniform_tensor(42, vec![3, 3], 1.0);
        let b = uniform_tensor(42, vec![3, 3], 1.0);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform_tensor(1, vec![8], 1.0);
        let b = uniform_tensor(2, vec![8], 1.0);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn values_within_bound() {
        let t = uniform_tensor(3, vec![1000], 0.5);
        assert!(t.data().iter().all(|v| v.abs() <= 0.5));
        // And actually spread out.
        assert!(t.max_abs() > 0.25);
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let small_fan = kaiming_tensor(5, vec![100], 3);
        let big_fan = kaiming_tensor(5, vec![100], 300);
        assert!(small_fan.max_abs() > big_fan.max_abs());
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }
}
