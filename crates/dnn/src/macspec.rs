//! Geometry of multiply-accumulate layers (Conv / FC / MatMul).
//!
//! Fault injection needs three questions answered about a MAC layer
//! (Accelerator Properties 2–3 of the paper):
//!
//! 1. which output neurons consume a given input or weight value,
//! 2. in what value does an output neuron result when one operand element is
//!    substituted with a faulty value, and
//! 3. what is the canonical computation order of output neurons.
//!
//! [`MacSpec`] answers all three with the exact accumulation order also used
//! by the register-level simulator (`fidelity-rtl`), which is what makes
//! software fault models bit-exact against the golden reference.

use crate::error::DnnError;
use crate::tensor::Tensor;

/// Numeric tier of the packed MAC kernels.
///
/// `Bitwise` is the default and the only tier the fault models may run
/// under implicitly: every kernel is byte-for-byte identical to the scalar
/// [`MacSpec::compute_at`] oracle (terms per output neuron in ascending
/// kernel-step order, padding steps genuinely skipped). Its lane kernels
/// vectorize *across* independent output neurons, which cannot change any
/// neuron's accumulation order.
///
/// `Fast` is opt-in and may split the contraction of one neuron into four
/// lanes combined by a fixed tree reduction — faster, but a different (still
/// deterministic) rounding order. Its divergence from `Bitwise` is itself a
/// measured, reported quantity ([`MacSpec::fast_divergence`]), never an
/// estimate.
///
/// One caveat applies to both tiers: *which* outputs are NaN is fully
/// deterministic, but a NaN's payload bits are the single part of IEEE-754
/// arithmetic the compiler may legally vary between code locations (float
/// add/mul commute in LLVM, and x86 NaN propagation picks the surviving
/// payload by operand order). Differential comparisons must therefore treat
/// all NaNs as equal; every campaign statistic (outcomes, masking bits,
/// checkpoint bytes) is already NaN-payload-insensitive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MacTier {
    /// Byte-identical to the scalar `compute_at` oracle. Default.
    #[default]
    Bitwise,
    /// 4-lane tree-reduced contraction for dense/matmul-transposed dots.
    /// Opt-in; divergence vs. `Bitwise` is measured exactly and reported.
    Fast,
}

impl MacTier {
    /// Canonical lowercase name (CLI / JSON / fingerprint form).
    pub fn as_str(&self) -> &'static str {
        match self {
            MacTier::Bitwise => "bitwise",
            MacTier::Fast => "fast",
        }
    }

    /// Parses the canonical name; `None` for anything else.
    pub fn parse(s: &str) -> Option<MacTier> {
        match s {
            "bitwise" => Some(MacTier::Bitwise),
            "fast" => Some(MacTier::Fast),
            _ => None,
        }
    }
}

/// Which operand of a MAC layer a substitution applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// The activation operand (first input).
    Input,
    /// The weight / second operand.
    Weight,
}

/// A single-element override of one MAC operand: "element `offset` of the
/// `kind` operand has value `value` instead of its stored value".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Substitution {
    /// Operand the faulty value lives in.
    pub kind: OperandKind,
    /// Flat offset of the element within that operand tensor.
    pub offset: usize,
    /// The faulty value.
    pub value: f32,
}

/// A validated transient accumulator bit flip: IEEE-754 f32 bit `bit` of
/// the running accumulator is flipped just before the term of kernel step
/// `flip_before_step` is accumulated (a step count of `kernel_steps()` or
/// more flips after the final term).
///
/// Construction rejects out-of-range bit indices, so downstream code never
/// has to clamp silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccFlip {
    flip_before_step: usize,
    bit: u32,
}

impl AccFlip {
    /// Validates and builds an accumulator flip.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] when `bit` is not a valid f32 bit
    /// index (`0..=31`). The flip step needs no validation: any value at or
    /// past `kernel_steps()` means "flip after the final term".
    pub fn new(flip_before_step: usize, bit: u32) -> Result<AccFlip, DnnError> {
        if bit >= 32 {
            return Err(DnnError::InvalidConfig {
                message: format!("accumulator flip bit {bit} out of range for f32 (0..=31)"),
            });
        }
        Ok(AccFlip {
            flip_before_step,
            bit,
        })
    }

    /// Kernel step before which the flip is applied.
    pub fn flip_before_step(&self) -> usize {
        self.flip_before_step
    }

    /// The flipped f32 bit index (`0..=31`).
    pub fn bit(&self) -> u32 {
        self.bit
    }
}

/// The two operand tensors of a MAC layer.
#[derive(Clone, Copy, Debug)]
pub struct Operands<'a> {
    /// Activation operand.
    pub input: &'a Tensor,
    /// Weight operand (for MatMul, the second activation).
    pub weight: &'a Tensor,
}

impl<'a> Operands<'a> {
    fn fetch(&self, kind: OperandKind, offset: usize, subst: Option<&Substitution>) -> f32 {
        if let Some(s) = subst {
            if s.kind == kind && s.offset == offset {
                return s.value;
            }
        }
        match kind {
            OperandKind::Input => self.input.data()[offset],
            OperandKind::Weight => self.weight.data()[offset],
        }
    }
}

/// Geometry of a 2-D convolution (NCHW input, OIHW weight).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvSpec {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// (vertical, horizontal) stride.
    pub stride: (usize, usize),
    /// (vertical, horizontal) zero padding.
    pub padding: (usize, usize),
    /// (vertical, horizontal) dilation.
    pub dilation: (usize, usize),
    /// Channel groups (`in_c` for depthwise).
    pub groups: usize,
}

impl ConvSpec {
    /// Output height.
    pub fn out_h(&self) -> usize {
        conv_out_dim(
            self.in_h,
            self.kh,
            self.stride.0,
            self.padding.0,
            self.dilation.0,
        )
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        conv_out_dim(
            self.in_w,
            self.kw,
            self.stride.1,
            self.padding.1,
            self.dilation.1,
        )
    }

    /// Input channels per group.
    pub fn group_in_c(&self) -> usize {
        self.in_c / self.groups
    }

    /// Output channels per group.
    pub fn group_out_c(&self) -> usize {
        self.out_c / self.groups
    }
}

/// The output rows (or columns) of a conv/pool dimension whose receptive
/// field intersects the input rows `[lo, hi)` — the forward image of an
/// input window, used by the delta resume path to narrow recomputation.
/// Exact for the geometry (every returned output can touch the window, and
/// no output outside the range can).
pub fn conv_out_window(
    (lo, hi): (usize, usize),
    k: usize,
    stride: usize,
    pad: usize,
    dilation: usize,
    out_dim: usize,
) -> (usize, usize) {
    if lo >= hi || out_dim == 0 {
        return (0, 0);
    }
    // Output `o` reads input rows `o·stride − pad ..= o·stride − pad + reach`.
    let reach = dilation * (k - 1);
    let out_lo = if lo + pad > reach {
        (lo + pad - reach).div_ceil(stride)
    } else {
        0
    };
    let out_hi = ((hi - 1 + pad) / stride + 1).min(out_dim);
    (out_lo.min(out_hi), out_hi)
}

/// Output spatial size of a convolution/pooling dimension.
pub fn conv_out_dim(inp: usize, k: usize, stride: usize, pad: usize, dilation: usize) -> usize {
    let eff_k = dilation * (k - 1) + 1;
    let padded = inp + 2 * pad;
    if padded < eff_k {
        0
    } else {
        (padded - eff_k) / stride + 1
    }
}

/// Geometry of a fully-connected layer (`[batch, in] × [out, in]ᵀ`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseSpec {
    /// Batch size.
    pub batch: usize,
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
}

/// Geometry of a (optionally batched) matrix multiplication `A·B`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatMulSpec {
    /// Leading batch dimension (1 for plain 2-D matmul).
    pub batch: usize,
    /// Rows of `A` / the output.
    pub m: usize,
    /// Contraction length.
    pub k: usize,
    /// Columns of `B` / the output.
    pub n: usize,
    /// When true, `B` is stored `[n, k]` and used transposed.
    pub transpose_b: bool,
}

/// Geometry of one of the three MAC layer families of Table II.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MacSpec {
    /// Convolution.
    Conv(ConvSpec),
    /// Fully-connected.
    Dense(DenseSpec),
    /// Matrix multiplication.
    MatMul(MatMulSpec),
}

impl MacSpec {
    /// Shape of the output tensor.
    pub fn out_shape(&self) -> Vec<usize> {
        match self {
            MacSpec::Conv(c) => vec![c.batch, c.out_c, c.out_h(), c.out_w()],
            MacSpec::Dense(d) => vec![d.batch, d.out_features],
            MacSpec::MatMul(m) => {
                if m.batch == 1 {
                    vec![m.m, m.n]
                } else {
                    vec![m.batch, m.m, m.n]
                }
            }
        }
    }

    /// Total number of output neurons.
    pub fn out_len(&self) -> usize {
        self.out_shape().iter().product()
    }

    /// Number of multiply-accumulate operations performed by the layer.
    pub fn macs(&self) -> u64 {
        match self {
            MacSpec::Conv(c) => {
                (c.batch * c.out_c * c.out_h() * c.out_w() * c.group_in_c() * c.kh * c.kw) as u64
            }
            MacSpec::Dense(d) => (d.batch * d.out_features * d.in_features) as u64,
            MacSpec::MatMul(m) => (m.batch * m.m * m.n * m.k) as u64,
        }
    }

    /// Number of output "positions": batch·oh·ow for conv, batch for dense,
    /// batch·rows for matmul. Together with [`MacSpec::channel_count`] this
    /// is the position/channel coordinate system accelerator dataflows
    /// schedule over (positions stream temporally, channels map to parallel
    /// MAC lanes).
    pub fn position_count(&self) -> usize {
        match self {
            MacSpec::Conv(c) => c.batch * c.out_h() * c.out_w(),
            MacSpec::Dense(d) => d.batch,
            MacSpec::MatMul(m) => m.batch * m.m,
        }
    }

    /// Number of output "channels": out_c for conv, features for dense,
    /// columns for matmul.
    pub fn channel_count(&self) -> usize {
        match self {
            MacSpec::Conv(c) => c.out_c,
            MacSpec::Dense(d) => d.out_features,
            MacSpec::MatMul(m) => m.n,
        }
    }

    /// Flat output offset of the neuron at (position, channel).
    pub fn offset_of(&self, position: usize, channel: usize) -> usize {
        match self {
            MacSpec::Conv(c) => {
                let hw = c.out_h() * c.out_w();
                let b = position / hw;
                let pos = position % hw;
                (b * c.out_c + channel) * hw + pos
            }
            MacSpec::Dense(d) => position * d.out_features + channel,
            MacSpec::MatMul(m) => position * m.n + channel,
        }
    }

    /// Inverse of [`MacSpec::offset_of`].
    pub fn coords_of(&self, out_offset: usize) -> (usize, usize) {
        match self {
            MacSpec::Conv(c) => {
                let hw = c.out_h() * c.out_w();
                let b = out_offset / (c.out_c * hw);
                let rem = out_offset % (c.out_c * hw);
                let channel = rem / hw;
                (b * hw + rem % hw, channel)
            }
            MacSpec::Dense(d) => (out_offset / d.out_features, out_offset % d.out_features),
            MacSpec::MatMul(m) => (out_offset / m.n, out_offset % m.n),
        }
    }

    /// Number of kernel/contraction steps per output neuron (including
    /// padding-gated steps for conv).
    pub fn kernel_steps(&self) -> usize {
        match self {
            MacSpec::Conv(c) => c.group_in_c() * c.kh * c.kw,
            MacSpec::Dense(d) => d.in_features,
            MacSpec::MatMul(m) => m.k,
        }
    }

    /// Computes one output neuron with a transient accumulator bit flip
    /// ([`AccFlip`]) applied just before the term of its kernel step is
    /// accumulated.
    ///
    /// Accumulation order is identical to [`MacSpec::compute_at`] and to the
    /// register-level simulator, so the result is bit-exact against a
    /// hardware accumulator flip.
    pub fn compute_at_acc_flip(
        &self,
        operands: &Operands<'_>,
        out_offset: usize,
        flip: AccFlip,
    ) -> f32 {
        self.accumulate(operands, out_offset, None, Some(flip))
    }

    /// The one definition of the per-neuron accumulation loop. Every other
    /// evaluator — [`MacSpec::compute_at`], [`MacSpec::compute_at_acc_flip`],
    /// and (by bit-equality tests) the packed [`MacSpec::forward_into`]
    /// kernels — reduces to this term order: gated (padding) steps are
    /// genuinely skipped, never accumulated as `+0.0`, and terms are added
    /// in ascending kernel-step order.
    fn accumulate(
        &self,
        operands: &Operands<'_>,
        out_offset: usize,
        subst: Option<&Substitution>,
        flip: Option<AccFlip>,
    ) -> f32 {
        let mut acc = 0.0f32;
        let mut flipped = false;
        let total = self.kernel_steps();
        for step in 0..total {
            if let Some(f) = flip {
                if step == f.flip_before_step {
                    acc = f32::from_bits(acc.to_bits() ^ (1 << f.bit));
                    flipped = true;
                }
            }
            if let Some((in_off, w_off)) = self.term_offsets(out_offset, step) {
                let x = operands.fetch(OperandKind::Input, in_off, subst);
                let w = operands.fetch(OperandKind::Weight, w_off, subst);
                acc += x * w;
            }
        }
        if let Some(f) = flip {
            if !flipped {
                acc = f32::from_bits(acc.to_bits() ^ (1 << f.bit));
            }
        }
        acc
    }

    /// The (input, weight) flat offsets of kernel step `step` of the given
    /// output neuron, or `None` when the step is gated (conv padding).
    pub fn term_offsets(&self, out_offset: usize, step: usize) -> Option<(usize, usize)> {
        match self {
            MacSpec::Conv(c) => conv_term_offsets(c, out_offset, step),
            MacSpec::Dense(d) => {
                let b = out_offset / d.out_features;
                let o = out_offset % d.out_features;
                Some((b * d.in_features + step, o * d.in_features + step))
            }
            MacSpec::MatMul(m) => {
                let per_batch = m.m * m.n;
                let g = out_offset / per_batch;
                let rem = out_offset % per_batch;
                let r = rem / m.n;
                let cc = rem % m.n;
                let a_off = (g * m.m + r) * m.k + step;
                let b_off = if m.transpose_b {
                    (g * m.n + cc) * m.k + step
                } else {
                    (g * m.k + step) * m.n + cc
                };
                Some((a_off, b_off))
            }
        }
    }

    /// Computes the whole output tensor into `out` (flat row-major) with a
    /// temporary [`KernelScratch`]. Hot paths should prefer
    /// [`MacSpec::forward_into_scratch`] with a reused scratch so the panel
    /// and accumulator buffers are not reallocated per call.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.out_len()`.
    pub fn forward_into(&self, operands: &Operands<'_>, out: &mut [f32]) {
        let mut scratch = KernelScratch::default();
        self.forward_into_scratch(operands, out, &mut scratch);
    }

    /// Computes the whole output tensor into `out` (flat row-major) using
    /// packed kernels: padding-valid `kh`/`ow` ranges are hoisted out of the
    /// inner loops, conv input rows are packed once per (batch, group,
    /// output row) into an im2col-style panel reused across the group's
    /// output channels, and the inner loops run over contiguous slices with
    /// no bounds checks.
    ///
    /// The accumulation order per neuron is byte-for-byte identical to
    /// [`MacSpec::compute_at`] — gated padding terms are skipped outright
    /// (never accumulated as `+0.0`, which would perturb signed zeros and
    /// non-finite values) and terms are added in ascending kernel-step order
    /// — so layer forwards and per-neuron fault recomputation never diverge.
    /// Tests assert bit-equality per neuron.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.out_len()`.
    pub fn forward_into_scratch(
        &self,
        operands: &Operands<'_>,
        out: &mut [f32],
        scratch: &mut KernelScratch,
    ) {
        assert_eq!(out.len(), self.out_len(), "output buffer size mismatch");
        let x = operands.input.data();
        let w = operands.weight.data();
        match self {
            MacSpec::Conv(c) => conv_forward_packed(c, x, w, out, scratch),
            MacSpec::Dense(d) => {
                for b in 0..d.batch {
                    let x_row = &x[b * d.in_features..(b + 1) * d.in_features];
                    let out_row = &mut out[b * d.out_features..(b + 1) * d.out_features];
                    dot_rows_bitwise(x_row, w, d.in_features, out_row);
                }
            }
            MacSpec::MatMul(m) => {
                if m.transpose_b {
                    for g in 0..m.batch {
                        let b_mat = &w[g * m.n * m.k..][..m.n * m.k];
                        for r in 0..m.m {
                            let a_row = &x[(g * m.m + r) * m.k..][..m.k];
                            let out_row = &mut out[(g * m.m + r) * m.n..][..m.n];
                            dot_rows_bitwise(a_row, b_mat, m.k, out_row);
                        }
                    }
                } else {
                    // B is walked row-contiguously by interchanging the
                    // loops: a row of accumulators (one per output column)
                    // receives the `kk`-th term of every column before the
                    // next `kk` — per neuron this is still ascending
                    // contraction order, identical to `compute_at`.
                    scratch.acc.clear();
                    scratch.acc.resize(m.n, 0.0);
                    let acc = &mut scratch.acc[..m.n];
                    for g in 0..m.batch {
                        let b_mat = &w[g * m.k * m.n..][..m.k * m.n];
                        for r in 0..m.m {
                            let a_row = &x[(g * m.m + r) * m.k..][..m.k];
                            acc.fill(0.0);
                            for (kk, av) in a_row.iter().enumerate() {
                                let b_row = &b_mat[kk * m.n..][..m.n];
                                axpy_lanes(acc, b_row, *av);
                            }
                            out[(g * m.m + r) * m.n..][..m.n].copy_from_slice(acc);
                        }
                    }
                }
            }
        }
    }

    /// Tier-dispatching variant of [`MacSpec::forward_into_scratch`].
    ///
    /// `MacTier::Bitwise` is exactly `forward_into_scratch`. `MacTier::Fast`
    /// replaces the dense / transposed-matmul dot products with a 4-lane
    /// tree-reduced contraction ([`dot_fast`]); conv and non-transposed
    /// matmul kernels are already vectorized across independent outputs and
    /// keep their bitwise accumulation order, so their `Fast` divergence is
    /// exactly zero by construction.
    pub fn forward_tier_into_scratch(
        &self,
        operands: &Operands<'_>,
        out: &mut [f32],
        scratch: &mut KernelScratch,
        tier: MacTier,
    ) {
        if tier == MacTier::Bitwise {
            self.forward_into_scratch(operands, out, scratch);
            return;
        }
        assert_eq!(out.len(), self.out_len(), "output buffer size mismatch");
        let x = operands.input.data();
        let w = operands.weight.data();
        match self {
            MacSpec::Dense(d) => {
                for b in 0..d.batch {
                    let x_row = &x[b * d.in_features..(b + 1) * d.in_features];
                    let out_row = &mut out[b * d.out_features..(b + 1) * d.out_features];
                    for (o, out_v) in out_row.iter_mut().enumerate() {
                        *out_v = dot_fast(x_row, &w[o * d.in_features..][..d.in_features]);
                    }
                }
            }
            MacSpec::MatMul(m) if m.transpose_b => {
                for g in 0..m.batch {
                    for r in 0..m.m {
                        let a_row = &x[(g * m.m + r) * m.k..][..m.k];
                        let out_row = &mut out[(g * m.m + r) * m.n..][..m.n];
                        for (cc, out_v) in out_row.iter_mut().enumerate() {
                            *out_v = dot_fast(a_row, &w[(g * m.n + cc) * m.k..][..m.k]);
                        }
                    }
                }
            }
            _ => self.forward_into_scratch(operands, out, scratch),
        }
    }

    /// Computes only the output elements whose spatial coordinates fall in
    /// `h = [h0, h1)` × `w = [w0, w1)` (all batches and channels), leaving
    /// every other element of `out` untouched. Returns `false` — without
    /// writing anything — when this spec has no spatial output (dense,
    /// matmul); callers then fall back to a full forward.
    ///
    /// Within the window the values are byte-identical to
    /// [`MacSpec::forward_into_scratch`]: same packed kernel, same per-neuron
    /// ascending-step accumulation order, merely restricted to a sub-range
    /// of output rows/columns.
    pub fn forward_region_into_scratch(
        &self,
        operands: &Operands<'_>,
        out: &mut [f32],
        scratch: &mut KernelScratch,
        h: (usize, usize),
        w_win: (usize, usize),
    ) -> bool {
        match self {
            MacSpec::Conv(c) => {
                assert_eq!(out.len(), self.out_len(), "output buffer size mismatch");
                conv_forward_window(
                    c,
                    operands.input.data(),
                    operands.weight.data(),
                    out,
                    scratch,
                    h,
                    w_win,
                );
                true
            }
            _ => false,
        }
    }

    /// Exact maximum absolute divergence of the `Fast` tier from the
    /// `Bitwise` tier over every output neuron for these operands.
    ///
    /// This is a measurement, not a bound: both tiers are fully evaluated
    /// and compared element-wise. Bit-identical elements (including NaNs
    /// with equal payloads) contribute `0.0`; a NaN mismatch contributes
    /// `+∞` so it can never be mistaken for a small rounding delta.
    pub fn fast_divergence(&self, operands: &Operands<'_>) -> f32 {
        let mut scratch = KernelScratch::default();
        let mut bitwise = vec![0.0f32; self.out_len()];
        let mut fast = vec![0.0f32; self.out_len()];
        self.forward_into_scratch(operands, &mut bitwise, &mut scratch);
        self.forward_tier_into_scratch(operands, &mut fast, &mut scratch, MacTier::Fast);
        let mut max = 0.0f32;
        for (a, b) in bitwise.iter().zip(&fast) {
            if a.to_bits() == b.to_bits() {
                continue;
            }
            let d = (a - b).abs();
            max = max.max(if d.is_nan() { f32::INFINITY } else { d });
        }
        max
    }

    /// Computes the value of one output neuron (identified by flat offset
    /// into the output tensor) from the operands, applying an optional
    /// single-element substitution.
    ///
    /// The accumulation order is fixed (channel-major, then kernel row, then
    /// kernel column for conv; contraction index for dense/matmul) and is
    /// shared with the register-level simulator.
    pub fn compute_at(
        &self,
        operands: &Operands<'_>,
        out_offset: usize,
        subst: Option<&Substitution>,
    ) -> f32 {
        self.accumulate(operands, out_offset, subst, None)
    }

    /// Flat output offsets of every neuron that consumes the weight-operand
    /// element at `weight_offset`, in canonical computation order.
    ///
    /// This realizes the "before on-chip memory" weight rows of Table II:
    /// conv → the whole output channel, FC → one neuron per batch, matmul →
    /// the output column.
    pub fn neurons_using_weight(&self, weight_offset: usize) -> Vec<usize> {
        match self {
            MacSpec::Conv(c) => {
                let w_per_oc = c.group_in_c() * c.kh * c.kw;
                let oc = weight_offset / w_per_oc;
                let (oh, ow) = (c.out_h(), c.out_w());
                let mut v = Vec::with_capacity(c.batch * oh * ow);
                for b in 0..c.batch {
                    let base = (b * c.out_c + oc) * oh * ow;
                    v.extend(base..base + oh * ow);
                }
                v
            }
            MacSpec::Dense(d) => {
                let o = weight_offset / d.in_features;
                (0..d.batch).map(|b| b * d.out_features + o).collect()
            }
            MacSpec::MatMul(mm) => {
                // B is [batch, k, n] or [batch, n, k] when transposed.
                let per_batch = mm.k * mm.n;
                let g = weight_offset / per_batch;
                let rem = weight_offset % per_batch;
                let n0 = if mm.transpose_b {
                    rem / mm.k
                } else {
                    rem % mm.n
                };
                let base = g * mm.m * mm.n;
                (0..mm.m).map(|r| base + r * mm.n + n0).collect()
            }
        }
    }

    /// Flat output offsets of every neuron that consumes the input-operand
    /// element at `input_offset`, in canonical computation order.
    pub fn neurons_using_input(&self, input_offset: usize) -> Vec<usize> {
        match self {
            MacSpec::Conv(c) => conv_neurons_using_input(c, input_offset),
            MacSpec::Dense(d) => {
                let b = input_offset / d.in_features;
                let base = b * d.out_features;
                (base..base + d.out_features).collect()
            }
            MacSpec::MatMul(mm) => {
                let per_batch = mm.m * mm.k;
                let g = input_offset / per_batch;
                let rem = input_offset % per_batch;
                let m0 = rem / mm.k;
                let base = g * mm.m * mm.n + m0 * mm.n;
                (base..base + mm.n).collect()
            }
        }
    }
}

/// Reusable scratch buffers for the packed [`MacSpec::forward_into_scratch`]
/// kernels: the im2col-style panel, the per-output-row accumulator, and the
/// hoisted per-`kw` valid output-column ranges.
///
/// Contents are transient — every kernel invocation fully re-derives what it
/// reads — so one scratch can be reused across layers and specs of any
/// shape. Reuse only saves the allocations.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Packed input panel: `kernel_steps × out_w` values per (batch, group,
    /// output row). Only padding-valid regions are written and read.
    panel: Vec<f32>,
    /// One accumulator per output column (conv) / output column (matmul).
    acc: Vec<f32>,
    /// Per-`kw` valid `[lo, hi)` output-column ranges.
    ranges: Vec<(usize, usize)>,
    /// Narrow-window tap compaction: gathered input values for one output
    /// position, ascending (ic, kh, kw) over the padding-valid taps.
    tap_x: Vec<f32>,
    /// Kernel-step index (`ic·kh·kw` flat) of each gathered tap, parallel
    /// to `tap_x`.
    tap_step: Vec<usize>,
}

impl KernelScratch {
    /// A scratch with empty buffers; they grow on first use.
    pub fn new() -> Self {
        KernelScratch::default()
    }
}

/// Unroll width of the bitwise lane kernels: eight independent output
/// accumulators advance together, which breaks the floating-point add
/// latency chain without touching any single neuron's accumulation order.
const LANES: usize = 8;

/// `acc[i] += xs[i] * wv` over equal-length slices, eight outputs per
/// unrolled step. Every `acc[i]` is an independent accumulator, so the
/// result is bit-identical to the scalar loop for any chunking.
#[inline]
fn axpy_lanes(acc: &mut [f32], xs: &[f32], wv: f32) {
    let n = acc.len().min(xs.len());
    let main = n - n % LANES;
    let (a_main, a_tail) = acc[..n].split_at_mut(main);
    let (x_main, x_tail) = xs[..n].split_at(main);
    for (a, xv) in a_main
        .chunks_exact_mut(LANES)
        .zip(x_main.chunks_exact(LANES))
    {
        a[0] += xv[0] * wv;
        a[1] += xv[1] * wv;
        a[2] += xv[2] * wv;
        a[3] += xv[3] * wv;
        a[4] += xv[4] * wv;
        a[5] += xv[5] * wv;
        a[6] += xv[6] * wv;
        a[7] += xv[7] * wv;
    }
    for (a, xv) in a_tail.iter_mut().zip(x_tail) {
        *a += xv * wv;
    }
}

/// One dot product per row of `w` (rows of `k = x_row.len()` values at
/// stride `stride`), eight rows advanced in lock-step. Each output's terms
/// are added in ascending contraction order into its own accumulator —
/// bit-identical to eight scalar dots — but the eight independent adds
/// break the fadd latency chain that serializes the scalar loop.
#[inline]
fn dot_rows_bitwise(x_row: &[f32], w: &[f32], stride: usize, out: &mut [f32]) {
    let k = x_row.len();
    let mut o = 0;
    while o + LANES <= out.len() {
        let rows: [&[f32]; LANES] = core::array::from_fn(|j| &w[(o + j) * stride..][..k]);
        let mut acc = [0.0f32; LANES];
        for (i, &xv) in x_row.iter().enumerate() {
            acc[0] += xv * rows[0][i];
            acc[1] += xv * rows[1][i];
            acc[2] += xv * rows[2][i];
            acc[3] += xv * rows[3][i];
            acc[4] += xv * rows[4][i];
            acc[5] += xv * rows[5][i];
            acc[6] += xv * rows[6][i];
            acc[7] += xv * rows[7][i];
        }
        out[o..o + LANES].copy_from_slice(&acc);
        o += LANES;
    }
    for (j, out_v) in out[o..].iter_mut().enumerate() {
        let w_row = &w[(o + j) * stride..][..k];
        let mut acc = 0.0f32;
        for (xv, wv) in x_row.iter().zip(w_row) {
            acc += xv * wv;
        }
        *out_v = acc;
    }
}

/// 4-lane tree-reduced dot product — the `Fast` tier contraction. Lane `l`
/// accumulates terms `l, l+4, l+8, …`; the lanes combine as
/// `(l0 + l1) + (l2 + l3)` and any tail terms are then added in ascending
/// order. Deterministic, but a different rounding order than the bitwise
/// oracle — which is exactly what [`MacSpec::fast_divergence`] measures.
#[inline]
fn dot_fast(xs: &[f32], ws: &[f32]) -> f32 {
    let n = xs.len().min(ws.len());
    let main = n - n % 4;
    let (xm, xt) = xs[..n].split_at(main);
    let (wm, wt) = ws[..n].split_at(main);
    let mut l = [0.0f32; 4];
    for (xc, wc) in xm.chunks_exact(4).zip(wm.chunks_exact(4)) {
        l[0] += xc[0] * wc[0];
        l[1] += xc[1] * wc[1];
        l[2] += xc[2] * wc[2];
        l[3] += xc[3] * wc[3];
    }
    let mut acc = (l[0] + l[1]) + (l[2] + l[3]);
    for (xv, wv) in xt.iter().zip(wt) {
        acc += xv * wv;
    }
    acc
}

/// Packed conv kernel. See [`MacSpec::forward_into_scratch`] for the
/// bit-identity contract.
fn conv_forward_packed(c: &ConvSpec, x: &[f32], w: &[f32], out: &mut [f32], s: &mut KernelScratch) {
    conv_forward_window(c, x, w, out, s, (0, usize::MAX), (0, usize::MAX));
}

/// Packed conv kernel restricted to the output window `h = [h0, h1)` ×
/// `w = [w0, w1)` (clamped to the output dims; all batches and channels).
/// Elements outside the window are left untouched; elements inside it are
/// byte-identical to the full [`conv_forward_packed`] pass, because the
/// window only narrows the `oh` loop and the hoisted per-`kw` column
/// ranges — each computed neuron still sees the identical term sequence.
fn conv_forward_window(
    c: &ConvSpec,
    x: &[f32],
    w: &[f32],
    out: &mut [f32],
    s: &mut KernelScratch,
    (h0, h1): (usize, usize),
    (w0, w1): (usize, usize),
) {
    let (oh_dim, ow_dim) = (c.out_h(), c.out_w());
    let (h0, h1) = (h0.min(oh_dim), h1.min(oh_dim));
    let (w0, w1) = (w0.min(ow_dim), w1.min(ow_dim));
    if h0 >= h1 || w0 >= w1 {
        return;
    }
    let gic = c.group_in_c();
    let goc = c.group_out_c();
    let (s0, s1) = c.stride;
    let (p0, p1) = c.padding;
    let (d0, d1) = c.dilation;
    let khw = c.kh * c.kw;
    let steps = gic * khw;

    if w1 - w0 < LANES {
        conv_window_narrow(c, x, w, out, s, (h0, h1), (w0, w1));
        return;
    }

    // Valid output columns for each kernel column, hoisted out of every
    // loop below: `iw = ow·s1 + kw·d1 − p1` must land in `[0, in_w)`, and
    // because `iw` is monotone in `ow` the valid set is one contiguous
    // range.
    let KernelScratch {
        panel, acc, ranges, ..
    } = s;
    ranges.clear();
    for kw_i in 0..c.kw {
        let shift = kw_i * d1;
        let lo = if shift >= p1 {
            0
        } else {
            (p1 - shift).div_ceil(s1)
        };
        let hi = if c.in_w + p1 <= shift {
            0
        } else {
            ((c.in_w + p1 - shift - 1) / s1 + 1).min(ow_dim)
        };
        // Window clamp: columns outside [w0, w1) are neither packed nor
        // accumulated nor written, so they cannot affect window columns.
        let lo = lo.max(w0);
        let hi = hi.min(w1);
        ranges.push((lo.min(hi), hi));
    }

    acc.clear();
    acc.resize(ow_dim, 0.0);
    let acc = &mut acc[..ow_dim];
    // Packing pays off only when the panel is reused across several output
    // channels; depthwise groups (one output channel each) read the input
    // directly.
    let pack = goc > 1;
    if pack {
        panel.clear();
        panel.resize(steps * ow_dim, 0.0);
    }

    for b in 0..c.batch {
        for group in 0..c.groups {
            let ic_base = group * gic;
            for oh in h0..h1 {
                // Valid kernel rows for this output row, by the same
                // monotonicity argument as the column ranges.
                let row0 = oh * s0;
                let kh_lo = if row0 >= p0 {
                    0
                } else {
                    (p0 - row0).div_ceil(d0)
                };
                let kh_hi = if c.in_h + p0 <= row0 {
                    0
                } else {
                    ((c.in_h + p0 - row0 - 1) / d0 + 1).min(c.kh)
                };
                let kh_lo = kh_lo.min(kh_hi);

                if pack {
                    // Pack every padding-valid (ic, kh, kw) input row
                    // segment once; the panel row for kernel step
                    // (ic, kh, kw) holds the input value each output column
                    // would read.
                    for ic in 0..gic {
                        let in_plane = (b * c.in_c + ic_base + ic) * c.in_h;
                        for kh_i in kh_lo..kh_hi {
                            let ih = row0 + kh_i * d0 - p0;
                            let in_row = (in_plane + ih) * c.in_w;
                            for (kw_i, &(lo, hi)) in ranges.iter().enumerate() {
                                if lo >= hi {
                                    continue;
                                }
                                let dst_base = (ic * khw + kh_i * c.kw + kw_i) * ow_dim;
                                let dst = &mut panel[dst_base + lo..dst_base + hi];
                                let src_start = in_row + lo * s1 + kw_i * d1 - p1;
                                if s1 == 1 {
                                    dst.copy_from_slice(&x[src_start..src_start + (hi - lo)]);
                                } else {
                                    for (dv, sv) in
                                        dst.iter_mut().zip(x[src_start..].iter().step_by(s1))
                                    {
                                        *dv = *sv;
                                    }
                                }
                            }
                        }
                    }
                }

                for oc_g in 0..goc {
                    let oc = group * goc + oc_g;
                    let w_base = oc * steps;
                    acc.fill(0.0);
                    for ic in 0..gic {
                        let w_plane = w_base + ic * khw;
                        let in_plane = (b * c.in_c + ic_base + ic) * c.in_h;
                        for kh_i in kh_lo..kh_hi {
                            let w_row = w_plane + kh_i * c.kw;
                            let in_row = (in_plane + (row0 + kh_i * d0 - p0)) * c.in_w;
                            for (kw_i, &(lo, hi)) in ranges.iter().enumerate() {
                                if lo >= hi {
                                    continue;
                                }
                                let wv = w[w_row + kw_i];
                                if pack {
                                    let src = (ic * khw + kh_i * c.kw + kw_i) * ow_dim;
                                    axpy_lanes(&mut acc[lo..hi], &panel[src + lo..src + hi], wv);
                                } else {
                                    let src_start = in_row + lo * s1 + kw_i * d1 - p1;
                                    if s1 == 1 {
                                        axpy_lanes(
                                            &mut acc[lo..hi],
                                            &x[src_start..src_start + (hi - lo)],
                                            wv,
                                        );
                                    } else {
                                        for (a, xv) in acc[lo..hi]
                                            .iter_mut()
                                            .zip(x[src_start..].iter().step_by(s1))
                                        {
                                            *a += xv * wv;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    let out_base = ((b * c.out_c + oc) * oh_dim + oh) * ow_dim;
                    out[out_base + w0..out_base + w1].copy_from_slice(&acc[w0..w1]);
                }
            }
        }
    }
}

/// Narrow-window conv kernel: when fewer than [`LANES`] output columns are
/// requested, the packed kernel's per-tap `axpy` calls over 1–7-element
/// column segments are almost pure call overhead. Here each output position
/// instead compacts its padding-valid taps once (value + kernel-step index,
/// ascending `(ic, kh, kw)`) and up to [`LANES`] output channels accumulate
/// over that tap list in lock-step — independent accumulators, so every
/// neuron still sums its terms in the canonical ascending-step order and
/// the result is byte-identical to the packed kernel and to
/// [`MacSpec::compute_at`].
fn conv_window_narrow(
    c: &ConvSpec,
    x: &[f32],
    w: &[f32],
    out: &mut [f32],
    s: &mut KernelScratch,
    (h0, h1): (usize, usize),
    (w0, w1): (usize, usize),
) {
    let (oh_dim, ow_dim) = (c.out_h(), c.out_w());
    let gic = c.group_in_c();
    let goc = c.group_out_c();
    let (s0, s1) = c.stride;
    let (p0, p1) = c.padding;
    let (d0, d1) = c.dilation;
    let khw = c.kh * c.kw;
    let steps = gic * khw;
    let KernelScratch {
        tap_x, tap_step, ..
    } = s;

    for b in 0..c.batch {
        for group in 0..c.groups {
            let ic_base = group * gic;
            for oh in h0..h1 {
                let row0 = oh * s0;
                // Valid kernel rows: `ih = row0 + kh·d0 − p0 ∈ [0, in_h)`.
                let kh_lo = if row0 >= p0 {
                    0
                } else {
                    (p0 - row0).div_ceil(d0)
                };
                let kh_hi = if c.in_h + p0 <= row0 {
                    0
                } else {
                    ((c.in_h + p0 - row0 - 1) / d0 + 1).min(c.kh)
                };
                let kh_lo = kh_lo.min(kh_hi);

                for ow in w0..w1 {
                    let col0 = ow * s1;
                    tap_x.clear();
                    tap_step.clear();
                    for ic in 0..gic {
                        let in_plane = (b * c.in_c + ic_base + ic) * c.in_h;
                        let step_plane = ic * khw;
                        for kh_i in kh_lo..kh_hi {
                            let in_row = (in_plane + (row0 + kh_i * d0 - p0)) * c.in_w;
                            let step_row = step_plane + kh_i * c.kw;
                            for kw_i in 0..c.kw {
                                let iw = col0 + kw_i * d1;
                                if iw < p1 || iw - p1 >= c.in_w {
                                    continue;
                                }
                                tap_x.push(x[in_row + iw - p1]);
                                tap_step.push(step_row + kw_i);
                            }
                        }
                    }

                    let mut oc_g = 0;
                    while oc_g < goc {
                        let l = LANES.min(goc - oc_g);
                        // Unused lanes alias lane 0; their accumulators are
                        // computed and discarded, never written out.
                        let rows: [&[f32]; LANES] = core::array::from_fn(|j| {
                            let oc = group * goc + oc_g + j.min(l - 1);
                            &w[oc * steps..][..steps]
                        });
                        let mut accs = [0.0f32; LANES];
                        if l == LANES {
                            for (&xv, &st) in tap_x.iter().zip(tap_step.iter()) {
                                accs[0] += xv * rows[0][st];
                                accs[1] += xv * rows[1][st];
                                accs[2] += xv * rows[2][st];
                                accs[3] += xv * rows[3][st];
                                accs[4] += xv * rows[4][st];
                                accs[5] += xv * rows[5][st];
                                accs[6] += xv * rows[6][st];
                                accs[7] += xv * rows[7][st];
                            }
                        } else if l == 4 {
                            for (&xv, &st) in tap_x.iter().zip(tap_step.iter()) {
                                accs[0] += xv * rows[0][st];
                                accs[1] += xv * rows[1][st];
                                accs[2] += xv * rows[2][st];
                                accs[3] += xv * rows[3][st];
                            }
                        } else {
                            for (&xv, &st) in tap_x.iter().zip(tap_step.iter()) {
                                for (a, row) in accs[..l].iter_mut().zip(&rows[..l]) {
                                    *a += xv * row[st];
                                }
                            }
                        }
                        for (j, &a) in accs[..l].iter().enumerate() {
                            let oc = group * goc + oc_g + j;
                            let out_base = ((b * c.out_c + oc) * oh_dim + oh) * ow_dim;
                            out[out_base + ow] = a;
                        }
                        oc_g += l;
                    }
                }
            }
        }
    }
}

fn conv_term_offsets(c: &ConvSpec, out_offset: usize, step: usize) -> Option<(usize, usize)> {
    let (oh_dim, ow_dim) = (c.out_h(), c.out_w());
    let hw = oh_dim * ow_dim;
    let b = out_offset / (c.out_c * hw);
    let rem = out_offset % (c.out_c * hw);
    let oc = rem / hw;
    let oh = (rem % hw) / ow_dim;
    let ow = rem % ow_dim;

    let gic = c.group_in_c();
    let group = oc / c.group_out_c();
    let ic_base = group * gic;

    // Step decomposition: channel-major, then kernel row, then kernel column
    // — the same order the register-level simulator sequences.
    let kw_i = step % c.kw;
    let kh_i = (step / c.kw) % c.kh;
    let ic = step / (c.kw * c.kh);
    if ic >= gic {
        return None;
    }

    let ih = (oh * c.stride.0 + kh_i * c.dilation.0) as isize - c.padding.0 as isize;
    if ih < 0 || ih as usize >= c.in_h {
        return None;
    }
    let iw = (ow * c.stride.1 + kw_i * c.dilation.1) as isize - c.padding.1 as isize;
    if iw < 0 || iw as usize >= c.in_w {
        return None;
    }
    let in_off = ((b * c.in_c + ic_base + ic) * c.in_h + ih as usize) * c.in_w + iw as usize;
    let w_off = ((oc * gic + ic) * c.kh + kh_i) * c.kw + kw_i;
    Some((in_off, w_off))
}

fn conv_neurons_using_input(c: &ConvSpec, input_offset: usize) -> Vec<usize> {
    let chw = c.in_c * c.in_h * c.in_w;
    let b = input_offset / chw;
    let rem = input_offset % chw;
    let ic = rem / (c.in_h * c.in_w);
    let ih = (rem % (c.in_h * c.in_w)) / c.in_w;
    let iw = rem % c.in_w;

    let (oh_dim, ow_dim) = (c.out_h(), c.out_w());
    let gic = c.group_in_c();
    let goc = c.group_out_c();
    let group = ic / gic;

    let mut out = Vec::new();
    // Iterate output neurons in computation order and keep those whose
    // receptive field covers (ih, iw). Output channels restricted to the
    // input channel's group.
    for oc in group * goc..(group + 1) * goc {
        for oh in 0..oh_dim {
            for ow in 0..ow_dim {
                if conv_uses(c, oh, ow, ih, iw) {
                    out.push(((b * c.out_c + oc) * oh_dim + oh) * ow_dim + ow);
                }
            }
        }
    }
    out
}

fn conv_uses(c: &ConvSpec, oh: usize, ow: usize, ih: usize, iw: usize) -> bool {
    let h0 = oh * c.stride.0;
    let w0 = ow * c.stride.1;
    let ihp = ih + c.padding.0;
    let iwp = iw + c.padding.1;
    if ihp < h0 || iwp < w0 {
        return false;
    }
    let dh = ihp - h0;
    let dw = iwp - w0;
    dh.is_multiple_of(c.dilation.0)
        && dw.is_multiple_of(c.dilation.1)
        && dh / c.dilation.0 < c.kh
        && dw / c.dilation.1 < c.kw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_conv() -> ConvSpec {
        ConvSpec {
            batch: 1,
            in_c: 2,
            in_h: 4,
            in_w: 4,
            out_c: 3,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            padding: (1, 1),
            dilation: (1, 1),
            groups: 1,
        }
    }

    #[test]
    fn conv_out_dims() {
        let c = small_conv();
        assert_eq!(c.out_h(), 4);
        assert_eq!(c.out_w(), 4);
        assert_eq!(conv_out_dim(5, 3, 2, 0, 1), 2);
        assert_eq!(conv_out_dim(2, 3, 1, 0, 1), 0); // kernel larger than input
    }

    #[test]
    fn conv_compute_matches_manual() {
        let c = ConvSpec {
            batch: 1,
            in_c: 1,
            in_h: 3,
            in_w: 3,
            out_c: 1,
            kh: 2,
            kw: 2,
            stride: (1, 1),
            padding: (0, 0),
            dilation: (1, 1),
            groups: 1,
        };
        let input =
            Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let spec = MacSpec::Conv(c);
        let ops = Operands {
            input: &input,
            weight: &weight,
        };
        // Output (0,0): 1*1 + 5*1 = 6. Output (1,1): 5 + 9 = 14.
        assert_eq!(spec.compute_at(&ops, 0, None), 6.0);
        assert_eq!(spec.compute_at(&ops, 3, None), 14.0);
    }

    #[test]
    fn conv_substitution_changes_only_users() {
        let spec = MacSpec::Conv(small_conv());
        let input = Tensor::full(vec![1, 2, 4, 4], 1.0);
        let weight = Tensor::full(vec![3, 2, 3, 3], 0.5);
        let ops = Operands {
            input: &input,
            weight: &weight,
        };
        let subst = Substitution {
            kind: OperandKind::Weight,
            offset: 0, // oc=0, ic=0, kh=0, kw=0
            value: 100.0,
        };
        let users = spec.neurons_using_weight(0);
        // Weight 0 belongs to output channel 0: all 16 neurons of channel 0.
        assert_eq!(users.len(), 16);
        for off in 0..spec.out_len() {
            let clean = spec.compute_at(&ops, off, None);
            let faulty = spec.compute_at(&ops, off, Some(&subst));
            if users.contains(&off) {
                // Corner/edge neurons may not touch kernel position (0,0) due
                // to padding, so only assert the non-affected direction below
                // for non-users; users may or may not change.
                if faulty != clean {
                    assert!(faulty > clean);
                }
            } else {
                assert_eq!(clean, faulty, "non-user neuron {off} changed");
            }
        }
    }

    #[test]
    fn conv_neurons_using_input_respects_receptive_field() {
        let c = ConvSpec {
            batch: 1,
            in_c: 1,
            in_h: 4,
            in_w: 4,
            out_c: 2,
            kh: 2,
            kw: 2,
            stride: (2, 2),
            padding: (0, 0),
            dilation: (1, 1),
            groups: 1,
        };
        let spec = MacSpec::Conv(c);
        // Input (0,0,1,1) is used only by output position (0,0) — stride 2,
        // no overlap — in both output channels.
        let off = 4 + 1;
        let users = spec.neurons_using_input(off);
        assert_eq!(users, vec![0, 4]);
    }

    #[test]
    fn depthwise_conv_groups_limit_users() {
        let c = ConvSpec {
            batch: 1,
            in_c: 4,
            in_h: 2,
            in_w: 2,
            out_c: 4,
            kh: 1,
            kw: 1,
            stride: (1, 1),
            padding: (0, 0),
            dilation: (1, 1),
            groups: 4,
        };
        let spec = MacSpec::Conv(c);
        // Input channel 2 only feeds output channel 2.
        let off = 2 * 4; // (c=2, h=0, w=0)
        let users = spec.neurons_using_input(off);
        assert_eq!(users, vec![2 * 4]);
    }

    #[test]
    fn dense_users() {
        let d = DenseSpec {
            batch: 2,
            in_features: 3,
            out_features: 4,
        };
        let spec = MacSpec::Dense(d);
        // Weight (o=1, i=2) → one neuron per batch.
        assert_eq!(spec.neurons_using_weight(3 + 2), vec![1, 5]);
        // Input (b=1, i=0) → all 4 neurons of batch 1.
        assert_eq!(spec.neurons_using_input(3), vec![4, 5, 6, 7]);
    }

    #[test]
    fn dense_compute() {
        let d = DenseSpec {
            batch: 1,
            in_features: 2,
            out_features: 2,
        };
        let input = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        let weight = Tensor::from_vec(vec![2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let spec = MacSpec::Dense(d);
        let ops = Operands {
            input: &input,
            weight: &weight,
        };
        assert_eq!(spec.compute_at(&ops, 0, None), 11.0);
        assert_eq!(spec.compute_at(&ops, 1, None), 17.0);
    }

    #[test]
    fn matmul_users_row_and_column() {
        let m = MatMulSpec {
            batch: 1,
            m: 2,
            k: 3,
            n: 4,
            transpose_b: false,
        };
        let spec = MacSpec::MatMul(m);
        // A element (m=1, k=0) → output row 1.
        assert_eq!(spec.neurons_using_input(3), vec![4, 5, 6, 7]);
        // B element (k=0, n=2) → output column 2.
        assert_eq!(spec.neurons_using_weight(2), vec![2, 6]);
    }

    #[test]
    fn matmul_transposed_b() {
        let m = MatMulSpec {
            batch: 1,
            m: 2,
            k: 2,
            n: 2,
            transpose_b: true,
        };
        let spec = MacSpec::MatMul(m.clone());
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap(); // stored [n, k]
        let ops = Operands {
            input: &a,
            weight: &b,
        };
        // out[0][0] = 1*5 + 2*6 = 17; out[0][1] = 1*7 + 2*8 = 23.
        assert_eq!(spec.compute_at(&ops, 0, None), 17.0);
        assert_eq!(spec.compute_at(&ops, 1, None), 23.0);
        // B element (n=1, k=0) at flat offset 2 → output column 1.
        assert_eq!(spec.neurons_using_weight(2), vec![1, 3]);
    }

    #[test]
    fn forward_into_matches_compute_at_bitwise() {
        use crate::init::uniform_tensor;
        // Exercise padding, stride, dilation and groups.
        let specs = vec![
            MacSpec::Conv(small_conv()),
            MacSpec::Conv(ConvSpec {
                batch: 2,
                in_c: 4,
                in_h: 7,
                in_w: 5,
                out_c: 6,
                kh: 3,
                kw: 2,
                stride: (2, 1),
                padding: (1, 0),
                dilation: (1, 2),
                groups: 2,
            }),
            MacSpec::Dense(DenseSpec {
                batch: 3,
                in_features: 11,
                out_features: 5,
            }),
            MacSpec::MatMul(MatMulSpec {
                batch: 2,
                m: 4,
                k: 6,
                n: 3,
                transpose_b: false,
            }),
            MacSpec::MatMul(MatMulSpec {
                batch: 1,
                m: 5,
                k: 4,
                n: 7,
                transpose_b: true,
            }),
        ];
        for (i, spec) in specs.into_iter().enumerate() {
            let (in_shape, w_shape) = match &spec {
                MacSpec::Conv(c) => (
                    vec![c.batch, c.in_c, c.in_h, c.in_w],
                    vec![c.out_c, c.group_in_c(), c.kh, c.kw],
                ),
                MacSpec::Dense(d) => (
                    vec![d.batch, d.in_features],
                    vec![d.out_features, d.in_features],
                ),
                MacSpec::MatMul(m) => {
                    let b = if m.transpose_b {
                        vec![m.batch, m.n, m.k]
                    } else {
                        vec![m.batch, m.k, m.n]
                    };
                    (vec![m.batch, m.m, m.k], b)
                }
            };
            let input = uniform_tensor(i as u64, in_shape, 1.0);
            let weight = uniform_tensor(i as u64 ^ 99, w_shape, 1.0);
            let ops = Operands {
                input: &input,
                weight: &weight,
            };
            let mut fused = vec![0.0f32; spec.out_len()];
            spec.forward_into(&ops, &mut fused);
            for (off, fused_value) in fused.iter().enumerate() {
                let per_neuron = spec.compute_at(&ops, off, None);
                assert_eq!(
                    per_neuron.to_bits(),
                    fused_value.to_bits(),
                    "spec {i}, neuron {off}"
                );
            }
        }
    }

    #[test]
    fn acc_flip_rejects_out_of_range_bit() {
        assert!(AccFlip::new(0, 31).is_ok());
        assert!(AccFlip::new(usize::MAX, 0).is_ok());
        for bad in [32u32, 33, 64, u32::MAX] {
            let err = AccFlip::new(3, bad).expect_err("bit out of range must be rejected");
            assert!(
                matches!(err, DnnError::InvalidConfig { .. }),
                "expected InvalidConfig, got {err:?}"
            );
        }
    }

    #[test]
    fn acc_flip_matches_manual_flip_positions() {
        let spec = MacSpec::Dense(DenseSpec {
            batch: 1,
            in_features: 3,
            out_features: 1,
        });
        let input = Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let weight = Tensor::from_vec(vec![1, 3], vec![4.0, 5.0, 6.0]).unwrap();
        let ops = Operands {
            input: &input,
            weight: &weight,
        };
        // Flip bit 1 before step 1: acc = 4 → flip → then + 10 + 18.
        let flipped = f32::from_bits(4.0f32.to_bits() ^ 0b10);
        let want = flipped + 10.0 + 18.0;
        let got = spec.compute_at_acc_flip(&ops, 0, AccFlip::new(1, 1).unwrap());
        assert_eq!(got.to_bits(), want.to_bits());
        // Flip past the last step: flip the clean result.
        let clean = spec.compute_at(&ops, 0, None);
        let got = spec.compute_at_acc_flip(&ops, 0, AccFlip::new(99, 7).unwrap());
        assert_eq!(
            got.to_bits(),
            f32::from_bits(clean.to_bits() ^ (1 << 7)).to_bits()
        );
    }

    #[test]
    fn forward_into_scratch_reuse_is_bit_identical() {
        use crate::init::uniform_tensor;
        // One scratch reused across different specs must give the same bits
        // as a fresh scratch per call.
        let specs = [
            MacSpec::Conv(small_conv()),
            MacSpec::Dense(DenseSpec {
                batch: 2,
                in_features: 9,
                out_features: 4,
            }),
            MacSpec::MatMul(MatMulSpec {
                batch: 2,
                m: 3,
                k: 5,
                n: 4,
                transpose_b: false,
            }),
        ];
        let mut reused = KernelScratch::new();
        for (i, spec) in specs.iter().enumerate() {
            let (in_shape, w_shape) = match spec {
                MacSpec::Conv(c) => (
                    vec![c.batch, c.in_c, c.in_h, c.in_w],
                    vec![c.out_c, c.group_in_c(), c.kh, c.kw],
                ),
                MacSpec::Dense(d) => (
                    vec![d.batch, d.in_features],
                    vec![d.out_features, d.in_features],
                ),
                MacSpec::MatMul(m) => (vec![m.batch, m.m, m.k], vec![m.batch, m.k, m.n]),
            };
            let input = uniform_tensor(7 + i as u64, in_shape, 1.0);
            let weight = uniform_tensor(13 + i as u64, w_shape, 1.0);
            let ops = Operands {
                input: &input,
                weight: &weight,
            };
            let mut fresh = vec![0.0f32; spec.out_len()];
            spec.forward_into(&ops, &mut fresh);
            let mut pooled = vec![0.0f32; spec.out_len()];
            spec.forward_into_scratch(&ops, &mut pooled, &mut reused);
            for (off, (a, b)) in fresh.iter().zip(&pooled).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "spec {i}, neuron {off}");
            }
        }
    }

    #[test]
    fn macs_counts() {
        let spec = MacSpec::Conv(small_conv());
        assert_eq!(spec.macs(), (3 * 4 * 4 * 2 * 3 * 3) as u64);
        let d = MacSpec::Dense(DenseSpec {
            batch: 2,
            in_features: 10,
            out_features: 5,
        });
        assert_eq!(d.macs(), 100);
    }
}
