//! Scratch workspace: a shape-agnostic tensor/buffer pool that makes
//! steady-state fault injection allocation-free.
//!
//! Every [`crate::layers::Layer::forward`] call and every pooled
//! [`crate::graph::Engine`] resume draws its output tensors, temporary
//! buffers, and packing panels from a [`Workspace`] instead of the global
//! allocator. Buffers are recycled after use, so after a short warm-up the
//! pool serves every request from previously-freed memory — the
//! [`Workspace::hits`] / [`Workspace::misses`] counters make that measurable
//! (and are the zero-allocation acceptance metric for the perf benches,
//! since `unsafe_code` is forbidden workspace-wide and a counting global
//! allocator is therefore off the table).
//!
//! Pooling is invisible to results by construction: a pooled zero tensor is
//! `clear`ed and `resize`d to `+0.0` (bit-identical to a fresh
//! [`Tensor::zeros`]), and pooled copies are fully overwritten before use.
//! The pool only changes *where* memory comes from, never a single value.

use std::collections::BTreeMap;

use crate::macspec::{KernelScratch, MacTier};
use crate::tensor::Tensor;

/// The part of one node's output the delta resume path has modified
/// relative to the golden trace: either the whole tensor, or — for rank-4
/// NCHW outputs — every batch and channel of the spatial window
/// `rows [h0, h1) × cols [w0, w1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// The entire output may differ.
    All,
    /// Only the spatial window differs (all batches / channels).
    Window {
        /// `[h0, h1)` output rows.
        h: (usize, usize),
        /// `[w0, w1)` output columns.
        w: (usize, usize),
    },
}

/// A per-worker private copy of one golden trace's node outputs, patched in
/// place by the delta resume path and repaired back to golden after every
/// injection.
///
/// The overlay belongs to a [`Workspace`] and is loaned out with
/// [`Workspace::take_golden`] / returned with [`Workspace::put_golden`] (the
/// same `mem::take` discipline as the resume slots). If an injection panics
/// while the overlay is out, it is simply lost: the workspace then reports
/// no golden key and the caller falls back to the full resume path, so a
/// torn overlay can never leak stale values into results.
#[derive(Debug, Default)]
pub struct GoldenOverlay {
    /// Key of the trace the slots mirror ([`crate::graph::golden_key`]);
    /// `None` while uninstalled or loaned out.
    pub(crate) key: Option<u64>,
    /// One bit-exact copy of each node output of the golden trace.
    pub(crate) slots: Vec<Tensor>,
    /// Per-node region currently diverging from golden (repair worklist).
    pub(crate) dirty: Vec<Option<Region>>,
}

/// A reusable pool of `f32` buffers, shape vectors, and kernel scratch.
///
/// Not thread-safe by design: parallel campaign runners hold one workspace
/// per worker (worker state never affects values, only allocation reuse).
#[derive(Debug, Default)]
pub struct Workspace {
    /// Free `f32` buffers, keyed by capacity; lookup is best-fit (smallest
    /// capacity that can hold the request).
    pool: BTreeMap<usize, Vec<Vec<f32>>>,
    /// Free shape vectors.
    shapes: Vec<Vec<usize>>,
    /// Per-node output slots loaned to the pooled resume path.
    slots: Vec<Option<Tensor>>,
    /// Packing/accumulator scratch for the MAC kernels.
    scratch: KernelScratch,
    /// Golden snapshot + per-injection scratch overlay for the delta path.
    golden: GoldenOverlay,
    /// Numeric tier the MAC layer forwards run under. Plumbed through the
    /// workspace because [`crate::layers::Layer::forward`] receives no other
    /// per-worker configuration channel.
    mac_tier: MacTier,
    hits: u64,
    misses: u64,
}

impl Workspace {
    /// An empty workspace; buffers accumulate through recycling.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Pops the smallest pooled buffer with capacity ≥ `len`, if any.
    fn grab(&mut self, len: usize) -> Option<Vec<f32>> {
        for (_, bucket) in self.pool.range_mut(len..) {
            if let Some(buf) = bucket.pop() {
                self.hits += 1;
                return Some(buf);
            }
        }
        self.misses += 1;
        None
    }

    /// A zero-filled buffer of exactly `len` elements, pooled when possible.
    /// Bit-identical to `vec![0.0; len]`.
    pub fn take_buf(&mut self, len: usize) -> Vec<f32> {
        match self.grab(len) {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0f32; len],
        }
    }

    /// A buffer holding a copy of `values`, pooled when possible.
    pub fn take_copy(&mut self, values: &[f32]) -> Vec<f32> {
        match self.grab(values.len()) {
            Some(mut buf) => {
                buf.clear();
                buf.extend_from_slice(values);
                buf
            }
            None => values.to_vec(),
        }
    }

    /// Returns a buffer to the pool.
    pub fn recycle_buf(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        self.pool.entry(buf.capacity()).or_default().push(buf);
    }

    /// A shape vector with the given dimensions, pooled when possible.
    fn take_shape(&mut self, dims: &[usize]) -> Vec<usize> {
        let mut s = self.shapes.pop().unwrap_or_default();
        s.clear();
        s.extend_from_slice(dims);
        s
    }

    /// A pooled `Vec<usize>` initialized to `dims`, for layers that compute
    /// an output shape before materializing the tensor. Return it with
    /// [`Workspace::recycle_shape`].
    pub fn shape_vec(&mut self, dims: &[usize]) -> Vec<usize> {
        self.take_shape(dims)
    }

    /// Returns a shape vector to the pool.
    pub fn recycle_shape(&mut self, s: Vec<usize>) {
        self.shapes.push(s);
    }

    /// A zero tensor of the given shape, pooled when possible. Bit-identical
    /// to [`Tensor::zeros`].
    pub fn zeros(&mut self, dims: &[usize]) -> Tensor {
        let len = dims.iter().product();
        let shape = self.take_shape(dims);
        let buf = self.take_buf(len);
        Tensor::from_parts(shape, buf)
    }

    /// A copy of `t`, pooled when possible. Bit-identical to `t.clone()`.
    pub fn clone_of(&mut self, t: &Tensor) -> Tensor {
        let shape = self.take_shape(t.shape());
        let buf = self.take_copy(t.data());
        Tensor::from_parts(shape, buf)
    }

    /// A copy of `t` carrying shape `dims` (same element count), pooled when
    /// possible. The allocation-free counterpart of [`Tensor::reshaped`].
    ///
    /// # Panics
    ///
    /// Panics when the element counts differ (same contract as
    /// [`Tensor::from_parts`]).
    pub fn reshaped(&mut self, t: &Tensor, dims: &[usize]) -> Tensor {
        let shape = self.take_shape(dims);
        let buf = self.take_copy(t.data());
        Tensor::from_parts(shape, buf)
    }

    /// Returns a tensor's buffers to the pool.
    pub fn recycle(&mut self, t: Tensor) {
        let (shape, data) = t.into_parts();
        self.shapes.push(shape);
        self.recycle_buf(data);
    }

    /// The MAC-kernel scratch (packing panel, accumulator row, ranges).
    pub fn kernel_scratch(&mut self) -> &mut KernelScratch {
        &mut self.scratch
    }

    /// Loans out the per-node slot vector, cleared and sized to `n`. The
    /// caller must hand it back via [`Workspace::put_slots`] (tensors still
    /// inside are recycled then).
    pub fn take_slots(&mut self, n: usize) -> Vec<Option<Tensor>> {
        let mut slots = std::mem::take(&mut self.slots);
        slots.clear();
        slots.resize_with(n, || None);
        slots
    }

    /// Returns the slot vector, recycling any tensors left inside.
    pub fn put_slots(&mut self, mut slots: Vec<Option<Tensor>>) {
        for slot in &mut slots {
            if let Some(t) = slot.take() {
                self.recycle(t);
            }
        }
        self.slots = slots;
    }

    /// The MAC tier layer forwards drawn from this workspace run under.
    pub fn mac_tier(&self) -> MacTier {
        self.mac_tier
    }

    /// Sets the MAC tier for subsequent layer forwards.
    pub fn set_mac_tier(&mut self, tier: MacTier) {
        self.mac_tier = tier;
    }

    /// Installs a golden snapshot: a bit-exact pooled copy of each tensor in
    /// `outputs`, keyed by `key` (see [`crate::graph::golden_key`]). Any
    /// previously installed snapshot is recycled first.
    pub fn install_golden(&mut self, key: u64, outputs: &[Tensor]) {
        self.flush_golden();
        let mut golden = std::mem::take(&mut self.golden);
        golden.slots.reserve(outputs.len());
        for t in outputs {
            golden.slots.push(self.clone_of(t));
        }
        golden.dirty.clear();
        golden.dirty.resize(outputs.len(), None);
        golden.key = Some(key);
        self.golden = golden;
    }

    /// Key of the installed golden snapshot, or `None` when no snapshot is
    /// installed (or it is currently loaned out / was lost to a panic).
    pub fn golden_key(&self) -> Option<u64> {
        self.golden.key
    }

    /// Recycles the golden snapshot's buffers back into the pool.
    pub fn flush_golden(&mut self) {
        let mut golden = std::mem::take(&mut self.golden);
        for t in golden.slots.drain(..) {
            self.recycle(t);
        }
        golden.dirty.clear();
        self.golden = golden;
    }

    /// Loans out the golden overlay (the workspace reports no golden key
    /// until it is returned via [`Workspace::put_golden`]).
    pub fn take_golden(&mut self) -> GoldenOverlay {
        std::mem::take(&mut self.golden)
    }

    /// Returns a loaned golden overlay.
    pub fn put_golden(&mut self, golden: GoldenOverlay) {
        let old = std::mem::replace(&mut self.golden, golden);
        for t in old.slots {
            self.recycle(t);
        }
    }

    /// Buffer requests served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Buffer requests that fell through to the allocator.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of buffer requests served from the pool (1.0 when no
    /// requests were made — an empty history allocated nothing).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resets the hit/miss counters (pooled buffers are kept).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_are_bit_identical_to_fresh() {
        let mut ws = Workspace::new();
        let a = ws.zeros(&[2, 3]);
        assert_eq!(a.shape(), &[2, 3]);
        assert_eq!(a.data(), Tensor::zeros(vec![2, 3]).data());
        // Dirty the buffer, recycle, take again: still all +0.0 bits.
        let mut a = a;
        a.data_mut().fill(f32::NAN);
        ws.recycle(a);
        let b = ws.zeros(&[6]);
        for v in b.data() {
            assert_eq!(v.to_bits(), 0.0f32.to_bits());
        }
    }

    #[test]
    fn pool_reuses_buffers_best_fit() {
        let mut ws = Workspace::new();
        let big = ws.zeros(&[16]);
        let small = ws.zeros(&[4]);
        ws.recycle(big);
        ws.recycle(small);
        ws.reset_counters();
        // A request for 3 elements should reuse the 4-capacity buffer.
        let t = ws.zeros(&[3]);
        assert_eq!(ws.hits(), 1);
        assert_eq!(ws.misses(), 0);
        ws.recycle(t);
        // A request for 32 cannot be served.
        let t = ws.zeros(&[32]);
        assert_eq!(ws.misses(), 1);
        ws.recycle(t);
        // Steady state: the 32-capacity buffer now serves repeats.
        ws.reset_counters();
        for _ in 0..10 {
            let t = ws.zeros(&[32]);
            ws.recycle(t);
        }
        assert_eq!(ws.hits(), 10);
        assert_eq!(ws.misses(), 0);
        assert!(ws.hit_rate() >= 1.0 - f64::EPSILON);
    }

    #[test]
    fn clone_of_copies_values() {
        let mut ws = Workspace::new();
        let src = Tensor::from_vec(vec![2, 2], vec![1.0, -2.0, 3.5, f32::INFINITY]).unwrap();
        let c = ws.clone_of(&src);
        assert_eq!(c.shape(), src.shape());
        for (a, b) in c.data().iter().zip(src.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn slots_round_trip_and_recycle_contents() {
        let mut ws = Workspace::new();
        let mut slots = ws.take_slots(3);
        slots[1] = Some(ws.zeros(&[8]));
        ws.put_slots(slots);
        ws.reset_counters();
        // The tensor left in the slot was recycled into the pool.
        let t = ws.zeros(&[8]);
        assert_eq!(ws.hits(), 1);
        ws.recycle(t);
        let slots = ws.take_slots(5);
        assert_eq!(slots.len(), 5);
        assert!(slots.iter().all(Option::is_none));
        ws.put_slots(slots);
    }
}
