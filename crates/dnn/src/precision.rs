//! Numeric formats and the value codec that defines what a hardware bit flip
//! does to a stored value.
//!
//! Every value an accelerator datapath holds has a concrete bit
//! representation. The paper's datapath fault models are "flip one bit of one
//! stored value"; this module defines those representations for the four data
//! precisions of the evaluation (FP32 reference, FP16, INT16, INT8) so faults
//! can be injected on the *encoded* form and decoded back.

use std::fmt;

use crate::f16::F16;

/// Data precision of an accelerator datapath / DNN deployment.
///
/// # Examples
///
/// ```
/// use fidelity_dnn::precision::Precision;
///
/// assert_eq!(Precision::Int8.bits(), 8);
/// assert_eq!(Precision::Fp16.bits(), 16);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Precision {
    /// 32-bit IEEE float (software reference; no quantization applied).
    Fp32,
    /// 16-bit IEEE binary16, the NVDLA validation precision.
    #[default]
    Fp16,
    /// 16-bit symmetric fixed point (two's complement, per-tensor scale).
    Int16,
    /// 8-bit symmetric fixed point (two's complement, per-tensor scale).
    Int8,
}

impl Precision {
    /// Storage width in bits of one value in this precision.
    pub const fn bits(self) -> u32 {
        match self {
            Precision::Fp32 => 32,
            Precision::Fp16 | Precision::Int16 => 16,
            Precision::Int8 => 8,
        }
    }

    /// Whether this is a floating-point format.
    pub const fn is_float(self) -> bool {
        matches!(self, Precision::Fp32 | Precision::Fp16)
    }

    /// All precisions exercised by the paper's evaluation.
    pub const ALL: [Precision; 4] = [
        Precision::Fp32,
        Precision::Fp16,
        Precision::Int16,
        Precision::Int8,
    ];
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::Fp32 => "FP32",
            Precision::Fp16 => "FP16",
            Precision::Int16 => "INT16",
            Precision::Int8 => "INT8",
        };
        f.write_str(s)
    }
}

/// Encoder/decoder between `f32` working values and a precision's storage
/// bits, including the per-tensor scale used by the integer formats.
///
/// Integer formats use symmetric quantization: `q = round(v / scale)` clamped
/// to `[-qmax, qmax]`, stored two's complement. `scale` is calibrated from
/// the fault-free dynamic range of the tensor the value lives in (see
/// [`crate::graph::QuantScheme`]).
///
/// # Examples
///
/// ```
/// use fidelity_dnn::precision::{Precision, ValueCodec};
///
/// let codec = ValueCodec::new(Precision::Int8, 0.5);
/// let bits = codec.encode(3.2);
/// assert_eq!(codec.decode(bits), 3.0); // 6 * 0.5
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValueCodec {
    precision: Precision,
    scale: f32,
}

impl ValueCodec {
    /// Creates a codec. `scale` is ignored by the floating formats.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and strictly positive (integer
    /// formats require a usable scale; pass `1.0` for float formats).
    pub fn new(precision: Precision, scale: f32) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "quantization scale must be finite and positive, got {scale}"
        );
        ValueCodec { precision, scale }
    }

    /// Codec for a floating format (no scale needed).
    pub fn float(precision: Precision) -> Self {
        ValueCodec::new(precision, 1.0)
    }

    /// The precision this codec implements.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The quantization scale (1.0 for float formats).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Largest representable magnitude of the quantized integer grid.
    fn qmax(&self) -> i32 {
        match self.precision {
            Precision::Int8 => 127,
            Precision::Int16 => 32767,
            _ => 0,
        }
    }

    /// Encodes a working value to its storage bits (low `bits()` bits used).
    pub fn encode(&self, value: f32) -> u32 {
        match self.precision {
            Precision::Fp32 => value.to_bits(),
            Precision::Fp16 => F16::from_f32(value).to_bits() as u32,
            Precision::Int16 => {
                let q = self.quantize_int(value);
                (q as i16 as u16) as u32
            }
            Precision::Int8 => {
                let q = self.quantize_int(value);
                (q as i8 as u8) as u32
            }
        }
    }

    /// Decodes storage bits back to a working value.
    pub fn decode(&self, bits: u32) -> f32 {
        match self.precision {
            Precision::Fp32 => f32::from_bits(bits),
            Precision::Fp16 => F16::from_bits(bits as u16).to_f32(),
            Precision::Int16 => (bits as u16 as i16) as f32 * self.scale,
            Precision::Int8 => (bits as u8 as i8) as f32 * self.scale,
        }
    }

    fn quantize_int(&self, value: f32) -> i32 {
        let qmax = self.qmax();
        if value.is_nan() {
            return 0;
        }
        let q = (value / self.scale).round();
        if q >= qmax as f32 {
            qmax
        } else if q <= -(qmax as f32) {
            -qmax
        } else {
            q as i32
        }
    }

    /// Rounds a working value onto this precision's representable grid
    /// ("fake quantization"). Identity for FP32.
    pub fn quantize(&self, value: f32) -> f32 {
        match self.precision {
            Precision::Fp32 => value,
            _ => self.decode(self.encode(value)),
        }
    }

    /// Returns `value` after flipping storage bit `bit` of its encoded form —
    /// the software-equivalent of a single-FF transient fault on a datapath
    /// value (Sec. III-C of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.precision().bits()`.
    pub fn flip_bit(&self, value: f32, bit: u32) -> f32 {
        let width = self.precision.bits();
        assert!(bit < width, "bit {bit} out of range for {}", self.precision);
        let bits = self.encode(value) ^ (1 << bit);
        self.decode(bits)
    }

    /// Maximum absolute representable value (for integer formats); infinity
    /// for float formats (FP16 saturates at 65504 only through `quantize`).
    pub fn max_magnitude(&self) -> f32 {
        match self.precision {
            Precision::Fp32 => f32::INFINITY,
            Precision::Fp16 => 65504.0,
            _ => self.qmax() as f32 * self.scale,
        }
    }
}

impl Default for ValueCodec {
    fn default() -> Self {
        ValueCodec::float(Precision::Fp16)
    }
}

/// Calibrates a symmetric per-tensor scale from an observed dynamic range,
/// mirroring TensorFlow-style min/max quantization the paper used for the
/// INT16/INT8 networks.
///
/// # Examples
///
/// ```
/// use fidelity_dnn::precision::{calibrate_scale, Precision};
///
/// let s = calibrate_scale(Precision::Int8, 12.7);
/// assert!((s - 0.1).abs() < 1e-6);
/// ```
pub fn calibrate_scale(precision: Precision, max_abs: f32) -> f32 {
    let qmax = match precision {
        Precision::Int8 => 127.0,
        Precision::Int16 => 32767.0,
        // Float formats do not use a scale.
        _ => return 1.0,
    };
    if max_abs <= 0.0 || !max_abs.is_finite() {
        1.0 / qmax
    } else {
        max_abs / qmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_round_trip_on_grid() {
        let codec = ValueCodec::new(Precision::Int8, 0.25);
        for q in -127i32..=127 {
            let v = q as f32 * 0.25;
            assert_eq!(codec.quantize(v), v);
        }
    }

    #[test]
    fn int8_clamps_out_of_range() {
        let codec = ValueCodec::new(Precision::Int8, 0.5);
        assert_eq!(codec.quantize(1000.0), 63.5);
        assert_eq!(codec.quantize(-1000.0), -63.5);
    }

    #[test]
    fn int16_bit_flip_msb_is_large() {
        let codec = ValueCodec::new(Precision::Int16, 0.001);
        let v = codec.quantize(1.0);
        let flipped = codec.flip_bit(v, 15); // sign bit of two's complement
        assert!((flipped - v).abs() > 30.0);
    }

    #[test]
    fn int8_bit_flip_lsb_is_one_step() {
        let codec = ValueCodec::new(Precision::Int8, 0.5);
        let v = 2.0; // q = 4
        let flipped = codec.flip_bit(v, 0); // q = 5
        assert_eq!(flipped, 2.5);
    }

    #[test]
    fn fp16_flip_matches_f16_module() {
        let codec = ValueCodec::float(Precision::Fp16);
        let v = 1.0f32;
        assert_eq!(codec.flip_bit(v, 15), -1.0);
    }

    #[test]
    fn fp32_is_identity_quantization() {
        let codec = ValueCodec::float(Precision::Fp32);
        let v = 0.1234567;
        assert_eq!(codec.quantize(v), v);
    }

    #[test]
    fn nan_quantizes_to_zero_for_int() {
        let codec = ValueCodec::new(Precision::Int8, 0.5);
        assert_eq!(codec.quantize(f32::NAN), 0.0);
    }

    #[test]
    fn calibrate_scale_handles_degenerate_range() {
        assert!(calibrate_scale(Precision::Int8, 0.0) > 0.0);
        assert!(calibrate_scale(Precision::Int16, f32::NAN) > 0.0);
        assert_eq!(calibrate_scale(Precision::Fp16, 5.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_validates_width() {
        ValueCodec::new(Precision::Int8, 1.0).flip_bit(1.0, 8);
    }

    #[test]
    fn int_flip_escapes_clamp_grid() {
        // A flip can produce values representable in storage even if the
        // original quantization clamps: e.g. INT8 q=127, flipping bit 7 gives
        // two's complement -1.
        let codec = ValueCodec::new(Precision::Int8, 1.0);
        let flipped = codec.flip_bit(127.0, 7);
        assert_eq!(flipped, -1.0);
    }
}
