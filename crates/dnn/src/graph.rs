//! Network graphs, the executor, and precision-aware engines.
//!
//! A [`Network`] is a DAG of named layers. An [`Engine`] binds a network to a
//! [`Precision`], calibrating per-tensor quantization scales from a
//! fault-free run and rounding weights onto the representable grid — the
//! software analogue of deploying a trained model onto an accelerator with a
//! given datapath width.
//!
//! The engine exposes the two primitives fault injection needs:
//!
//! * [`Engine::trace`] — a fault-free run that records every intermediate
//!   tensor, and
//! * [`Engine::resume`] — re-execution from a corrupted intermediate tensor,
//!   recomputing only downstream nodes (this is why software fault injection
//!   is orders of magnitude faster than register-level simulation).

use std::collections::HashMap;
use std::time::Instant;

use crate::error::DnnError;
use crate::layers::{for_each_window_row, Layer};
use crate::macspec::MacSpec;
use crate::precision::{calibrate_scale, Precision, ValueCodec};
use crate::tensor::Tensor;
use crate::workspace::{GoldenOverlay, Region, Workspace};

/// Where a node input comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Source {
    /// The i-th graph input.
    Input(usize),
    /// The output of the i-th node.
    Node(usize),
}

/// One node of a network: a layer plus its resolved input sources.
struct Node {
    layer: Box<dyn Layer>,
    sources: Vec<Source>,
}

/// A directed acyclic graph of layers.
///
/// Build with [`NetworkBuilder`]; run through an [`Engine`].
pub struct Network {
    name: String,
    input_names: Vec<String>,
    nodes: Vec<Node>,
    output: Source,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Network(name={}, inputs={:?}, nodes={})",
            self.name,
            self.input_names,
            self.nodes.len()
        )
    }
}

impl Network {
    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names of the graph inputs, in binding order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Number of layer nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The layer at node `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn layer(&self, idx: usize) -> &dyn Layer {
        self.nodes[idx].layer.as_ref()
    }

    /// Index of the node with the given layer name.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.layer.name() == name)
    }

    /// Iterates over `(index, layer)` pairs in topological order.
    pub fn iter_layers(&self) -> impl Iterator<Item = (usize, &dyn Layer)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (i, n.layer.as_ref()))
    }
}

/// Incrementally builds a [`Network`].
///
/// # Examples
///
/// ```
/// use fidelity_dnn::graph::NetworkBuilder;
/// use fidelity_dnn::layers::{Activation, ActivationKind, Dense};
/// use fidelity_dnn::tensor::Tensor;
///
/// # fn main() -> Result<(), fidelity_dnn::error::DnnError> {
/// let net = NetworkBuilder::new("mlp")
///     .input("x")
///     .layer(Dense::new("fc", Tensor::full(vec![2, 2], 0.5))?, &["x"])?
///     .layer(Activation::new("relu", ActivationKind::Relu), &["fc"])?
///     .build()?;
/// assert_eq!(net.node_count(), 2);
/// # Ok(())
/// # }
/// ```
pub struct NetworkBuilder {
    name: String,
    input_names: Vec<String>,
    nodes: Vec<Node>,
    names: HashMap<String, Source>,
    output: Option<Source>,
}

impl std::fmt::Debug for NetworkBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NetworkBuilder(name={}, inputs={:?}, nodes={})",
            self.name,
            self.input_names,
            self.nodes.len()
        )
    }
}

impl NetworkBuilder {
    /// Starts a new network.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkBuilder {
            name: name.into(),
            input_names: Vec::new(),
            nodes: Vec::new(),
            names: HashMap::new(),
            output: None,
        }
    }

    /// Declares a graph input.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name (builder misuse is a programming error in
    /// the network definition, surfaced eagerly).
    pub fn input(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            !self.names.contains_key(&name),
            "duplicate graph name `{name}`"
        );
        self.names
            .insert(name.clone(), Source::Input(self.input_names.len()));
        self.input_names.push(name);
        self
    }

    /// Appends a layer consuming the named tensors.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::DuplicateName`] / [`DnnError::UnknownName`] /
    /// [`DnnError::ArityMismatch`] on malformed wiring.
    pub fn layer<L: Layer + 'static>(
        mut self,
        layer: L,
        inputs: &[&str],
    ) -> Result<Self, DnnError> {
        let lname = layer.name().to_owned();
        if self.names.contains_key(&lname) {
            return Err(DnnError::DuplicateName { name: lname });
        }
        if let Some(expected) = layer.arity() {
            if expected != inputs.len() {
                return Err(DnnError::ArityMismatch {
                    layer: lname,
                    expected,
                    actual: inputs.len(),
                });
            }
        }
        let mut sources = Vec::with_capacity(inputs.len());
        for &inp in inputs {
            let src = self.names.get(inp).ok_or_else(|| DnnError::UnknownName {
                name: inp.to_owned(),
            })?;
            sources.push(*src);
        }
        let idx = self.nodes.len();
        self.names.insert(lname, Source::Node(idx));
        self.nodes.push(Node {
            layer: Box::new(layer),
            sources,
        });
        Ok(self)
    }

    /// Marks the named tensor as the network output (defaults to the last
    /// layer added).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::UnknownName`] when the name is not defined.
    pub fn output(mut self, name: &str) -> Result<Self, DnnError> {
        let src = self.names.get(name).ok_or_else(|| DnnError::UnknownName {
            name: name.to_owned(),
        })?;
        self.output = Some(*src);
        Ok(self)
    }

    /// Finalizes the network.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] for an empty network.
    pub fn build(self) -> Result<Network, DnnError> {
        if self.nodes.is_empty() {
            return Err(DnnError::InvalidConfig {
                message: "network has no layers".into(),
            });
        }
        let output = self.output.unwrap_or(Source::Node(self.nodes.len() - 1));
        Ok(Network {
            name: self.name,
            input_names: self.input_names,
            nodes: self.nodes,
            output,
        })
    }
}

/// Recorded intermediates of one fault-free execution.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Quantized graph inputs, in binding order.
    pub inputs: Vec<Tensor>,
    /// Output tensor of every node, in topological order.
    pub node_outputs: Vec<Tensor>,
    /// The network output.
    pub output: Tensor,
}

/// A cheap process-local identity key for a [`Trace`], used to pair a
/// worker's installed golden overlay with the trace it mirrors.
///
/// The key hashes every recorded tensor's buffer address, length, shape and
/// boundary element bits. Two calls on the same live `Trace` always agree;
/// a different trace object — even one with equal values — hashes different
/// buffer addresses and so yields a different key, which is exactly the
/// discipline needed: an overlay is a copy of one concrete trace's buffers.
/// Never persist this value (addresses are not stable across runs).
pub fn golden_key(trace: &Trace) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv_step(h, trace.inputs.len() as u64);
    for t in &trace.inputs {
        h = fnv_tensor(h, t);
    }
    h = fnv_step(h, trace.node_outputs.len() as u64);
    for t in &trace.node_outputs {
        h = fnv_tensor(h, t);
    }
    fnv_tensor(h, &trace.output)
}

fn fnv_step(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

fn fnv_tensor(mut h: u64, t: &Tensor) -> u64 {
    h = fnv_step(h, t.data().as_ptr() as usize as u64);
    h = fnv_step(h, t.len() as u64);
    for &d in t.shape() {
        h = fnv_step(h, d as u64);
    }
    if let (Some(f), Some(l)) = (t.data().first(), t.data().last()) {
        h = fnv_step(h, u64::from(f.to_bits()));
        h = fnv_step(h, u64::from(l.to_bits()));
    }
    h
}

/// Spatial bounding box of a set of flat offsets into a rank-4 NCHW tensor
/// (`Region::All` for other ranks — no spatial structure to exploit).
fn sparse_region(shape: &[usize], neurons: &[usize]) -> Region {
    if shape.len() != 4 {
        return Region::All;
    }
    let (hh, ww) = (shape[2], shape[3]);
    if hh == 0 || ww == 0 {
        return Region::All;
    }
    let (mut h0, mut h1, mut w0, mut w1) = (usize::MAX, 0usize, usize::MAX, 0usize);
    for &off in neurons {
        let r = (off / ww) % hh;
        let c = off % ww;
        h0 = h0.min(r);
        h1 = h1.max(r + 1);
        w0 = w0.min(c);
        w1 = w1.max(c + 1);
    }
    if neurons.is_empty() {
        // Empty patch: an empty window, which downstream unions ignore.
        return Region::Window {
            h: (0, 0),
            w: (0, 0),
        };
    }
    Region::Window {
        h: (h0, h1),
        w: (w0, w1),
    }
}

/// `Some(region)` when the region covers at least one element, else `None`
/// (so an empty patch marks the node clean and the walk short-circuits).
fn nonempty_region(r: Region) -> Option<Region> {
    match r {
        Region::All => Some(Region::All),
        Region::Window { h, w } => (h.0 < h.1 && w.0 < w.1).then_some(r),
    }
}

/// Unions two divergence regions: `All` absorbs everything, windows union to
/// their bounding box (a conservative superset, which is all the delta path
/// needs).
fn union_region(a: Option<Region>, b: Region) -> Region {
    match (a, b) {
        (None, r) => r,
        (Some(Region::All), _) | (_, Region::All) => Region::All,
        (Some(Region::Window { h: ah, w: aw }), Region::Window { h: bh, w: bw }) => {
            Region::Window {
                h: (ah.0.min(bh.0), ah.1.max(bh.1)),
                w: (aw.0.min(bw.0), aw.1.max(bw.1)),
            }
        }
    }
}

/// Copies every dirty region of the overlay back from the golden trace,
/// restoring bit-exact golden slots and clearing the worklist.
fn repair_overlay(overlay: &mut GoldenOverlay, trace: &Trace) {
    for (idx, dirty) in overlay.dirty.iter_mut().enumerate() {
        let Some(region) = dirty.take() else {
            continue;
        };
        let src = trace.node_outputs[idx].data();
        let dst = overlay.slots[idx].data_mut();
        match region {
            Region::All => dst.copy_from_slice(src),
            Region::Window { h, w } => {
                let dims = {
                    let s = trace.node_outputs[idx].shape();
                    [s[0], s[1], s[2], s[3]]
                };
                for_each_window_row(&dims, h, w, |a, b| {
                    dst[a..b].copy_from_slice(&src[a..b]);
                });
            }
        }
    }
}

/// Per-tensor quantization scales calibrated from a fault-free run.
#[derive(Debug, Clone, Default)]
pub struct QuantScheme {
    /// Scale for each graph input.
    pub input_scales: Vec<f32>,
    /// Scale for each node's output tensor.
    pub node_scales: Vec<f32>,
    /// Scales for each node's weight tensors.
    pub weight_scales: Vec<Vec<f32>>,
}

/// A network bound to a precision, with calibrated codecs and quantized
/// weights: the runnable deployment that fault injection targets.
pub struct Engine {
    network: Network,
    precision: Precision,
    input_codecs: Vec<ValueCodec>,
    node_codecs: Vec<ValueCodec>,
    weight_codecs: Vec<Vec<ValueCodec>>,
    node_bounds: Option<Vec<f32>>,
    /// Transitive-dependents bitset per node, built once at construction:
    /// bit `j` of `downstream[i]` is set iff node `j` must be recomputed
    /// when node `i`'s output changes. Lets `resume` skip unaffected nodes
    /// without re-walking the graph per injection.
    downstream: Vec<Vec<u64>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Engine(net={}, precision={}, nodes={})",
            self.network.name(),
            self.precision,
            self.network.node_count()
        )
    }
}

impl Engine {
    /// Prepares a network for execution at `precision`.
    ///
    /// For the integer formats, per-tensor scales are calibrated by running
    /// the network once in FP32 on `calibration_inputs` and taking the
    /// dynamic range of every intermediate (the paper quantized its
    /// INT16/INT8 networks with TensorFlow's min/max scheme); weights are
    /// then rounded onto the representable grid in place.
    ///
    /// # Errors
    ///
    /// Propagates any shape error from the calibration run.
    pub fn new(
        mut network: Network,
        precision: Precision,
        calibration_inputs: &[Vec<Tensor>],
    ) -> Result<Self, DnnError> {
        let n_nodes = network.node_count();
        let n_inputs = network.input_names.len();

        // Track dynamic ranges over all calibration runs (FP32, no codecs).
        let mut input_max = vec![0.0f32; n_inputs];
        let mut node_max = vec![0.0f32; n_nodes];
        if !precision.is_float() {
            let mut ws = Workspace::new();
            for sample in calibration_inputs {
                let trace = run(&network, sample, None, None, None, None, None, &mut ws)?.1;
                for (m, t) in input_max.iter_mut().zip(&trace.inputs) {
                    *m = m.max(t.max_abs());
                }
                for (m, t) in node_max.iter_mut().zip(&trace.node_outputs) {
                    *m = m.max(t.max_abs());
                }
            }
        }

        let make = |max_abs: f32| -> ValueCodec {
            ValueCodec::new(precision, calibrate_scale(precision, max_abs))
        };
        let input_codecs: Vec<ValueCodec> = input_max.iter().map(|&m| make(m)).collect();
        let node_codecs: Vec<ValueCodec> = node_max.iter().map(|&m| make(m)).collect();

        // Weight codecs from weight dynamic range; quantize weights in place.
        let mut weight_codecs = Vec::with_capacity(n_nodes);
        for node in &mut network.nodes {
            let codecs: Vec<ValueCodec> = node
                .layer
                .weights()
                .iter()
                .map(|w| make(w.max_abs()))
                .collect();
            if precision != Precision::Fp32 {
                // Every weight tensor of a layer shares the layer's grid in
                // our model; use the per-layer max for a single codec call.
                if let Some(max_codec) = codecs
                    .iter()
                    .max_by(|a, b| a.scale().total_cmp(&b.scale()))
                    .copied()
                {
                    node.layer.quantize_weights(&max_codec);
                }
            }
            weight_codecs.push(codecs);
        }

        let downstream = build_downstream(&network);
        Ok(Engine {
            network,
            precision,
            input_codecs,
            node_codecs,
            weight_codecs,
            node_bounds: None,
            downstream,
        })
    }

    /// Enables per-layer output range bounding — the hardware/software
    /// co-design mitigation the paper proposes from its Key Result 5
    /// ("bounding the values of output neurons"): a writeback-stage clamp
    /// at `slack ×` each layer's fault-free dynamic range. Large faulty
    /// values (the ones most likely to flip the application output) are
    /// clipped; fault-free behaviour is unchanged because every clean value
    /// is within its own range.
    ///
    /// Calibrates from a fault-free run on `inputs`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the calibration run. Returns
    /// [`DnnError::InvalidConfig`] when `slack < 1` (which would alter
    /// fault-free behaviour).
    pub fn enable_range_bounding(&mut self, inputs: &[Tensor], slack: f32) -> Result<(), DnnError> {
        // Negated comparison is deliberate: it rejects NaN slack too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(slack >= 1.0) {
            return Err(DnnError::InvalidConfig {
                message: format!("range-bounding slack must be >= 1, got {slack}"),
            });
        }
        self.node_bounds = None; // calibrate unbounded
        let trace = self.trace(inputs)?;
        self.node_bounds = Some(
            trace
                .node_outputs
                .iter()
                .map(|t| t.max_abs() * slack)
                .collect(),
        );
        Ok(())
    }

    /// Disables range bounding.
    pub fn disable_range_bounding(&mut self) {
        self.node_bounds = None;
    }

    /// The calibrated clamp bound of node `idx`, when bounding is enabled.
    pub fn node_bound(&self, idx: usize) -> Option<f32> {
        self.node_bounds.as_ref().map(|b| b[idx])
    }

    /// The deployed precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Output codec of node `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn node_codec(&self, idx: usize) -> ValueCodec {
        self.node_codecs[idx]
    }

    /// Codec of weight tensor `widx` of node `idx`, when it exists.
    pub fn weight_codec(&self, idx: usize, widx: usize) -> Option<ValueCodec> {
        self.weight_codecs
            .get(idx)
            .and_then(|v| v.get(widx))
            .copied()
    }

    /// Codec of graph input `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn input_codec(&self, idx: usize) -> ValueCodec {
        self.input_codecs[idx]
    }

    /// Runs the network and returns the output.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from layers.
    pub fn forward(&self, inputs: &[Tensor]) -> Result<Tensor, DnnError> {
        Ok(self.run(inputs, None, None)?.0)
    }

    /// [`Engine::forward`] drawing temporaries from a caller-held
    /// [`Workspace`], so repeated inference reuses buffers instead of
    /// allocating. Results are bit-identical to [`Engine::forward`].
    ///
    /// # Errors
    ///
    /// Propagates shape errors from layers.
    pub fn forward_pooled(
        &self,
        inputs: &[Tensor],
        ws: &mut Workspace,
    ) -> Result<Tensor, DnnError> {
        Ok(run(
            &self.network,
            inputs,
            Some(&self.input_codecs),
            Some(&self.node_codecs),
            None,
            self.node_bounds.as_deref(),
            None,
            ws,
        )?
        .0)
    }

    /// Runs the network recording all intermediates.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from layers.
    pub fn trace(&self, inputs: &[Tensor]) -> Result<Trace, DnnError> {
        self.run(inputs, None, None).map(|(_, t)| t)
    }

    /// Re-runs from a fault-free [`Trace`] with the output of node
    /// `node_idx` replaced by `replacement`, recomputing only nodes that
    /// transitively depend on it.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from layers. Returns
    /// [`DnnError::InvalidConfig`] when `node_idx` is out of range.
    pub fn resume(
        &self,
        trace: &Trace,
        node_idx: usize,
        replacement: Tensor,
    ) -> Result<Tensor, DnnError> {
        self.resume_with_deadline(trace, node_idx, replacement, None)
    }

    /// [`Engine::resume`] under a cooperative wall-clock deadline.
    ///
    /// The executor checks the deadline at every node boundary; a runaway
    /// propagation is cut short with [`DnnError::DeadlineExceeded`] instead
    /// of hanging the campaign worker. `None` disables the watchdog.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from layers. Returns
    /// [`DnnError::InvalidConfig`] when `node_idx` is out of range and
    /// [`DnnError::DeadlineExceeded`] when the deadline fires.
    pub fn resume_with_deadline(
        &self,
        trace: &Trace,
        node_idx: usize,
        replacement: Tensor,
        deadline: Option<Instant>,
    ) -> Result<Tensor, DnnError> {
        let mut ws = Workspace::new();
        Ok(self
            .resume_pooled(trace, node_idx, replacement, deadline, &mut ws)?
            .into_owned())
    }

    /// The allocation-free injection hot path: like
    /// [`Engine::resume_with_deadline`], but every recomputed tensor is drawn
    /// from `ws` and clean nodes are *borrowed* from the trace instead of
    /// cloned. After a warm-up injection the steady state performs zero heap
    /// allocation (measurable via [`Workspace::hit_rate`]).
    ///
    /// Which nodes to recompute comes from the transitive-dependents bitsets
    /// built at engine construction — no per-injection graph walk.
    ///
    /// Results are bit-identical to [`Engine::resume_with_deadline`]: the
    /// accumulation order, quantization and bounding of every recomputed
    /// value are unchanged; only the provenance of the memory differs.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from layers. Returns
    /// [`DnnError::InvalidConfig`] when `node_idx` is out of range and
    /// [`DnnError::DeadlineExceeded`] when the deadline fires.
    pub fn resume_pooled<'t>(
        &self,
        trace: &'t Trace,
        node_idx: usize,
        replacement: Tensor,
        deadline: Option<Instant>,
        ws: &mut Workspace,
    ) -> Result<ResumedOutput<'t>, DnnError> {
        let n = self.network.node_count();
        if node_idx >= n {
            return Err(DnnError::InvalidConfig {
                message: format!(
                    "resume node index {node_idx} out of range (network has {n} nodes)"
                ),
            });
        }
        if let Some(d) = deadline {
            if fidelity_obs::clock::now() >= d {
                fidelity_obs::metrics::counter("dnn.deadline_exceeded").inc();
                return Err(DnnError::DeadlineExceeded);
            }
        }

        let down = &self.downstream[node_idx];
        let mut slots = ws.take_slots(n);

        // The corrupted writeback passes through the same bounding hardware
        // as a clean one; it is deliberately NOT re-quantized (matching the
        // fault model: the corruption is what the datapath wrote back).
        let mut repl = replacement;
        if let Some(bounds) = &self.node_bounds {
            let bound = bounds[node_idx];
            repl.map_inplace(|v| clamp_to_bound(v, bound));
        }
        slots[node_idx] = Some(repl);

        let mut failure: Option<DnnError> = None;
        for idx in node_idx + 1..n {
            if down[idx / 64] >> (idx % 64) & 1 == 0 {
                continue; // not downstream of the corruption: trace is valid
            }
            if let Some(d) = deadline {
                if fidelity_obs::clock::now() >= d {
                    fidelity_obs::metrics::counter("dnn.deadline_exceeded").inc();
                    failure = Some(DnnError::DeadlineExceeded);
                    break;
                }
            }
            let node = &self.network.nodes[idx];
            let resolve = |src: &Source| -> &Tensor {
                match src {
                    Source::Input(i) => &trace.inputs[*i],
                    Source::Node(j) => match &slots[*j] {
                        Some(t) => t,
                        None => &trace.node_outputs[*j],
                    },
                }
            };
            // Input refs live on the stack for the common arities; a node
            // wider than the buffer (huge concat) falls back to a Vec.
            let mut ref_buf: [&Tensor; 8] = [&trace.output; 8];
            let ref_vec: Vec<&Tensor>;
            let in_refs: &[&Tensor] = if node.sources.len() <= ref_buf.len() {
                for (k, src) in node.sources.iter().enumerate() {
                    ref_buf[k] = resolve(src);
                }
                &ref_buf[..node.sources.len()]
            } else {
                ref_vec = node.sources.iter().map(resolve).collect();
                &ref_vec
            };
            match node.layer.forward(in_refs, ws) {
                Ok(mut raw) => {
                    let codec = self.node_codecs[idx];
                    // Same on-grid skip as the full executor: value-
                    // preserving layers whose sources share this codec emit
                    // values the quantizer maps to themselves.
                    let on_grid = self.node_bounds.is_none()
                        && node.layer.values_preserved()
                        && node.sources.iter().all(|src| match src {
                            Source::Input(i) => self.input_codecs[*i] == codec,
                            Source::Node(j) => self.node_codecs[*j] == codec,
                        });
                    if codec.precision() != Precision::Fp32 && !on_grid {
                        raw.map_inplace(|v| codec.quantize(v));
                    }
                    if let Some(bounds) = &self.node_bounds {
                        let bound = bounds[idx];
                        raw.map_inplace(|v| clamp_to_bound(v, bound));
                    }
                    slots[idx] = Some(raw);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            ws.put_slots(slots);
            return Err(e);
        }

        let out = match self.network.output {
            Source::Input(i) => ResumedOutput::Borrowed(&trace.inputs[i]),
            Source::Node(i) => match slots[i].take() {
                Some(t) => ResumedOutput::Owned(t),
                None => ResumedOutput::Borrowed(&trace.node_outputs[i]),
            },
        };
        ws.put_slots(slots);
        Ok(out)
    }

    /// The batched-injection hot path: evaluates one sparse fault as a pure
    /// delta over the golden overlay installed in `ws` (see
    /// [`Workspace::install_golden`] and [`golden_key`]).
    ///
    /// `neurons`/`values` describe the corrupted output of node `node_idx`
    /// as "offset `neurons[i]` holds `values[i]` instead of its clean
    /// value". The engine patches the overlay's copy of that node, walks the
    /// downstream cone recomputing each affected node — restricted to a
    /// conservative spatial window wherever the layer's
    /// [`Layer::region_map`] provides one, a full forward otherwise — calls
    /// `judge` on the resulting network output, then repairs every touched
    /// overlay region back to golden bits and returns the judge's verdict.
    ///
    /// Results are bit-identical to building the dense replacement tensor
    /// and calling [`Engine::resume_pooled`]:
    /// * windows are conservative supersets of the true fault cone, and
    ///   recomputing a *clean* neuron reproduces its golden bits exactly
    ///   (kernels are deterministic and quantization/bounding are idempotent
    ///   on already-quantized, already-bounded values);
    /// * each recomputed neuron sees the identical accumulation order
    ///   ([`MacSpec::forward_region_into_scratch`] only narrows loop
    ///   bounds);
    /// * the sparse patch plus per-offset bounding equals splicing the
    ///   faulty values into a clean clone and bounding the whole tensor,
    ///   because every clean value is within its own calibrated bound.
    ///
    /// The one exception is NaN *payload* bits: which elements are NaN is
    /// identical, but a window pass may accumulate a given neuron at a
    /// different code location (lane body vs. tail) than the full pass, and
    /// NaN payloads are the single IEEE-754 artifact the compiler may
    /// legally vary between locations (see [`MacTier`]). All campaign
    /// statistics are NaN-payload-insensitive, so this never surfaces in
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] when `node_idx` is out of range,
    /// when `neurons` and `values` differ in length, or when no golden
    /// overlay (with one slot per node) is installed. Returns
    /// [`DnnError::DeadlineExceeded`] when the deadline fires mid-walk; the
    /// overlay is repaired before returning, so the next injection can
    /// reuse it.
    #[allow(clippy::too_many_arguments)]
    pub fn resume_delta<R>(
        &self,
        trace: &Trace,
        node_idx: usize,
        neurons: &[usize],
        values: &[f32],
        deadline: Option<Instant>,
        ws: &mut Workspace,
        judge: impl FnOnce(&Tensor) -> R,
    ) -> Result<R, DnnError> {
        let n = self.network.node_count();
        if node_idx >= n {
            return Err(DnnError::InvalidConfig {
                message: format!(
                    "resume node index {node_idx} out of range (network has {n} nodes)"
                ),
            });
        }
        if neurons.len() != values.len() {
            return Err(DnnError::InvalidConfig {
                message: format!(
                    "sparse fault arity mismatch: {} neurons vs {} values",
                    neurons.len(),
                    values.len()
                ),
            });
        }
        if let Some(d) = deadline {
            if fidelity_obs::clock::now() >= d {
                fidelity_obs::metrics::counter("dnn.deadline_exceeded").inc();
                return Err(DnnError::DeadlineExceeded);
            }
        }
        let mut overlay = ws.take_golden();
        if overlay.key.is_none() || overlay.slots.len() != n || overlay.dirty.len() != n {
            ws.put_golden(overlay);
            return Err(DnnError::InvalidConfig {
                message: "delta resume requires an installed golden overlay".into(),
            });
        }

        // Patch the injected node sparsely. Bounding only the patched
        // offsets equals bounding the whole spliced tensor: clean values
        // satisfy |v| ≤ bound by calibration (slack ≥ 1), so the clamp is
        // the identity on them.
        let bound = self.node_bounds.as_ref().map(|b| b[node_idx]);
        {
            let slot = &mut overlay.slots[node_idx];
            overlay.dirty[node_idx] = nonempty_region(sparse_region(slot.shape(), neurons));
            let data = slot.data_mut();
            for (&off, &v) in neurons.iter().zip(values) {
                data[off] = match bound {
                    Some(b) => clamp_to_bound(v, b),
                    None => v,
                };
            }
        }

        let down = &self.downstream[node_idx];
        let mut failure: Option<DnnError> = None;
        for idx in node_idx + 1..n {
            if down[idx / 64] >> (idx % 64) & 1 == 0 {
                continue; // not downstream of the corruption
            }
            if let Some(d) = deadline {
                if fidelity_obs::clock::now() >= d {
                    fidelity_obs::metrics::counter("dnn.deadline_exceeded").inc();
                    failure = Some(DnnError::DeadlineExceeded);
                    break;
                }
            }
            let node = &self.network.nodes[idx];

            // Union of the regions in which this node's sources diverge
            // from golden. All-clean sources can happen when an upstream
            // window degenerated to empty; the node is then provably clean.
            let mut src_dirty: Option<Region> = None;
            for src in &node.sources {
                if let Source::Node(j) = src {
                    if let Some(r) = overlay.dirty[*j] {
                        src_dirty = Some(union_region(src_dirty, r));
                    }
                }
            }
            let Some(src_dirty) = src_dirty else {
                continue;
            };

            // Forward image of the dirty input region, when the layer has
            // spatial locality; `All` otherwise.
            let out_region = match src_dirty {
                Region::All => Region::All,
                Region::Window { h, w } => {
                    let mut shape_buf: [&[usize]; 8] = [&[]; 8];
                    let shape_vec: Vec<&[usize]>;
                    let shape_of = |src: &Source| -> &[usize] {
                        match src {
                            Source::Input(i) => trace.inputs[*i].shape(),
                            Source::Node(j) => trace.node_outputs[*j].shape(),
                        }
                    };
                    let shapes: &[&[usize]] = if node.sources.len() <= shape_buf.len() {
                        for (k, src) in node.sources.iter().enumerate() {
                            shape_buf[k] = shape_of(src);
                        }
                        &shape_buf[..node.sources.len()]
                    } else {
                        shape_vec = node.sources.iter().map(shape_of).collect();
                        &shape_vec
                    };
                    match node.layer.region_map(shapes, h, w) {
                        Some((oh, ow)) => Region::Window { h: oh, w: ow },
                        None => Region::All,
                    }
                }
            };

            let codec = self.node_codecs[idx];
            let on_grid = self.node_bounds.is_none()
                && node.layer.values_preserved()
                && node.sources.iter().all(|src| match src {
                    Source::Input(i) => self.input_codecs[*i] == codec,
                    Source::Node(j) => self.node_codecs[*j] == codec,
                });
            let needs_quant = codec.precision() != Precision::Fp32 && !on_grid;

            let mut handled = false;
            if let Region::Window { h, w } = out_region {
                if h.0 >= h.1 || w.0 >= w.1 {
                    continue; // window fell off the grid: provably clean
                }
                // Topological order guarantees every source index < idx, so
                // the split cleanly separates inputs from the output slot.
                let (head, tail) = overlay.slots.split_at_mut(idx);
                let out_t = &mut tail[0];
                let resolve = |src: &Source| -> &Tensor {
                    match src {
                        Source::Input(i) => &trace.inputs[*i],
                        Source::Node(j) => &head[*j],
                    }
                };
                let mut ref_buf: [&Tensor; 8] = [&trace.output; 8];
                let ref_vec: Vec<&Tensor>;
                let in_refs: &[&Tensor] = if node.sources.len() <= ref_buf.len() {
                    for (k, src) in node.sources.iter().enumerate() {
                        ref_buf[k] = resolve(src);
                    }
                    &ref_buf[..node.sources.len()]
                } else {
                    ref_vec = node.sources.iter().map(resolve).collect();
                    &ref_vec
                };
                match node.layer.forward_region(in_refs, h, w, out_t, ws) {
                    Ok(true) => {
                        let dims = {
                            let s = out_t.shape();
                            [s[0], s[1], s[2], s[3]]
                        };
                        let data = out_t.data_mut();
                        if needs_quant {
                            for_each_window_row(&dims, h, w, |a, b| {
                                for v in &mut data[a..b] {
                                    *v = codec.quantize(*v);
                                }
                            });
                        }
                        if let Some(bounds) = &self.node_bounds {
                            let node_bound = bounds[idx];
                            for_each_window_row(&dims, h, w, |a, b| {
                                for v in &mut data[a..b] {
                                    *v = clamp_to_bound(*v, node_bound);
                                }
                            });
                        }
                        overlay.dirty[idx] = Some(Region::Window { h, w });
                        handled = true;
                    }
                    Ok(false) => {} // fall through to the full forward
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            if !handled {
                let (head, tail) = overlay.slots.split_at_mut(idx);
                let resolve = |src: &Source| -> &Tensor {
                    match src {
                        Source::Input(i) => &trace.inputs[*i],
                        Source::Node(j) => &head[*j],
                    }
                };
                let mut ref_buf: [&Tensor; 8] = [&trace.output; 8];
                let ref_vec: Vec<&Tensor>;
                let in_refs: &[&Tensor] = if node.sources.len() <= ref_buf.len() {
                    for (k, src) in node.sources.iter().enumerate() {
                        ref_buf[k] = resolve(src);
                    }
                    &ref_buf[..node.sources.len()]
                } else {
                    ref_vec = node.sources.iter().map(resolve).collect();
                    &ref_vec
                };
                match node.layer.forward(in_refs, ws) {
                    Ok(mut raw) => {
                        if needs_quant {
                            raw.map_inplace(|v| codec.quantize(v));
                        }
                        if let Some(bounds) = &self.node_bounds {
                            let node_bound = bounds[idx];
                            raw.map_inplace(|v| clamp_to_bound(v, node_bound));
                        }
                        let old = std::mem::replace(&mut tail[0], raw);
                        ws.recycle(old);
                        overlay.dirty[idx] = Some(Region::All);
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
        }

        if let Some(e) = failure {
            repair_overlay(&mut overlay, trace);
            ws.put_golden(overlay);
            return Err(e);
        }

        let verdict = match self.network.output {
            Source::Input(i) => judge(&trace.inputs[i]),
            Source::Node(i) => judge(&overlay.slots[i]),
        };
        repair_overlay(&mut overlay, trace);
        ws.put_golden(overlay);
        Ok(verdict)
    }

    /// Whether node `dependent` transitively consumes node `of`'s output
    /// (from the precomputed downstream bitsets).
    pub fn depends_on(&self, dependent: usize, of: usize) -> bool {
        self.downstream
            .get(of)
            .is_some_and(|d| d[dependent / 64] >> (dependent % 64) & 1 == 1)
    }

    /// Number of nodes that must be recomputed when node `idx` is corrupted.
    pub fn downstream_count(&self, idx: usize) -> usize {
        self.downstream[idx]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// The MAC geometry of node `idx` given the input shapes recorded in
    /// `trace`, when the node is a MAC layer.
    pub fn mac_spec(&self, idx: usize, trace: &Trace) -> Option<MacSpec> {
        let node = &self.network.nodes[idx];
        let shapes: Vec<&[usize]> = node
            .sources
            .iter()
            .map(|src| match src {
                Source::Input(i) => trace.inputs[*i].shape(),
                Source::Node(i) => trace.node_outputs[*i].shape(),
            })
            .collect();
        node.layer.mac_spec(&shapes)
    }

    /// The codecs of node `idx`'s input tensors (graph-input or producing
    /// node codecs, in input order).
    pub fn node_input_codecs(&self, idx: usize) -> Vec<ValueCodec> {
        self.network.nodes[idx]
            .sources
            .iter()
            .map(|src| match src {
                Source::Input(i) => self.input_codecs[*i],
                Source::Node(i) => self.node_codecs[*i],
            })
            .collect()
    }

    /// The input tensors of node `idx` as recorded in `trace`.
    pub fn node_inputs<'t>(&self, idx: usize, trace: &'t Trace) -> Vec<&'t Tensor> {
        self.network.nodes[idx]
            .sources
            .iter()
            .map(|src| match src {
                Source::Input(i) => &trace.inputs[*i],
                Source::Node(i) => &trace.node_outputs[*i],
            })
            .collect()
    }

    /// Number of input tensors node `idx` consumes.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn node_source_count(&self, idx: usize) -> usize {
        self.network.nodes[idx].sources.len()
    }

    /// The `k`-th input tensor of node `idx` as recorded in `trace` — the
    /// allocation-free counterpart of [`Engine::node_inputs`] for hot loops.
    ///
    /// # Panics
    ///
    /// Panics when `idx` or `k` is out of range.
    pub fn node_input_at<'t>(&self, idx: usize, k: usize, trace: &'t Trace) -> &'t Tensor {
        match self.network.nodes[idx].sources[k] {
            Source::Input(i) => &trace.inputs[i],
            Source::Node(i) => &trace.node_outputs[i],
        }
    }

    /// The codec of the `k`-th input tensor of node `idx` — the
    /// allocation-free counterpart of [`Engine::node_input_codecs`].
    ///
    /// # Panics
    ///
    /// Panics when `idx` or `k` is out of range.
    pub fn node_input_codec_at(&self, idx: usize, k: usize) -> ValueCodec {
        match self.network.nodes[idx].sources[k] {
            Source::Input(i) => self.input_codecs[i],
            Source::Node(i) => self.node_codecs[i],
        }
    }

    fn run(
        &self,
        inputs: &[Tensor],
        replace: Option<(usize, Tensor)>,
        base: Option<&Trace>,
    ) -> Result<(Tensor, Trace), DnnError> {
        // A replacement without a base trace cannot happen: the only caller
        // that passes `replace` is `resume_with_deadline`, which supplies the
        // trace alongside it. Dropping the replacement is safe either way.
        let replace = match (replace, base) {
            (Some((i, t)), Some(trace)) => Some((i, t, trace)),
            _ => None,
        };
        let mut ws = Workspace::new();
        run(
            &self.network,
            inputs,
            Some(&self.input_codecs),
            Some(&self.node_codecs),
            replace,
            self.node_bounds.as_deref(),
            None,
            &mut ws,
        )
    }
}

/// The result of a pooled resume: the network output, either borrowed from
/// the clean trace (the corruption never reached it) or owned (recomputed).
#[derive(Debug)]
pub enum ResumedOutput<'t> {
    /// The output was unaffected by the corruption; this borrows the clean
    /// trace's tensor without copying.
    Borrowed(&'t Tensor),
    /// The output was recomputed (its buffer came from the workspace pool;
    /// hand it back via [`Workspace::recycle`] when done).
    Owned(Tensor),
}

impl ResumedOutput<'_> {
    /// The output tensor.
    pub fn tensor(&self) -> &Tensor {
        match self {
            ResumedOutput::Borrowed(t) => t,
            ResumedOutput::Owned(t) => t,
        }
    }

    /// Converts to an owned tensor, cloning when borrowed.
    pub fn into_owned(self) -> Tensor {
        match self {
            ResumedOutput::Borrowed(t) => t.clone(),
            ResumedOutput::Owned(t) => t,
        }
    }

    /// Returns the output's buffers to `ws` when owned (no-op when
    /// borrowed) — the steady-state epilogue of an injection.
    pub fn recycle_into(self, ws: &mut Workspace) {
        if let ResumedOutput::Owned(t) = self {
            ws.recycle(t);
        }
    }
}

/// Builds the transitive-dependents bitset for every node: walking nodes in
/// reverse topological order, each consumer folds its own downstream set
/// into its producers'.
fn build_downstream(network: &Network) -> Vec<Vec<u64>> {
    let n = network.nodes.len();
    let words = n.div_ceil(64);
    let mut down = vec![vec![0u64; words]; n];
    for j in (0..n).rev() {
        for src in &network.nodes[j].sources {
            if let Source::Node(i) = src {
                // Topological order guarantees i < j, so the split is safe.
                let (head, tail) = down.split_at_mut(j);
                let di = &mut head[*i];
                for (a, b) in di.iter_mut().zip(tail[0].iter()) {
                    *a |= *b;
                }
                di[j / 64] |= 1 << (j % 64);
            }
        }
    }
    down
}

/// Clamps a value to `[-bound, bound]`; non-finite values saturate to the
/// bound (a magnitude comparator on the exponent field catches Inf/NaN).
fn clamp_to_bound(v: f32, bound: f32) -> f32 {
    if !v.is_finite() {
        return if v.is_sign_negative() { -bound } else { bound };
    }
    v.clamp(-bound, bound)
}

/// Core executor shared by calibration (no codecs) and engine runs. The
/// deadline, when set, is checked at every node boundary.
#[allow(clippy::too_many_arguments)]
fn run(
    network: &Network,
    inputs: &[Tensor],
    input_codecs: Option<&[ValueCodec]>,
    node_codecs: Option<&[ValueCodec]>,
    replace: Option<(usize, Tensor, &Trace)>,
    bounds: Option<&[f32]>,
    deadline: Option<Instant>,
    ws: &mut Workspace,
) -> Result<(Tensor, Trace), DnnError> {
    if inputs.len() != network.input_names.len() {
        return Err(DnnError::ArityMismatch {
            layer: network.name.clone(),
            expected: network.input_names.len(),
            actual: inputs.len(),
        });
    }

    let quantize = |t: &Tensor, codec: Option<&ValueCodec>| -> Tensor {
        match codec {
            Some(c) if c.precision() != Precision::Fp32 => t.map(|v| c.quantize(v)),
            _ => t.clone(),
        }
    };

    let q_inputs: Vec<Tensor> = inputs
        .iter()
        .enumerate()
        .map(|(i, t)| quantize(t, input_codecs.map(|c| &c[i])))
        .collect();

    // When resuming, mark which nodes must be recomputed: the replaced node's
    // dependents only. All others reuse the base trace.
    let mut dirty = vec![false; network.nodes.len()];
    if let Some((ridx, _, _)) = replace {
        dirty[ridx] = true;
        for i in ridx + 1..network.nodes.len() {
            if network.nodes[i].sources.iter().any(|s| match s {
                Source::Node(j) => dirty[*j],
                Source::Input(_) => false,
            }) {
                dirty[i] = true;
            }
        }
    }

    let apply_bound = |idx: usize, mut t: Tensor| -> Tensor {
        if let Some(b) = bounds {
            let bound = b[idx];
            t.map_inplace(|v| clamp_to_bound(v, bound));
        }
        t
    };

    let mut outputs: Vec<Tensor> = Vec::with_capacity(network.nodes.len());
    for (idx, node) in network.nodes.iter().enumerate() {
        if let Some(d) = deadline {
            // Monotonic watchdog deadline via the obs clock (the workspace's
            // sanctioned wall-clock site); never feeds campaign statistics.
            if fidelity_obs::clock::now() >= d {
                fidelity_obs::metrics::counter("dnn.deadline_exceeded").inc();
                return Err(DnnError::DeadlineExceeded);
            }
        }
        if let Some((ridx, ref replacement, base)) = replace {
            if idx == ridx {
                // The corrupted writeback passes through the same bounding
                // hardware as a clean one.
                outputs.push(apply_bound(idx, replacement.clone()));
                continue;
            }
            if !dirty[idx] {
                outputs.push(base.node_outputs[idx].clone());
                continue;
            }
        }
        let in_refs: Vec<&Tensor> = node
            .sources
            .iter()
            .map(|src| match src {
                Source::Input(i) => &q_inputs[*i],
                Source::Node(i) => &outputs[*i],
            })
            .collect();
        let mut raw = node.layer.forward(&in_refs, ws)?;
        if let Some(c) = node_codecs.map(|cs| &cs[idx]) {
            // Value-preserving layers (concat, reshape, max-pool, ReLU) fed
            // exclusively by sources already on this codec's grid emit
            // values the quantizer would map to themselves — skip the
            // per-element pass. Bounding clamps can move values off-grid, so
            // the skip only applies unbounded.
            let on_grid = bounds.is_none()
                && node.layer.values_preserved()
                && node.sources.iter().all(|src| match src {
                    Source::Input(i) => input_codecs.is_some_and(|ic| ic[*i] == *c),
                    Source::Node(j) => node_codecs.is_some_and(|nc| nc[*j] == *c),
                });
            if c.precision() != Precision::Fp32 && !on_grid {
                raw.map_inplace(|v| c.quantize(v));
            }
        }
        outputs.push(apply_bound(idx, raw));
    }

    let out = match network.output {
        Source::Input(i) => q_inputs[i].clone(),
        Source::Node(i) => outputs[i].clone(),
    };
    let trace = Trace {
        inputs: q_inputs,
        node_outputs: outputs,
        output: out.clone(),
    };
    Ok((out, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, ActivationKind, Add, Dense};

    fn two_layer_net() -> Network {
        let w1 = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let w2 = Tensor::from_vec(vec![2, 2], vec![2.0, 0.0, 0.0, 2.0]).unwrap();
        NetworkBuilder::new("t")
            .input("x")
            .layer(Dense::new("fc1", w1).unwrap(), &["x"])
            .unwrap()
            .layer(Activation::new("relu", ActivationKind::Relu), &["fc1"])
            .unwrap()
            .layer(Dense::new("fc2", w2).unwrap(), &["relu"])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn forward_chains_layers() {
        let engine = Engine::new(two_layer_net(), Precision::Fp32, &[]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, -3.0]).unwrap();
        let y = engine.forward(&[x]).unwrap();
        assert_eq!(y.data(), &[2.0, 0.0]);
    }

    #[test]
    fn builder_rejects_bad_wiring() {
        let w = Tensor::zeros(vec![2, 2]);
        assert!(matches!(
            NetworkBuilder::new("t")
                .input("x")
                .layer(Dense::new("fc", w.clone()).unwrap(), &["nope"]),
            Err(DnnError::UnknownName { .. })
        ));
        assert!(matches!(
            NetworkBuilder::new("t")
                .input("x")
                .layer(Dense::new("x", w.clone()).unwrap(), &["x"]),
            Err(DnnError::DuplicateName { .. })
        ));
        assert!(matches!(
            NetworkBuilder::new("t")
                .input("x")
                .layer(Add::new("add"), &["x"]),
            Err(DnnError::ArityMismatch { .. })
        ));
        assert!(NetworkBuilder::new("t").input("x").build().is_err());
    }

    #[test]
    fn resume_matches_full_run_with_replacement() {
        let engine = Engine::new(two_layer_net(), Precision::Fp32, &[]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        let trace = engine.trace(&[x]).unwrap();

        // Corrupt fc1's output and resume.
        let mut corrupted = trace.node_outputs[0].clone();
        corrupted.data_mut()[0] = 100.0;
        let y = engine.resume(&trace, 0, corrupted).unwrap();
        assert_eq!(y.data(), &[200.0, 4.0]);
        // Clean trace is untouched.
        assert_eq!(trace.output.data(), &[2.0, 4.0]);
    }

    #[test]
    fn resume_skips_untouched_branches() {
        // Diamond: x -> a; x -> b; add(a, b). Corrupting `a` must keep `b`
        // from the base trace (same values).
        let w = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let net = NetworkBuilder::new("d")
            .input("x")
            .layer(Dense::new("a", w.clone()).unwrap(), &["x"])
            .unwrap()
            .layer(Dense::new("b", w).unwrap(), &["x"])
            .unwrap()
            .layer(Add::new("add"), &["a", "b"])
            .unwrap()
            .build()
            .unwrap();
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![3.0, 4.0]).unwrap();
        let trace = engine.trace(&[x]).unwrap();
        let mut corrupted = trace.node_outputs[0].clone();
        corrupted.data_mut()[1] = -4.0;
        let y = engine.resume(&trace, 0, corrupted).unwrap();
        assert_eq!(y.data(), &[6.0, 0.0]);
    }

    #[test]
    fn int8_quantization_bounds_error() {
        let net = two_layer_net();
        let x = Tensor::from_vec(vec![1, 2], vec![0.5, -0.25]).unwrap();
        let engine = Engine::new(net, Precision::Int8, &[vec![x.clone()]]).unwrap();
        let y = engine.forward(&[x]).unwrap();
        // Identity->relu->2x with small values: quantization error is bounded
        // by a few grid steps.
        assert!((y.data()[0] - 1.0).abs() < 0.05);
        assert_eq!(y.data()[1], 0.0);
    }

    #[test]
    fn fp16_quantization_rounds_outputs() {
        let net = two_layer_net();
        let engine = Engine::new(net, Precision::Fp16, &[]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![0.1, 0.2]).unwrap();
        let y = engine.forward(&[x]).unwrap();
        for &v in y.data() {
            assert_eq!(crate::f16::round_to_f16(v), v);
        }
    }

    /// Backs the value-preserving quantize skip: every traced node output —
    /// including those of skipped layers (ReLU, max-pool, concat, flatten) —
    /// must already sit on its codec's grid, i.e. re-quantization is a
    /// bitwise no-op. Runs both precisions the executors skip under.
    #[test]
    fn trace_outputs_are_quantize_idempotent() {
        use crate::layers::{Concat, Conv2d, Flatten, Pool2d, PoolKind};

        let net = || {
            let conv_w = crate::init::uniform_tensor(11, vec![4, 2, 3, 3], 0.6);
            let fc_w = crate::init::uniform_tensor(12, vec![3, 32], 0.6);
            NetworkBuilder::new("grid")
                .input("x")
                .layer(
                    Conv2d::new("conv", conv_w).unwrap().with_padding(1, 1),
                    &["x"],
                )
                .unwrap()
                .layer(Activation::new("relu", ActivationKind::Relu), &["conv"])
                .unwrap()
                .layer(
                    Pool2d::new("pool", PoolKind::Max, 2).with_stride(2),
                    &["relu"],
                )
                .unwrap()
                .layer(Concat::new("cat", 1), &["pool", "pool"])
                .unwrap()
                .layer(Flatten::new("flat"), &["cat"])
                .unwrap()
                .layer(Dense::new("fc", fc_w).unwrap(), &["flat"])
                .unwrap()
                .build()
                .unwrap()
        };
        let x = crate::init::uniform_tensor(13, vec![1, 2, 4, 4], 1.0);
        for precision in [Precision::Fp16, Precision::Int8] {
            let engine = Engine::new(net(), precision, &[vec![x.clone()]]).unwrap();
            let trace = engine.trace(std::slice::from_ref(&x)).unwrap();
            for idx in 0..engine.network().node_count() {
                let codec = engine.node_codec(idx);
                for (k, &v) in trace.node_outputs[idx].data().iter().enumerate() {
                    assert_eq!(
                        codec.quantize(v).to_bits(),
                        v.to_bits(),
                        "{precision:?} node {idx} elem {k} off-grid"
                    );
                }
            }
        }
    }

    #[test]
    fn range_bounding_clamps_corrupted_values() {
        let mut engine = Engine::new(two_layer_net(), Precision::Fp32, &[]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        engine
            .enable_range_bounding(std::slice::from_ref(&x), 2.0)
            .unwrap();
        // Clean behaviour unchanged.
        let trace = engine.trace(&[x]).unwrap();
        assert_eq!(trace.output.data(), &[2.0, 4.0]);
        // A huge injected value is clamped at the corrupted layer
        // (fc1's clean max-abs is 2, slack 2 → bound 4).
        let mut corrupted = trace.node_outputs[0].clone();
        corrupted.data_mut()[0] = 1e9;
        let y = engine.resume(&trace, 0, corrupted.clone()).unwrap();
        assert_eq!(y.data(), &[8.0, 4.0]); // 4 (clamped) × 2
                                           // NaN saturates to the bound instead of propagating.
        corrupted.data_mut()[0] = f32::NAN;
        let y = engine.resume(&trace, 0, corrupted).unwrap();
        assert_eq!(y.data(), &[8.0, 4.0]);
        // Disabled bounding lets the corruption through again.
        engine.disable_range_bounding();
        let trace = engine
            .trace(&[Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap()])
            .unwrap();
        let mut corrupted = trace.node_outputs[0].clone();
        corrupted.data_mut()[0] = 1e9;
        let y = engine.resume(&trace, 0, corrupted).unwrap();
        assert_eq!(y.data()[0], 2e9);
    }

    #[test]
    fn range_bounding_rejects_sub_unit_slack() {
        let mut engine = Engine::new(two_layer_net(), Precision::Fp32, &[]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        assert!(engine
            .enable_range_bounding(std::slice::from_ref(&x), 0.5)
            .is_err());
        assert!(engine.enable_range_bounding(&[x], f32::NAN).is_err());
    }

    #[test]
    fn named_output_selects_intermediate() {
        let w = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let net = NetworkBuilder::new("t")
            .input("x")
            .layer(Dense::new("fc1", w.clone()).unwrap(), &["x"])
            .unwrap()
            .layer(Dense::new("fc2", w).unwrap(), &["fc1"])
            .unwrap()
            .output("fc1")
            .unwrap()
            .build()
            .unwrap();
        let engine = Engine::new(net, Precision::Fp32, &[]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![5.0, 6.0]).unwrap();
        assert_eq!(engine.forward(&[x]).unwrap().data(), &[5.0, 6.0]);
    }

    /// Deterministic pseudo-random fill for delta-path fixtures.
    fn lcg_fill(seed: &mut u64, shape: Vec<usize>) -> Tensor {
        let len = shape.iter().product();
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map the top bits to a small signed range with a fractional part.
            let v = ((*seed >> 40) as i64 - (1 << 23)) as f32 / (1 << 21) as f32;
            data.push(v);
        }
        Tensor::from_vec(shape, data).unwrap()
    }

    /// A little inception-style rank-4 network exercising every region-aware
    /// layer (conv, pool, activation, concat, bias-add, scale) plus a
    /// region-less tail (global-avg-pool → dense) that forces the delta walk
    /// through its `All` fallback.
    fn branchy_conv_net(seed: u64) -> Network {
        use crate::layers::{BiasAdd, Concat, Conv2d, GlobalAvgPool, Pool2d, PoolKind, Scale};
        let mut s = seed;
        NetworkBuilder::new("branchy")
            .input("x")
            .layer(
                Conv2d::new("stem", lcg_fill(&mut s, vec![4, 2, 3, 3]))
                    .unwrap()
                    .with_padding(1, 1),
                &["x"],
            )
            .unwrap()
            .layer(Activation::new("relu", ActivationKind::Relu), &["stem"])
            .unwrap()
            .layer(
                Conv2d::new("b0", lcg_fill(&mut s, vec![2, 4, 1, 1])).unwrap(),
                &["relu"],
            )
            .unwrap()
            .layer(
                Pool2d::new("b1p", PoolKind::Max, 3)
                    .with_stride(1)
                    .with_padding(1),
                &["relu"],
            )
            .unwrap()
            .layer(
                Conv2d::new("b1c", lcg_fill(&mut s, vec![2, 4, 1, 1])).unwrap(),
                &["b1p"],
            )
            .unwrap()
            .layer(Concat::new("cat", 1), &["b0", "b1c"])
            .unwrap()
            .layer(
                BiasAdd::new("bias", lcg_fill(&mut s, vec![4])).unwrap(),
                &["cat"],
            )
            .unwrap()
            .layer(Scale::new("scale", 0.75), &["bias"])
            .unwrap()
            .layer(GlobalAvgPool::new("gap"), &["scale"])
            .unwrap()
            .layer(
                Dense::new("head", lcg_fill(&mut s, vec![3, 4])).unwrap(),
                &["gap"],
            )
            .unwrap()
            .build()
            .unwrap()
    }

    /// Bit image with NaN payloads canonicalized: NaN *positions* are part
    /// of the bitwise contract, NaN *payloads* are compiler-location
    /// dependent (see the `resume_delta` docs) and must compare equal.
    fn bits_of(t: &Tensor) -> (Vec<usize>, Vec<u32>) {
        (
            t.shape().to_vec(),
            t.data()
                .iter()
                .map(|v| if v.is_nan() { 0x7FC0_0000 } else { v.to_bits() })
                .collect(),
        )
    }

    /// The delta path must be byte-identical to the dense `resume_pooled`
    /// oracle for every injection node, patch shape, precision, and
    /// range-bounding mode — and must leave the overlay repaired to golden
    /// bits afterwards.
    #[test]
    fn resume_delta_matches_resume_pooled_bitwise() {
        let x = {
            let mut s = 0xD00D_u64;
            lcg_fill(&mut s, vec![1, 2, 6, 6])
        };
        for precision in [Precision::Fp32, Precision::Fp16] {
            for bounded in [false, true] {
                let mut engine =
                    Engine::new(branchy_conv_net(7), precision, &[vec![x.clone()]]).unwrap();
                if bounded {
                    engine
                        .enable_range_bounding(std::slice::from_ref(&x), 1.5)
                        .unwrap();
                }
                let trace = engine.trace(std::slice::from_ref(&x)).unwrap();
                let n = engine.network().node_count();
                let mut ws = Workspace::new();
                ws.install_golden(golden_key(&trace), &trace.node_outputs);

                for node in 0..n {
                    let len = trace.node_outputs[node].len();
                    let patches: Vec<(Vec<usize>, Vec<f32>)> = vec![
                        (vec![0], vec![64.0]),
                        (vec![len - 1], vec![-1.0e30]),
                        (
                            vec![0, len / 2, len - 1],
                            vec![f32::NAN, f32::INFINITY, 3.5],
                        ),
                    ];
                    for (neurons, values) in patches {
                        let delta = engine
                            .resume_delta(&trace, node, &neurons, &values, None, &mut ws, bits_of)
                            .unwrap();

                        let mut repl = trace.node_outputs[node].clone();
                        for (&off, &v) in neurons.iter().zip(&values) {
                            repl.data_mut()[off] = v;
                        }
                        let mut ws2 = Workspace::new();
                        let dense = engine
                            .resume_pooled(&trace, node, repl, None, &mut ws2)
                            .unwrap();
                        assert_eq!(
                            delta,
                            bits_of(dense.tensor()),
                            "delta != pooled at node {node} (precision {precision:?}, \
                             bounded {bounded})"
                        );

                        // Overlay must be bit-golden again, worklist empty.
                        let overlay = ws.take_golden();
                        assert_eq!(overlay.key, Some(golden_key(&trace)));
                        for (slot, gold) in overlay.slots.iter().zip(&trace.node_outputs) {
                            assert_eq!(bits_of(slot), bits_of(gold), "overlay not repaired");
                        }
                        assert!(overlay.dirty.iter().all(Option::is_none));
                        ws.put_golden(overlay);
                    }
                }
            }
        }
    }

    #[test]
    fn resume_delta_requires_installed_overlay() {
        let engine = Engine::new(two_layer_net(), Precision::Fp32, &[]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        let trace = engine.trace(&[x]).unwrap();
        let mut ws = Workspace::new();
        let r = engine.resume_delta(&trace, 0, &[0], &[9.0], None, &mut ws, |_| ());
        assert!(matches!(r, Err(DnnError::InvalidConfig { .. })));
        // Arity mismatch between neurons and values is rejected up front.
        ws.install_golden(golden_key(&trace), &trace.node_outputs);
        let r = engine.resume_delta(&trace, 0, &[0, 1], &[9.0], None, &mut ws, |_| ());
        assert!(matches!(r, Err(DnnError::InvalidConfig { .. })));
    }

    #[test]
    fn golden_key_is_trace_instance_identity() {
        let engine = Engine::new(two_layer_net(), Precision::Fp32, &[]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        let t1 = engine.trace(std::slice::from_ref(&x)).unwrap();
        let t2 = engine.trace(std::slice::from_ref(&x)).unwrap();
        assert_eq!(golden_key(&t1), golden_key(&t1), "key must be stable");
        // Equal values, different buffers: different identity.
        assert_ne!(golden_key(&t1), golden_key(&t2));
    }

    #[test]
    fn sparse_and_union_region_geometry() {
        // Bounding box over scattered rank-4 offsets.
        let r = sparse_region(&[1, 2, 4, 5], &[7, 13]);
        // 7 -> (row 1, col 2); 13 -> (row 2, col 3).
        assert_eq!(
            r,
            Region::Window {
                h: (1, 3),
                w: (2, 4)
            }
        );
        assert_eq!(sparse_region(&[2, 10], &[3]), Region::All);
        assert_eq!(nonempty_region(sparse_region(&[1, 1, 4, 4], &[])), None);

        let w1 = Region::Window {
            h: (0, 2),
            w: (3, 4),
        };
        let w2 = Region::Window {
            h: (1, 3),
            w: (0, 1),
        };
        assert_eq!(
            union_region(Some(w1), w2),
            Region::Window {
                h: (0, 3),
                w: (0, 4)
            }
        );
        assert_eq!(union_region(None, w1), w1);
        assert_eq!(union_region(Some(Region::All), w2), Region::All);
        assert_eq!(union_region(Some(w1), Region::All), Region::All);
    }
}
