//! Software IEEE-754 binary16 ("half precision") implemented from scratch.
//!
//! NVDLA's FP16 datapath is the precision the paper validates against, so the
//! exact bit layout matters: a transient fault is a flip of one of these 16
//! bits, and whether it hits the sign, exponent, or mantissa determines the
//! perturbation magnitude (the paper's Key Result 5).

use std::fmt;

/// An IEEE-754 binary16 value stored as its raw 16 bits.
///
/// Layout: 1 sign bit (bit 15), 5 exponent bits (bits 14–10, bias 15),
/// 10 mantissa bits (bits 9–0).
///
/// # Examples
///
/// ```
/// use fidelity_dnn::f16::F16;
///
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// assert_eq!(x.to_bits(), 0x3E00);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A canonical quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);

    /// Number of storage bits.
    pub const BITS: u32 = 16;

    /// Reinterprets raw bits as an `F16`.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even, the IEEE default and
    /// what hardware convert units implement.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x7F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN. Preserve a NaN payload bit so NaN stays NaN.
            let payload = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload | ((mant >> 13) as u16 & 0x03FF));
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflows to infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. Round mantissa from 23 to 10 bits, RNE.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let shift = 13u32;
            let kept = (mant >> shift) as u16;
            let rem = mant & ((1 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | half_exp | kept;
            if rem > halfway || (rem == halfway && (kept & 1) == 1) {
                out = out.wrapping_add(1); // may carry into exponent: correct (rounds up to next binade / infinity)
            }
            return F16(out);
        }
        if unbiased >= -25 {
            // Subnormal range: implicit leading 1 becomes explicit, shifted.
            let full_mant = mant | 0x80_0000;
            let shift = (-(unbiased + 14) + 13) as u32;
            if shift >= 32 {
                return F16(sign);
            }
            let kept = (full_mant >> shift) as u16;
            let rem = full_mant & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | kept;
            if rem > halfway || (rem == halfway && (kept & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        // Underflows to signed zero.
        F16(sign)
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;

        let bits = if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // Subnormal: normalize.
                let mut m = mant;
                let mut e = -14i32;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            if mant == 0 {
                sign | 0x7F80_0000
            } else {
                sign | 0x7FC0_0000 | (mant << 13)
            }
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// True for positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True for any NaN pattern.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True when neither infinite nor NaN.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Returns this value with bit `bit` (0 = LSB, 15 = sign) flipped.
    ///
    /// This is the fundamental transient-fault primitive.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 16`.
    pub fn with_bit_flipped(self, bit: u32) -> Self {
        assert!(
            bit < Self::BITS,
            "bit index {bit} out of range for binary16"
        );
        F16(self.0 ^ (1 << bit))
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> Self {
        F16::from_f32(value)
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> Self {
        value.to_f32()
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({}; 0x{:04X})", self.to_f32(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Rounds an `f32` to the nearest representable binary16 value, returned as
/// `f32`. This is the "fake quantization" step applied after FP16 layers.
///
/// # Examples
///
/// ```
/// use fidelity_dnn::f16::round_to_f16;
///
/// assert_eq!(round_to_f16(1.0009765625), 1.0009765625); // exactly representable
/// assert_eq!(round_to_f16(100000.0), f32::INFINITY);    // overflows binary16
/// ```
pub fn round_to_f16(value: f32) -> f32 {
    F16::from_f32(value).to_f32()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(F16::from_f32(5.9604645e-8).to_bits(), 0x0001); // smallest subnormal
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(0.099975586).to_bits(), 0x2E66);
    }

    #[test]
    fn round_trip_exact_for_representable() {
        for bits in 0u16..=0xFFFF {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    F16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits 0x{bits:04X}"
                );
            }
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(70000.0).is_infinite());
        assert!(F16::from_f32(-70000.0).is_infinite());
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(F16::from_f32(1e-10).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-1e-10).to_bits(), 0x8000);
    }

    #[test]
    fn round_to_nearest_even() {
        // 2048.5 is exactly between 2048 and 2050 in binary16 (ulp=2 there);
        // RNE picks the even mantissa (2048).
        assert_eq!(round_to_f16(2049.0), 2048.0);
        assert_eq!(round_to_f16(2051.0), 2052.0);
    }

    #[test]
    fn bit_flip_examples() {
        // Sign-bit flip negates.
        let one = F16::from_f32(1.0);
        assert_eq!(one.with_bit_flipped(15).to_f32(), -1.0);
        // MSB-of-exponent flip on 1.0 jumps to 2^16 => overflow territory.
        let big = one.with_bit_flipped(14).to_f32();
        assert!(big > 60000.0);
        // LSB mantissa flip is a tiny perturbation.
        let tiny = one.with_bit_flipped(0).to_f32();
        assert!((tiny - 1.0).abs() < 0.001 && tiny != 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_flip_rejects_out_of_range() {
        let _ = F16::ONE.with_bit_flipped(16);
    }

    #[test]
    fn subnormal_round_trip() {
        // 2^-24 = smallest subnormal
        let v = 2f32.powi(-24);
        assert_eq!(F16::from_f32(v).to_bits(), 0x0001);
        assert_eq!(F16::from_bits(0x0001).to_f32(), v);
        // Largest subnormal: 0x03FF
        let big_sub = F16::from_bits(0x03FF).to_f32();
        assert!(big_sub < 2f32.powi(-14));
        assert_eq!(F16::from_f32(big_sub).to_bits(), 0x03FF);
    }
}
