//! # fidelity-dnn
//!
//! A from-scratch deep-neural-network inference substrate with first-class
//! fault-injection hooks, built as the software execution platform for the
//! FIdelity resilience-analysis framework (He, Balaprakash, Li — MICRO 2020).
//!
//! The crate provides:
//!
//! * [`tensor::Tensor`] — dense row-major tensors;
//! * [`f16::F16`] — bit-accurate software binary16;
//! * [`precision`] — precision codecs that define what a hardware bit flip
//!   does to a stored value (the injection surface);
//! * [`layers`] — convolution, fully-connected, matmul, pooling,
//!   activations, normalization, attention primitives, LSTM, embedding;
//! * [`macspec`] — the operand-to-neuron geometry of MAC layers used by the
//!   fault models;
//! * [`graph`] — network DAGs, precision-aware engines, and the
//!   trace/resume executor that makes software fault injection fast.
//!
//! ## Example
//!
//! ```
//! use fidelity_dnn::graph::{Engine, NetworkBuilder};
//! use fidelity_dnn::layers::{Activation, ActivationKind, Dense};
//! use fidelity_dnn::precision::Precision;
//! use fidelity_dnn::tensor::Tensor;
//!
//! # fn main() -> Result<(), fidelity_dnn::error::DnnError> {
//! let net = NetworkBuilder::new("mlp")
//!     .input("x")
//!     .layer(Dense::new("fc", Tensor::full(vec![4, 8], 0.1))?, &["x"])?
//!     .layer(Activation::new("relu", ActivationKind::Relu), &["fc"])?
//!     .build()?;
//! let engine = Engine::new(net, Precision::Fp16, &[])?;
//! let y = engine.forward(&[Tensor::full(vec![1, 8], 1.0)])?;
//! assert_eq!(y.shape(), &[1, 4]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod f16;
pub mod graph;
pub mod init;
pub mod layers;
pub mod macspec;
pub mod precision;
pub mod tensor;
pub mod workspace;

pub use error::DnnError;
pub use graph::{Engine, Network, NetworkBuilder, ResumedOutput, Trace};
pub use precision::{Precision, ValueCodec};
pub use tensor::Tensor;
pub use workspace::Workspace;
