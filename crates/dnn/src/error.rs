//! Error type shared across the inference substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor operations, layer construction, and graph
/// execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DnnError {
    /// Two shapes that had to agree did not.
    ShapeMismatch {
        /// Operation that detected the mismatch.
        context: &'static str,
        /// What was required.
        expected: String,
        /// What was seen.
        actual: String,
    },
    /// A layer or graph input name was referenced but never defined.
    UnknownName {
        /// The missing name.
        name: String,
    },
    /// Two graph nodes (or a node and a graph input) share a name.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// A layer received the wrong number of inputs.
    ArityMismatch {
        /// Layer name.
        layer: String,
        /// Required input count.
        expected: usize,
        /// Provided input count.
        actual: usize,
    },
    /// A configuration parameter was invalid (zero stride, empty kernel, ...).
    InvalidConfig {
        /// Human-readable description of the invalid parameter.
        message: String,
    },
    /// The graph contains a cycle or references a node defined later.
    NotTopological {
        /// Offending node name.
        name: String,
    },
    /// A fault-injection campaign failed for an operational reason that is
    /// not a fault outcome (failure budget exhausted, corrupt or mismatched
    /// checkpoint, ...).
    Campaign {
        /// Human-readable description of the campaign failure.
        message: String,
    },
    /// A cooperative execution deadline expired mid-run (the per-injection
    /// watchdog fired).
    DeadlineExceeded,
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::ShapeMismatch {
                context,
                expected,
                actual,
            } => write!(f, "{context}: expected {expected}, got {actual}"),
            DnnError::UnknownName { name } => write!(f, "unknown tensor or layer name `{name}`"),
            DnnError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            DnnError::ArityMismatch {
                layer,
                expected,
                actual,
            } => write!(f, "layer `{layer}` expects {expected} inputs, got {actual}"),
            DnnError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            DnnError::NotTopological { name } => {
                write!(f, "node `{name}` consumes a tensor defined after it")
            }
            DnnError::Campaign { message } => write!(f, "campaign failed: {message}"),
            DnnError::DeadlineExceeded => write!(f, "execution deadline exceeded"),
        }
    }
}

impl Error for DnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DnnError::UnknownName {
            name: "conv9".into(),
        };
        let s = e.to_string();
        assert!(s.contains("conv9"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnnError>();
    }
}
