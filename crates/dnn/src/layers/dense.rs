//! Fully-connected and matrix-multiplication layers.

use crate::error::DnnError;
use crate::layers::{check_arity, Layer, LayerKind};
use crate::macspec::{DenseSpec, MacSpec, MatMulSpec, Operands};
use crate::precision::ValueCodec;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// A fully-connected layer: `output[b][o] = Σ_i weight[o][i] · input[b][i]`.
///
/// # Examples
///
/// ```
/// use fidelity_dnn::layers::{Dense, Layer};
/// use fidelity_dnn::tensor::Tensor;
///
/// # fn main() -> Result<(), fidelity_dnn::error::DnnError> {
/// let w = Tensor::from_vec(vec![2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0])?;
/// let fc = Dense::new("fc", w)?;
/// let x = Tensor::from_vec(vec![1, 3], vec![7.0, 8.0, 9.0])?;
/// assert_eq!(fc.forward_alloc(&[&x])?.data(), &[7.0, 8.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    name: String,
    weight: Tensor,
}

impl Dense {
    /// Creates a fully-connected layer from a `[out_features, in_features]`
    /// weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] for a non-rank-2 or empty weight.
    pub fn new(name: impl Into<String>, weight: Tensor) -> Result<Self, DnnError> {
        if weight.rank() != 2 || weight.is_empty() {
            return Err(DnnError::InvalidConfig {
                message: format!(
                    "dense weight must be non-empty rank 2, got shape {:?}",
                    weight.shape()
                ),
            });
        }
        Ok(Dense {
            name: name.into(),
            weight,
        })
    }

    fn spec_for(&self, input_shape: &[usize]) -> Result<DenseSpec, DnnError> {
        if input_shape.len() != 2 {
            return Err(DnnError::ShapeMismatch {
                context: "Dense::forward",
                expected: "rank-2 [batch, features] input".into(),
                actual: format!("{input_shape:?}"),
            });
        }
        let w = self.weight.shape();
        if input_shape[1] != w[1] {
            return Err(DnnError::ShapeMismatch {
                context: "Dense::forward",
                expected: format!("{} input features", w[1]),
                actual: format!("{}", input_shape[1]),
            });
        }
        Ok(DenseSpec {
            batch: input_shape[0],
            in_features: w[1],
            out_features: w[0],
        })
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Dense
    }

    fn weights(&self) -> Vec<&Tensor> {
        vec![&self.weight]
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let d = self.spec_for(inputs[0].shape())?;
        let dims = [d.batch, d.out_features];
        let spec = MacSpec::Dense(d);
        let ops = Operands {
            input: inputs[0],
            weight: &self.weight,
        };
        let mut out = ws.zeros(&dims);
        let tier = ws.mac_tier();
        spec.forward_tier_into_scratch(&ops, out.data_mut(), ws.kernel_scratch(), tier);
        Ok(out)
    }

    fn mac_spec(&self, input_shapes: &[&[usize]]) -> Option<MacSpec> {
        input_shapes
            .first()
            .and_then(|s| self.spec_for(s).ok())
            .map(MacSpec::Dense)
    }

    fn quantize_weights(&mut self, codec: &ValueCodec) {
        self.weight.map_inplace(|v| codec.quantize(v));
    }
}

/// A two-input matrix multiplication `A·B` (or `A·Bᵀ`), the attention
/// primitive of Transformer workloads.
///
/// Accepts rank-2 operands, or rank-3 operands with equal leading batch
/// dimensions.
#[derive(Debug, Clone)]
pub struct MatMul {
    name: String,
    transpose_b: bool,
}

impl MatMul {
    /// Creates `A·B`.
    pub fn new(name: impl Into<String>) -> Self {
        MatMul {
            name: name.into(),
            transpose_b: false,
        }
    }

    /// Creates `A·Bᵀ` (scores = `Q·Kᵀ` in attention).
    pub fn transposed(name: impl Into<String>) -> Self {
        MatMul {
            name: name.into(),
            transpose_b: true,
        }
    }

    fn spec_for(&self, a: &[usize], b: &[usize]) -> Result<MatMulSpec, DnnError> {
        let mismatch = |actual: String| DnnError::ShapeMismatch {
            context: "MatMul::forward",
            expected: "compatible matmul operands".into(),
            actual,
        };
        let (batch, m, ka) = match a.len() {
            2 => (1, a[0], a[1]),
            3 => (a[0], a[1], a[2]),
            _ => return Err(mismatch(format!("A rank {}", a.len()))),
        };
        let (bb, d0, d1) = match b.len() {
            2 => (1, b[0], b[1]),
            3 => (b[0], b[1], b[2]),
            _ => return Err(mismatch(format!("B rank {}", b.len()))),
        };
        if bb != batch {
            return Err(mismatch(format!("batch {batch} vs {bb}")));
        }
        let (kb, n) = if self.transpose_b { (d1, d0) } else { (d0, d1) };
        if ka != kb {
            return Err(mismatch(format!("contraction {ka} vs {kb}")));
        }
        Ok(MatMulSpec {
            batch,
            m,
            k: ka,
            n,
            transpose_b: self.transpose_b,
        })
    }
}

impl Layer for MatMul {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::MatMul
    }

    fn arity(&self) -> Option<usize> {
        Some(2)
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 2, inputs.len())?;
        let m = self.spec_for(inputs[0].shape(), inputs[1].shape())?;
        let dims3 = [m.batch, m.m, m.n];
        let dims: &[usize] = if m.batch == 1 {
            &dims3[1..]
        } else {
            &dims3[..]
        };
        let spec = MacSpec::MatMul(m);
        let ops = Operands {
            input: inputs[0],
            weight: inputs[1],
        };
        let mut out = ws.zeros(dims);
        let tier = ws.mac_tier();
        spec.forward_tier_into_scratch(&ops, out.data_mut(), ws.kernel_scratch(), tier);
        Ok(out)
    }

    fn mac_spec(&self, input_shapes: &[&[usize]]) -> Option<MacSpec> {
        if input_shapes.len() != 2 {
            return None;
        }
        self.spec_for(input_shapes[0], input_shapes[1])
            .ok()
            .map(MacSpec::MatMul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matches_manual() {
        let w = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let fc = Dense::new("fc", w).unwrap();
        let x = Tensor::from_vec(vec![2, 2], vec![1.0, 1.0, 2.0, 0.0]).unwrap();
        let y = fc.forward_alloc(&[&x]).unwrap();
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.data(), &[3.0, 7.0, 2.0, 6.0]);
    }

    #[test]
    fn dense_rejects_feature_mismatch() {
        let fc = Dense::new("fc", Tensor::zeros(vec![2, 3])).unwrap();
        assert!(fc.forward_alloc(&[&Tensor::zeros(vec![1, 4])]).is_err());
    }

    #[test]
    fn matmul_2d() {
        let mm = MatMul::new("mm");
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let y = mm.forward_alloc(&[&a, &b]).unwrap();
        assert_eq!(y.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_batched() {
        let mm = MatMul::new("mm");
        let a = Tensor::from_vec(vec![2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 2, 1], vec![1.0, 1.0, 2.0, 2.0]).unwrap();
        let y = mm.forward_alloc(&[&a, &b]).unwrap();
        assert_eq!(y.shape(), &[2, 1, 1]);
        assert_eq!(y.data(), &[3.0, 14.0]);
    }

    #[test]
    fn matmul_transposed_matches_plain() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let bt = Tensor::from_vec(vec![2, 2], vec![5.0, 7.0, 6.0, 8.0]).unwrap();
        let plain = MatMul::new("p").forward_alloc(&[&a, &b]).unwrap();
        let trans = MatMul::transposed("t").forward_alloc(&[&a, &bt]).unwrap();
        assert_eq!(plain.data(), trans.data());
    }

    #[test]
    fn matmul_rejects_contraction_mismatch() {
        let mm = MatMul::new("mm");
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        assert!(mm.forward_alloc(&[&a, &b]).is_err());
    }
}
