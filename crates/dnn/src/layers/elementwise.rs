//! Element-wise arithmetic, bias addition, and concatenation.

use crate::error::DnnError;
use crate::layers::{check_arity, Layer, LayerKind};
use crate::precision::ValueCodec;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Bias addition.
///
/// For rank-4 inputs the bias is per channel (`[c]`); for rank 2/3 it is per
/// last-dimension feature.
///
/// # Examples
///
/// ```
/// use fidelity_dnn::layers::{BiasAdd, Layer};
/// use fidelity_dnn::tensor::Tensor;
///
/// # fn main() -> Result<(), fidelity_dnn::error::DnnError> {
/// let bias = BiasAdd::new("b", Tensor::from_slice(&[1.0, -1.0]))?;
/// let x = Tensor::from_vec(vec![1, 2], vec![10.0, 10.0])?;
/// assert_eq!(bias.forward_alloc(&[&x])?.data(), &[11.0, 9.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BiasAdd {
    name: String,
    bias: Tensor,
}

impl BiasAdd {
    /// Creates a bias layer from a rank-1 bias vector.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] for a non-rank-1 or empty bias.
    pub fn new(name: impl Into<String>, bias: Tensor) -> Result<Self, DnnError> {
        if bias.rank() != 1 || bias.is_empty() {
            return Err(DnnError::InvalidConfig {
                message: format!("bias must be non-empty rank 1, got {:?}", bias.shape()),
            });
        }
        Ok(BiasAdd {
            name: name.into(),
            bias,
        })
    }
}

impl Layer for BiasAdd {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Bias
    }

    fn weights(&self) -> Vec<&Tensor> {
        vec![&self.bias]
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        let n = self.bias.len();
        let mut out = ws.clone_of(x);
        match x.rank() {
            4 => {
                let (c, h, w) = (x.shape()[1], x.shape()[2], x.shape()[3]);
                if c != n {
                    return Err(DnnError::ShapeMismatch {
                        context: "BiasAdd::forward",
                        expected: format!("{n} channels"),
                        actual: format!("{c}"),
                    });
                }
                let hw = h * w;
                for (off, v) in out.data_mut().iter_mut().enumerate() {
                    let ch = (off / hw) % c;
                    *v += self.bias.data()[ch];
                }
            }
            2 | 3 => {
                let last = *x.shape().last().expect("rank >= 2");
                if last != n {
                    return Err(DnnError::ShapeMismatch {
                        context: "BiasAdd::forward",
                        expected: format!("{n} features"),
                        actual: format!("{last}"),
                    });
                }
                for (off, v) in out.data_mut().iter_mut().enumerate() {
                    *v += self.bias.data()[off % last];
                }
            }
            r => {
                return Err(DnnError::ShapeMismatch {
                    context: "BiasAdd::forward",
                    expected: "rank 2, 3 or 4 input".into(),
                    actual: format!("rank {r}"),
                })
            }
        }
        Ok(out)
    }

    fn quantize_weights(&mut self, codec: &ValueCodec) {
        self.bias.map_inplace(|v| codec.quantize(v));
    }

    fn region_map(
        &self,
        input_shapes: &[&[usize]],
        h: (usize, usize),
        w: (usize, usize),
    ) -> Option<((usize, usize), (usize, usize))> {
        (input_shapes.first()?.len() == 4).then_some((h, w))
    }

    fn forward_region(
        &self,
        inputs: &[&Tensor],
        h: (usize, usize),
        w: (usize, usize),
        out: &mut Tensor,
        ws: &mut Workspace,
    ) -> Result<bool, DnnError> {
        let _ = ws;
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        if x.rank() != 4 || out.shape() != x.shape() || x.shape()[1] != self.bias.len() {
            return Ok(false);
        }
        let hw = x.shape()[2] * x.shape()[3];
        let c = x.shape()[1];
        let src = x.data();
        let bias = self.bias.data();
        let dst = out.data_mut();
        crate::layers::for_each_window_row(x.shape(), h, w, |a, b| {
            let ch = (a / hw) % c;
            let bv = bias[ch];
            for (d, s) in dst[a..b].iter_mut().zip(&src[a..b]) {
                *d = s + bv;
            }
        });
        Ok(true)
    }
}

/// Element-wise addition of two equal-shaped tensors (residual connections).
#[derive(Debug, Clone)]
pub struct Add {
    name: String,
}

impl Add {
    /// Creates an addition layer.
    pub fn new(name: impl Into<String>) -> Self {
        Add { name: name.into() }
    }
}

impl Layer for Add {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Elementwise
    }

    fn arity(&self) -> Option<usize> {
        Some(2)
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 2, inputs.len())?;
        binary_elementwise(inputs[0], inputs[1], "Add::forward", ws, |a, b| a + b)
    }

    fn region_map(
        &self,
        input_shapes: &[&[usize]],
        h: (usize, usize),
        w: (usize, usize),
    ) -> Option<((usize, usize), (usize, usize))> {
        (input_shapes.first()?.len() == 4).then_some((h, w))
    }

    fn forward_region(
        &self,
        inputs: &[&Tensor],
        h: (usize, usize),
        w: (usize, usize),
        out: &mut Tensor,
        ws: &mut Workspace,
    ) -> Result<bool, DnnError> {
        let _ = ws;
        check_arity(&self.name, 2, inputs.len())?;
        binary_elementwise_region(inputs[0], inputs[1], h, w, out, |a, b| a + b)
    }
}

/// Element-wise multiplication of two equal-shaped tensors (LSTM gating).
#[derive(Debug, Clone)]
pub struct Mul {
    name: String,
}

impl Mul {
    /// Creates a multiplication layer.
    pub fn new(name: impl Into<String>) -> Self {
        Mul { name: name.into() }
    }
}

impl Layer for Mul {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Elementwise
    }

    fn arity(&self) -> Option<usize> {
        Some(2)
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 2, inputs.len())?;
        binary_elementwise(inputs[0], inputs[1], "Mul::forward", ws, |a, b| a * b)
    }

    fn region_map(
        &self,
        input_shapes: &[&[usize]],
        h: (usize, usize),
        w: (usize, usize),
    ) -> Option<((usize, usize), (usize, usize))> {
        (input_shapes.first()?.len() == 4).then_some((h, w))
    }

    fn forward_region(
        &self,
        inputs: &[&Tensor],
        h: (usize, usize),
        w: (usize, usize),
        out: &mut Tensor,
        ws: &mut Workspace,
    ) -> Result<bool, DnnError> {
        let _ = ws;
        check_arity(&self.name, 2, inputs.len())?;
        binary_elementwise_region(inputs[0], inputs[1], h, w, out, |a, b| a * b)
    }
}

/// Windowed counterpart of [`binary_elementwise`] for rank-4 operands.
fn binary_elementwise_region(
    a: &Tensor,
    b: &Tensor,
    h: (usize, usize),
    w: (usize, usize),
    out: &mut Tensor,
    f: impl Fn(f32, f32) -> f32,
) -> Result<bool, DnnError> {
    if a.rank() != 4 || a.shape() != b.shape() || out.shape() != a.shape() {
        return Ok(false);
    }
    let ad = a.data();
    let bd = b.data();
    let dst = out.data_mut();
    crate::layers::for_each_window_row(a.shape(), h, w, |lo, hi| {
        for i in lo..hi {
            dst[i] = f(ad[i], bd[i]);
        }
    });
    Ok(true)
}

fn binary_elementwise(
    a: &Tensor,
    b: &Tensor,
    context: &'static str,
    ws: &mut Workspace,
    f: impl Fn(f32, f32) -> f32,
) -> Result<Tensor, DnnError> {
    if a.shape() != b.shape() {
        return Err(DnnError::ShapeMismatch {
            context,
            expected: format!("{:?}", a.shape()),
            actual: format!("{:?}", b.shape()),
        });
    }
    let mut out = ws.clone_of(a);
    for (v, &bv) in out.data_mut().iter_mut().zip(b.data()) {
        *v = f(*v, bv);
    }
    Ok(out)
}

/// Multiplication by a compile-time constant (attention `1/√d` scaling).
#[derive(Debug, Clone)]
pub struct Scale {
    name: String,
    factor: f32,
}

impl Scale {
    /// Creates a constant-scale layer.
    pub fn new(name: impl Into<String>, factor: f32) -> Self {
        Scale {
            name: name.into(),
            factor,
        }
    }
}

impl Layer for Scale {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Elementwise
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let mut out = ws.clone_of(inputs[0]);
        out.map_inplace(|v| v * self.factor);
        Ok(out)
    }

    fn region_map(
        &self,
        input_shapes: &[&[usize]],
        h: (usize, usize),
        w: (usize, usize),
    ) -> Option<((usize, usize), (usize, usize))> {
        (input_shapes.first()?.len() == 4).then_some((h, w))
    }

    fn forward_region(
        &self,
        inputs: &[&Tensor],
        h: (usize, usize),
        w: (usize, usize),
        out: &mut Tensor,
        ws: &mut Workspace,
    ) -> Result<bool, DnnError> {
        let _ = ws;
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        if x.rank() != 4 || out.shape() != x.shape() {
            return Ok(false);
        }
        let src = x.data();
        let dst = out.data_mut();
        crate::layers::for_each_window_row(x.shape(), h, w, |a, b| {
            for (d, s) in dst[a..b].iter_mut().zip(&src[a..b]) {
                *d = s * self.factor;
            }
        });
        Ok(true)
    }
}

/// Concatenation along a given axis (inception modules, Yolo routes).
#[derive(Debug, Clone)]
pub struct Concat {
    name: String,
    axis: usize,
}

impl Concat {
    /// Creates a concatenation layer along `axis`.
    pub fn new(name: impl Into<String>, axis: usize) -> Self {
        Concat {
            name: name.into(),
            axis,
        }
    }
}

impl Layer for Concat {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Elementwise
    }

    fn arity(&self) -> Option<usize> {
        None // variadic
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        if inputs.is_empty() {
            return Err(DnnError::ArityMismatch {
                layer: self.name.clone(),
                expected: 1,
                actual: 0,
            });
        }
        let rank = inputs[0].rank();
        if self.axis >= rank {
            return Err(DnnError::InvalidConfig {
                message: format!("concat axis {} out of range for rank {rank}", self.axis),
            });
        }
        let mut out_shape = ws.shape_vec(inputs[0].shape());
        for t in &inputs[1..] {
            if t.rank() != rank {
                return Err(DnnError::ShapeMismatch {
                    context: "Concat::forward",
                    expected: format!("rank {rank}"),
                    actual: format!("rank {}", t.rank()),
                });
            }
            for (d, (&a, &b)) in out_shape.iter().zip(t.shape()).enumerate() {
                if d != self.axis && a != b {
                    return Err(DnnError::ShapeMismatch {
                        context: "Concat::forward",
                        expected: format!("dim {d} = {a}"),
                        actual: format!("{b}"),
                    });
                }
            }
            out_shape[self.axis] += t.shape()[self.axis];
        }

        let outer: usize = out_shape[..self.axis].iter().product();
        let inner: usize = out_shape[self.axis + 1..].iter().product();
        let mut out = ws.zeros(&out_shape);
        let mut axis_off = 0usize;
        for t in inputs {
            let t_axis = t.shape()[self.axis];
            for o in 0..outer {
                let src = &t.data()[o * t_axis * inner..(o + 1) * t_axis * inner];
                let dst_start = (o * out_shape[self.axis] + axis_off) * inner;
                out.data_mut()[dst_start..dst_start + t_axis * inner].copy_from_slice(src);
            }
            axis_off += t_axis;
        }
        ws.recycle_shape(out_shape);
        Ok(out)
    }

    fn values_preserved(&self) -> bool {
        true // pure data movement
    }

    fn region_map(
        &self,
        input_shapes: &[&[usize]],
        h: (usize, usize),
        w: (usize, usize),
    ) -> Option<((usize, usize), (usize, usize))> {
        // Channel concat of NCHW tensors preserves spatial coordinates, so
        // the output window is the input window. Other axes reshuffle flat
        // layout and fall back to a full recompute.
        (self.axis == 1 && input_shapes.first()?.len() == 4).then_some((h, w))
    }

    fn forward_region(
        &self,
        inputs: &[&Tensor],
        (h0, h1): (usize, usize),
        (w0, w1): (usize, usize),
        out: &mut Tensor,
        ws: &mut Workspace,
    ) -> Result<bool, DnnError> {
        let _ = ws;
        if self.axis != 1 || inputs.is_empty() {
            return Ok(false);
        }
        let s0 = inputs[0].shape();
        if s0.len() != 4 {
            return Ok(false);
        }
        let (bb, hh, ww) = (s0[0], s0[2], s0[3]);
        let mut total_c = 0usize;
        for t in inputs {
            let s = t.shape();
            if s.len() != 4 || s[0] != bb || s[2] != hh || s[3] != ww {
                return Ok(false);
            }
            total_c += s[1];
        }
        if out.shape() != [bb, total_c, hh, ww] {
            return Ok(false);
        }
        let (h0, h1) = (h0.min(hh), h1.min(hh));
        let (w0, w1) = (w0.min(ww), w1.min(ww));
        if h0 >= h1 || w0 >= w1 {
            return Ok(true); // empty window: nothing to move
        }
        let od = out.data_mut();
        let mut c_off = 0usize;
        for t in inputs {
            let tc = t.shape()[1];
            let td = t.data();
            for n in 0..bb {
                for ch in 0..tc {
                    let src_plane = (n * tc + ch) * hh * ww;
                    let dst_plane = (n * total_c + c_off + ch) * hh * ww;
                    for r in h0..h1 {
                        let s = src_plane + r * ww;
                        let d = dst_plane + r * ww;
                        od[d + w0..d + w1].copy_from_slice(&td[s + w0..s + w1]);
                    }
                }
            }
            c_off += tc;
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_add_4d_per_channel() {
        let bias = BiasAdd::new("b", Tensor::from_slice(&[1.0, 2.0])).unwrap();
        let x = Tensor::zeros(vec![1, 2, 2, 2]);
        let y = bias.forward_alloc(&[&x]).unwrap();
        assert_eq!(y.at4(0, 0, 1, 1), 1.0);
        assert_eq!(y.at4(0, 1, 0, 0), 2.0);
    }

    #[test]
    fn bias_add_rejects_mismatch() {
        let bias = BiasAdd::new("b", Tensor::from_slice(&[1.0, 2.0])).unwrap();
        assert!(bias
            .forward_alloc(&[&Tensor::zeros(vec![1, 3, 2, 2])])
            .is_err());
        assert!(bias.forward_alloc(&[&Tensor::zeros(vec![1, 3])]).is_err());
    }

    #[test]
    fn add_and_mul() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(
            Add::new("a").forward_alloc(&[&a, &b]).unwrap().data(),
            &[4.0, 6.0]
        );
        assert_eq!(
            Mul::new("m").forward_alloc(&[&a, &b]).unwrap().data(),
            &[3.0, 8.0]
        );
        let c = Tensor::from_slice(&[1.0]);
        assert!(Add::new("a").forward_alloc(&[&a, &c]).is_err());
    }

    #[test]
    fn concat_channels() {
        let a = Tensor::full(vec![1, 1, 2, 2], 1.0);
        let b = Tensor::full(vec![1, 2, 2, 2], 2.0);
        let y = Concat::new("c", 1).forward_alloc(&[&a, &b]).unwrap();
        assert_eq!(y.shape(), &[1, 3, 2, 2]);
        assert_eq!(y.at4(0, 0, 0, 0), 1.0);
        assert_eq!(y.at4(0, 1, 0, 0), 2.0);
        assert_eq!(y.at4(0, 2, 1, 1), 2.0);
    }

    #[test]
    fn concat_last_axis() {
        let a = Tensor::from_vec(vec![2, 1], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = Concat::new("c", 1).forward_alloc(&[&a, &b]).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_validates() {
        let a = Tensor::zeros(vec![1, 2]);
        let b = Tensor::zeros(vec![2, 2]);
        assert!(Concat::new("c", 1).forward_alloc(&[&a, &b]).is_err());
        assert!(Concat::new("c", 5).forward_alloc(&[&a]).is_err());
        assert!(Concat::new("c", 0).forward_alloc(&[]).is_err());
    }

    #[test]
    fn scale_scales() {
        let s = Scale::new("s", 0.5);
        let x = Tensor::from_slice(&[4.0]);
        assert_eq!(s.forward_alloc(&[&x]).unwrap().data(), &[2.0]);
    }
}
