//! Pointwise non-linearities and softmax.

use crate::error::DnnError;
use crate::layers::{check_arity, Layer, LayerKind};
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// The supported pointwise non-linearities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// `x` for `x > 0`, else `alpha·x` (Yolo-style).
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// ReLU clipped at 6 (MobileNet-style).
    Relu6,
}

impl ActivationKind {
    /// Applies the non-linearity to one value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::LeakyRelu(alpha) => {
                if x > 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Relu6 => x.clamp(0.0, 6.0),
        }
    }
}

/// A pointwise activation layer.
///
/// # Examples
///
/// ```
/// use fidelity_dnn::layers::{Activation, ActivationKind, Layer};
/// use fidelity_dnn::tensor::Tensor;
///
/// let relu = Activation::new("relu", ActivationKind::Relu);
/// let x = Tensor::from_slice(&[-1.0, 2.0]);
/// assert_eq!(relu.forward_alloc(&[&x]).unwrap().data(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Activation {
    name: String,
    kind: ActivationKind,
}

impl Activation {
    /// Creates an activation layer.
    pub fn new(name: impl Into<String>, kind: ActivationKind) -> Self {
        Activation {
            name: name.into(),
            kind,
        }
    }

    /// The configured non-linearity.
    pub fn activation_kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Layer for Activation {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Activation
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let mut out = ws.clone_of(inputs[0]);
        out.map_inplace(|v| self.kind.apply(v));
        Ok(out)
    }

    fn values_preserved(&self) -> bool {
        // Only ReLU passes inputs through unchanged (or emits zero). Relu6's
        // 6.0 clip and LeakyRelu's scaled slope produce values that need not
        // lie on an integer codec's grid.
        matches!(self.kind, ActivationKind::Relu)
    }

    fn region_map(
        &self,
        input_shapes: &[&[usize]],
        h: (usize, usize),
        w: (usize, usize),
    ) -> Option<((usize, usize), (usize, usize))> {
        // Pointwise: the output window is exactly the input window.
        (input_shapes.first()?.len() == 4).then_some((h, w))
    }

    fn forward_region(
        &self,
        inputs: &[&Tensor],
        h: (usize, usize),
        w: (usize, usize),
        out: &mut Tensor,
        ws: &mut Workspace,
    ) -> Result<bool, DnnError> {
        let _ = ws;
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        if x.rank() != 4 || out.shape() != x.shape() {
            return Ok(false);
        }
        let src = x.data();
        let dst = out.data_mut();
        crate::layers::for_each_window_row(x.shape(), h, w, |a, b| {
            for (d, s) in dst[a..b].iter_mut().zip(&src[a..b]) {
                *d = self.kind.apply(*s);
            }
        });
        Ok(true)
    }
}

/// Softmax over the last dimension, computed with the max-subtraction trick
/// for numerical stability.
#[derive(Debug, Clone)]
pub struct Softmax {
    name: String,
}

impl Softmax {
    /// Creates a softmax layer.
    pub fn new(name: impl Into<String>) -> Self {
        Softmax { name: name.into() }
    }
}

impl Layer for Softmax {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Softmax
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        let last = *x.shape().last().unwrap_or(&1);
        if last == 0 {
            return Ok(ws.clone_of(x));
        }
        let mut out = ws.clone_of(x);
        let rows = x.len() / last;
        for r in 0..rows {
            let row = &mut out.data_mut()[r * last..(r + 1) * last];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 && sum.is_finite() {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_kinds() {
        assert_eq!(ActivationKind::Relu.apply(-3.0), 0.0);
        assert_eq!(ActivationKind::LeakyRelu(0.1).apply(-3.0), -0.3);
        assert_eq!(ActivationKind::Relu6.apply(9.0), 6.0);
        assert!((ActivationKind::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((ActivationKind::Tanh.apply(0.0)).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let sm = Softmax::new("sm");
        let x = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let y = sm.forward_alloc(&[&x]).unwrap();
        for r in 0..2 {
            let s: f32 = (0..3).map(|c| y.at2(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Monotone: larger logits get larger probabilities.
        assert!(y.at2(0, 2) > y.at2(0, 1));
    }

    #[test]
    fn softmax_survives_large_values() {
        let sm = Softmax::new("sm");
        let x = Tensor::from_vec(vec![1, 2], vec![10000.0, 9999.0]).unwrap();
        let y = sm.forward_alloc(&[&x]).unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert!(y.at2(0, 0) > y.at2(0, 1));
    }
}
