//! Layer implementations and the [`Layer`] trait.
//!
//! MAC layers (convolution, fully-connected, matrix multiplication) expose a
//! [`MacSpec`] so the fault-injection engine can map operand elements to
//! output neurons and recompute individual neurons with substituted faulty
//! values.

mod activation;
mod conv;
mod dense;
mod elementwise;
mod embedding;
mod norm;
mod pool;
mod recurrent;
mod shape_ops;

pub use activation::{Activation, ActivationKind, Softmax};
pub use conv::Conv2d;
pub use dense::{Dense, MatMul};
pub use elementwise::{Add, BiasAdd, Concat, Mul, Scale};
pub use embedding::Embedding;
pub use norm::{LayerNorm, ScaleShift};
pub use pool::{GlobalAvgPool, Pool2d, PoolKind};
pub use recurrent::Lstm;
pub use shape_ops::{Flatten, Reshape, Slice, Transpose2d};

use crate::error::DnnError;
use crate::macspec::MacSpec;
use crate::precision::ValueCodec;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Broad family of a layer, used by the resilience framework to decide which
/// software fault models apply and by the performance model to cost layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LayerKind {
    /// 2-D convolution (MAC layer).
    Conv,
    /// Fully-connected (MAC layer).
    Dense,
    /// Matrix multiplication (MAC layer).
    MatMul,
    /// Bias addition.
    Bias,
    /// Pointwise non-linearity.
    Activation,
    /// Softmax.
    Softmax,
    /// Spatial pooling.
    Pool,
    /// Normalization (batch-norm fold, layer-norm).
    Norm,
    /// Element-wise arithmetic / concatenation.
    Elementwise,
    /// Embedding lookup.
    Embedding,
    /// Recurrent cell.
    Recurrent,
    /// Pure data-movement (reshape, flatten, slice, transpose).
    Shape,
}

impl LayerKind {
    /// Whether the layer family performs multiply-accumulate computation on
    /// the accelerator's MAC array (the layers of Table II).
    pub fn is_mac(self) -> bool {
        matches!(self, LayerKind::Conv | LayerKind::Dense | LayerKind::MatMul)
    }
}

/// A network layer.
///
/// Layers are immutable during inference; weights can be quantized once via
/// [`Layer::quantize_weights`] when an engine is prepared for a reduced
/// precision.
pub trait Layer: Send + Sync {
    /// Unique layer name within its network.
    fn name(&self) -> &str;

    /// Layer family.
    fn kind(&self) -> LayerKind;

    /// Number of input tensors the layer consumes, or `None` when variadic.
    fn arity(&self) -> Option<usize> {
        Some(1)
    }

    /// The layer's weight tensors (empty for weightless layers).
    fn weights(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Runs the layer, drawing the output tensor and any temporaries from
    /// `ws` so hot loops (campaign injections) never touch the global
    /// allocator in steady state. Pooling never affects values — outputs are
    /// bit-identical to an allocating run.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError`] when input shapes are incompatible with the
    /// layer's configuration.
    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError>;

    /// Runs the layer with a throwaway workspace — the convenient form for
    /// one-off calls and tests, where allocation cost is irrelevant.
    ///
    /// # Errors
    ///
    /// Same contract as [`Layer::forward`].
    fn forward_alloc(&self, inputs: &[&Tensor]) -> Result<Tensor, DnnError> {
        let mut ws = Workspace::new();
        self.forward(inputs, &mut ws)
    }

    /// MAC geometry for this layer given its input shapes, when the layer is
    /// a MAC layer.
    fn mac_spec(&self, input_shapes: &[&[usize]]) -> Option<MacSpec> {
        let _ = input_shapes;
        None
    }

    /// Whether every output element is bitwise one of the input elements or
    /// `+0.0` (for any inputs and shapes). For such layers re-quantization is
    /// a no-op whenever the inputs already lie on the consumer codec's grid:
    /// grids are closed under round-to-grid, and `+0.0` quantizes to itself
    /// under every codec. The engine uses this to skip the per-element
    /// quantize pass on data-movement and selection layers (concat, reshape,
    /// max-pool, ReLU) when producer and consumer codecs are equal.
    ///
    /// Only return `true` when the property holds for *all* inputs, including
    /// non-finite values: a max-pool window of NaNs yields `-inf`, which is
    /// on the binary16 grid, and integer grids cannot contain non-finite
    /// inputs in the first place.
    fn values_preserved(&self) -> bool {
        false
    }

    /// Rounds the layer's weights onto the codec's representable grid.
    ///
    /// Engines call this once when preparing a reduced-precision deployment,
    /// mirroring post-training quantization of a trained model.
    fn quantize_weights(&mut self, codec: &ValueCodec) {
        let _ = codec;
    }

    /// Number of multiply-accumulate operations for the given inputs
    /// (0 for non-MAC layers).
    fn macs(&self, input_shapes: &[&[usize]]) -> u64 {
        self.mac_spec(input_shapes).map_or(0, |s| s.macs())
    }

    /// Maps a spatial window of the layer's inputs to the (conservative
    /// superset) window of outputs that can depend on it, for layers whose
    /// inputs and output are rank-4 NCHW and whose dataflow is spatially
    /// local. `h`/`w` are half-open `[lo, hi)` row/column ranges shared by
    /// every input (multi-input layers that support regions have equal
    /// spatial dims across inputs).
    ///
    /// `None` (the default) means "no spatial locality": a changed input
    /// window may affect the whole output, and the delta resume path falls
    /// back to a full recompute of this layer.
    fn region_map(
        &self,
        input_shapes: &[&[usize]],
        h: (usize, usize),
        w: (usize, usize),
    ) -> Option<((usize, usize), (usize, usize))> {
        let _ = (input_shapes, h, w);
        None
    }

    /// Recomputes only the output elements in the spatial window `h × w`
    /// (all batches and channels), writing them into `out` and leaving every
    /// other element untouched. Returns `Ok(false)` — without writing — when
    /// the layer does not support windowed recomputation; the caller then
    /// falls back to a full [`Layer::forward`].
    ///
    /// Implementations must produce values byte-identical to what
    /// [`Layer::forward`] would place at the same offsets.
    ///
    /// # Errors
    ///
    /// Same contract as [`Layer::forward`].
    fn forward_region(
        &self,
        inputs: &[&Tensor],
        h: (usize, usize),
        w: (usize, usize),
        out: &mut Tensor,
        ws: &mut Workspace,
    ) -> Result<bool, DnnError> {
        let _ = (inputs, h, w, out, ws);
        Ok(false)
    }
}

/// Calls `f(start, end)` with the flat index range of each spatial row
/// segment in the window `h × w` of a rank-4 NCHW tensor, for every batch
/// and channel. Ranges are clamped to the shape; an empty window calls `f`
/// zero times.
pub(crate) fn for_each_window_row(
    shape: &[usize],
    (h0, h1): (usize, usize),
    (w0, w1): (usize, usize),
    mut f: impl FnMut(usize, usize),
) {
    debug_assert_eq!(shape.len(), 4);
    let (planes, hh, ww) = (shape[0] * shape[1], shape[2], shape[3]);
    let (h0, h1) = (h0.min(hh), h1.min(hh));
    let (w0, w1) = (w0.min(ww), w1.min(ww));
    if h0 >= h1 || w0 >= w1 {
        return;
    }
    for plane in 0..planes {
        let base = plane * hh * ww;
        for r in h0..h1 {
            let row = base + r * ww;
            f(row + w0, row + w1);
        }
    }
}

pub(crate) fn check_arity(layer: &str, expected: usize, actual: usize) -> Result<(), DnnError> {
    if expected != actual {
        return Err(DnnError::ArityMismatch {
            layer: layer.to_owned(),
            expected,
            actual,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_kinds() {
        assert!(LayerKind::Conv.is_mac());
        assert!(LayerKind::Dense.is_mac());
        assert!(LayerKind::MatMul.is_mac());
        assert!(!LayerKind::Pool.is_mac());
        assert!(!LayerKind::Bias.is_mac());
    }
}
