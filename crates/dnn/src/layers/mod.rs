//! Layer implementations and the [`Layer`] trait.
//!
//! MAC layers (convolution, fully-connected, matrix multiplication) expose a
//! [`MacSpec`] so the fault-injection engine can map operand elements to
//! output neurons and recompute individual neurons with substituted faulty
//! values.

mod activation;
mod conv;
mod dense;
mod elementwise;
mod embedding;
mod norm;
mod pool;
mod recurrent;
mod shape_ops;

pub use activation::{Activation, ActivationKind, Softmax};
pub use conv::Conv2d;
pub use dense::{Dense, MatMul};
pub use elementwise::{Add, BiasAdd, Concat, Mul, Scale};
pub use embedding::Embedding;
pub use norm::{LayerNorm, ScaleShift};
pub use pool::{GlobalAvgPool, Pool2d, PoolKind};
pub use recurrent::Lstm;
pub use shape_ops::{Flatten, Reshape, Slice, Transpose2d};

use crate::error::DnnError;
use crate::macspec::MacSpec;
use crate::precision::ValueCodec;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Broad family of a layer, used by the resilience framework to decide which
/// software fault models apply and by the performance model to cost layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LayerKind {
    /// 2-D convolution (MAC layer).
    Conv,
    /// Fully-connected (MAC layer).
    Dense,
    /// Matrix multiplication (MAC layer).
    MatMul,
    /// Bias addition.
    Bias,
    /// Pointwise non-linearity.
    Activation,
    /// Softmax.
    Softmax,
    /// Spatial pooling.
    Pool,
    /// Normalization (batch-norm fold, layer-norm).
    Norm,
    /// Element-wise arithmetic / concatenation.
    Elementwise,
    /// Embedding lookup.
    Embedding,
    /// Recurrent cell.
    Recurrent,
    /// Pure data-movement (reshape, flatten, slice, transpose).
    Shape,
}

impl LayerKind {
    /// Whether the layer family performs multiply-accumulate computation on
    /// the accelerator's MAC array (the layers of Table II).
    pub fn is_mac(self) -> bool {
        matches!(self, LayerKind::Conv | LayerKind::Dense | LayerKind::MatMul)
    }
}

/// A network layer.
///
/// Layers are immutable during inference; weights can be quantized once via
/// [`Layer::quantize_weights`] when an engine is prepared for a reduced
/// precision.
pub trait Layer: Send + Sync {
    /// Unique layer name within its network.
    fn name(&self) -> &str;

    /// Layer family.
    fn kind(&self) -> LayerKind;

    /// Number of input tensors the layer consumes, or `None` when variadic.
    fn arity(&self) -> Option<usize> {
        Some(1)
    }

    /// The layer's weight tensors (empty for weightless layers).
    fn weights(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Runs the layer, drawing the output tensor and any temporaries from
    /// `ws` so hot loops (campaign injections) never touch the global
    /// allocator in steady state. Pooling never affects values — outputs are
    /// bit-identical to an allocating run.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError`] when input shapes are incompatible with the
    /// layer's configuration.
    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError>;

    /// Runs the layer with a throwaway workspace — the convenient form for
    /// one-off calls and tests, where allocation cost is irrelevant.
    ///
    /// # Errors
    ///
    /// Same contract as [`Layer::forward`].
    fn forward_alloc(&self, inputs: &[&Tensor]) -> Result<Tensor, DnnError> {
        let mut ws = Workspace::new();
        self.forward(inputs, &mut ws)
    }

    /// MAC geometry for this layer given its input shapes, when the layer is
    /// a MAC layer.
    fn mac_spec(&self, input_shapes: &[&[usize]]) -> Option<MacSpec> {
        let _ = input_shapes;
        None
    }

    /// Whether every output element is bitwise one of the input elements or
    /// `+0.0` (for any inputs and shapes). For such layers re-quantization is
    /// a no-op whenever the inputs already lie on the consumer codec's grid:
    /// grids are closed under round-to-grid, and `+0.0` quantizes to itself
    /// under every codec. The engine uses this to skip the per-element
    /// quantize pass on data-movement and selection layers (concat, reshape,
    /// max-pool, ReLU) when producer and consumer codecs are equal.
    ///
    /// Only return `true` when the property holds for *all* inputs, including
    /// non-finite values: a max-pool window of NaNs yields `-inf`, which is
    /// on the binary16 grid, and integer grids cannot contain non-finite
    /// inputs in the first place.
    fn values_preserved(&self) -> bool {
        false
    }

    /// Rounds the layer's weights onto the codec's representable grid.
    ///
    /// Engines call this once when preparing a reduced-precision deployment,
    /// mirroring post-training quantization of a trained model.
    fn quantize_weights(&mut self, codec: &ValueCodec) {
        let _ = codec;
    }

    /// Number of multiply-accumulate operations for the given inputs
    /// (0 for non-MAC layers).
    fn macs(&self, input_shapes: &[&[usize]]) -> u64 {
        self.mac_spec(input_shapes).map_or(0, |s| s.macs())
    }
}

pub(crate) fn check_arity(layer: &str, expected: usize, actual: usize) -> Result<(), DnnError> {
    if expected != actual {
        return Err(DnnError::ArityMismatch {
            layer: layer.to_owned(),
            expected,
            actual,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_kinds() {
        assert!(LayerKind::Conv.is_mac());
        assert!(LayerKind::Dense.is_mac());
        assert!(LayerKind::MatMul.is_mac());
        assert!(!LayerKind::Pool.is_mac());
        assert!(!LayerKind::Bias.is_mac());
    }
}
