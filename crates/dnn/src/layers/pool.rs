//! Spatial pooling layers.

use crate::error::DnnError;
use crate::layers::{check_arity, Layer, LayerKind};
use crate::macspec::conv_out_dim;
use crate::tensor::Tensor;

/// Pooling reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Mean over the window (padding positions excluded from the count).
    Avg,
}

/// 2-D max/average pooling over NCHW input.
///
/// # Examples
///
/// ```
/// use fidelity_dnn::layers::{Layer, Pool2d, PoolKind};
/// use fidelity_dnn::tensor::Tensor;
///
/// let pool = Pool2d::new("p", PoolKind::Max, 2).with_stride(2);
/// let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]).unwrap();
/// assert_eq!(pool.forward(&[&x]).unwrap().data(), &[5.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Pool2d {
    name: String,
    kind: PoolKind,
    k: usize,
    stride: usize,
    padding: usize,
}

impl Pool2d {
    /// Creates a square pooling window of size `k` with stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(name: impl Into<String>, kind: PoolKind, k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        Pool2d {
            name: name.into(),
            kind,
            k,
            stride: k,
            padding: 0,
        }
    }

    /// Sets the stride.
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }

    /// Sets symmetric zero padding.
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }
}

impl Layer for Pool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn forward(&self, inputs: &[&Tensor]) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        if x.rank() != 4 {
            return Err(DnnError::ShapeMismatch {
                context: "Pool2d::forward",
                expected: "rank-4 NCHW input".into(),
                actual: format!("{:?}", x.shape()),
            });
        }
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let oh = conv_out_dim(h, self.k, self.stride, self.padding, 1);
        let ow = conv_out_dim(w, self.k, self.stride, self.padding, 1);
        let mut out = Tensor::zeros(vec![b, c, oh, ow]);
        for n in 0..b {
            for ch in 0..c {
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut acc = match self.kind {
                            PoolKind::Max => f32::NEG_INFINITY,
                            PoolKind::Avg => 0.0,
                        };
                        let mut count = 0usize;
                        for ky in 0..self.k {
                            let iy = (y * self.stride + ky) as isize - self.padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = (xx * self.stride + kx) as isize - self.padding as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let v = x.at4(n, ch, iy as usize, ix as usize);
                                match self.kind {
                                    PoolKind::Max => acc = acc.max(v),
                                    PoolKind::Avg => acc += v,
                                }
                                count += 1;
                            }
                        }
                        let v = match self.kind {
                            PoolKind::Max => {
                                if count == 0 {
                                    0.0
                                } else {
                                    acc
                                }
                            }
                            PoolKind::Avg => {
                                if count == 0 {
                                    0.0
                                } else {
                                    acc / count as f32
                                }
                            }
                        };
                        out.set4(n, ch, y, xx, v);
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Global average pooling: NCHW → `[batch, channels]`.
#[derive(Debug, Clone)]
pub struct GlobalAvgPool {
    name: String,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new(name: impl Into<String>) -> Self {
        GlobalAvgPool { name: name.into() }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn forward(&self, inputs: &[&Tensor]) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        if x.rank() != 4 {
            return Err(DnnError::ShapeMismatch {
                context: "GlobalAvgPool::forward",
                expected: "rank-4 NCHW input".into(),
                actual: format!("{:?}", x.shape()),
            });
        }
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let hw = (h * w).max(1) as f32;
        let mut out = Tensor::zeros(vec![b, c]);
        for n in 0..b {
            for ch in 0..c {
                let mut s = 0.0f32;
                for y in 0..h {
                    for xx in 0..w {
                        s += x.at4(n, ch, y, xx);
                    }
                }
                out.set2(n, ch, s / hw);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_2x2() {
        let p = Pool2d::new("p", PoolKind::Max, 2);
        let x = Tensor::from_vec(vec![1, 1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let y = p.forward(&[&x]).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_excludes_padding() {
        let p = Pool2d::new("p", PoolKind::Avg, 3)
            .with_stride(1)
            .with_padding(1);
        let x = Tensor::full(vec![1, 1, 3, 3], 9.0);
        let y = p.forward(&[&x]).unwrap();
        // Every window averages only in-bounds values, so all outputs are 9.
        assert!(y.data().iter().all(|&v| (v - 9.0).abs() < 1e-6));
    }

    #[test]
    fn global_avg_pool() {
        let g = GlobalAvgPool::new("g");
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]).unwrap();
        let y = g.forward(&[&x]).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn pool_rejects_non_4d() {
        let p = Pool2d::new("p", PoolKind::Max, 2);
        assert!(p.forward(&[&Tensor::zeros(vec![4, 4])]).is_err());
    }
}
