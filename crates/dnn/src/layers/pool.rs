//! Spatial pooling layers.

use crate::error::DnnError;
use crate::layers::{check_arity, Layer, LayerKind};
use crate::macspec::conv_out_dim;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Pooling reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Mean over the window (padding positions excluded from the count).
    Avg,
}

/// 2-D max/average pooling over NCHW input.
///
/// # Examples
///
/// ```
/// use fidelity_dnn::layers::{Layer, Pool2d, PoolKind};
/// use fidelity_dnn::tensor::Tensor;
///
/// let pool = Pool2d::new("p", PoolKind::Max, 2).with_stride(2);
/// let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]).unwrap();
/// assert_eq!(pool.forward_alloc(&[&x]).unwrap().data(), &[5.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Pool2d {
    name: String,
    kind: PoolKind,
    k: usize,
    stride: usize,
    padding: usize,
}

impl Pool2d {
    /// Creates a square pooling window of size `k` with stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(name: impl Into<String>, kind: PoolKind, k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        Pool2d {
            name: name.into(),
            kind,
            k,
            stride: k,
            padding: 0,
        }
    }

    /// Sets the stride.
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }

    /// Sets symmetric zero padding.
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// One pooled output element from the input `h × w` plane. The reduction
    /// visits the same padding-valid taps in the same ky→kx order as the
    /// packed forward loop, so the value is bit-identical wherever computed.
    fn pool_at(&self, plane: &[f32], h: usize, w: usize, y: usize, xx: usize) -> f32 {
        let (k, s, p) = (self.k, self.stride, self.padding);
        let y0 = y * s;
        let ky_lo = p.saturating_sub(y0);
        let ky_hi = k.min((h + p).saturating_sub(y0));
        let x0 = xx * s;
        let kx_lo = p.saturating_sub(x0);
        let kx_hi = k.min((w + p).saturating_sub(x0));
        if ky_lo >= ky_hi || kx_lo >= kx_hi {
            return 0.0; // window entirely in padding
        }
        let seg = x0 + kx_lo - p..x0 + kx_hi - p;
        match self.kind {
            PoolKind::Max => {
                let mut acc = f32::NEG_INFINITY;
                for ky in ky_lo..ky_hi {
                    let row = &plane[(y0 + ky - p) * w..][..w];
                    for &v in &row[seg.clone()] {
                        acc = acc.max(v);
                    }
                }
                acc
            }
            PoolKind::Avg => {
                let mut acc = 0.0f32;
                for ky in ky_lo..ky_hi {
                    let row = &plane[(y0 + ky - p) * w..][..w];
                    for &v in &row[seg.clone()] {
                        acc += v;
                    }
                }
                acc / ((ky_hi - ky_lo) * (kx_hi - kx_lo)) as f32
            }
        }
    }
}

impl Layer for Pool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        if x.rank() != 4 {
            return Err(DnnError::ShapeMismatch {
                context: "Pool2d::forward",
                expected: "rank-4 NCHW input".into(),
                actual: format!("{:?}", x.shape()),
            });
        }
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let oh = conv_out_dim(h, self.k, self.stride, self.padding, 1);
        let ow = conv_out_dim(w, self.k, self.stride, self.padding, 1);
        // Padding-valid window bounds are clamped inside `pool_at`: the
        // window rows touch `iy = y·s + ky − p ∈ [0, h)`, a contiguous `ky`
        // range (and likewise for columns), so the inner loops walk plain
        // slices. Per output the reduction visits the same values in the
        // same ky→kx order as the naive quadruple loop, so results —
        // including the single-chain Avg accumulation — are bit-identical.
        let xd = x.data();
        let mut out = ws.zeros(&[b, c, oh, ow]);
        let od = out.data_mut();
        for plane_idx in 0..b * c {
            let plane = &xd[plane_idx * h * w..][..h * w];
            let out_plane = &mut od[plane_idx * oh * ow..][..oh * ow];
            for y in 0..oh {
                let out_row = &mut out_plane[y * ow..][..ow];
                for (xx, out_v) in out_row.iter_mut().enumerate() {
                    *out_v = self.pool_at(plane, h, w, y, xx);
                }
            }
        }
        Ok(out)
    }

    fn region_map(
        &self,
        input_shapes: &[&[usize]],
        h: (usize, usize),
        w: (usize, usize),
    ) -> Option<((usize, usize), (usize, usize))> {
        use crate::macspec::conv_out_window;
        let s = *input_shapes.first()?;
        if s.len() != 4 {
            return None;
        }
        let oh = conv_out_dim(s[2], self.k, self.stride, self.padding, 1);
        let ow = conv_out_dim(s[3], self.k, self.stride, self.padding, 1);
        Some((
            conv_out_window(h, self.k, self.stride, self.padding, 1, oh),
            conv_out_window(w, self.k, self.stride, self.padding, 1, ow),
        ))
    }

    fn forward_region(
        &self,
        inputs: &[&Tensor],
        (h0, h1): (usize, usize),
        (w0, w1): (usize, usize),
        out: &mut Tensor,
        ws: &mut Workspace,
    ) -> Result<bool, DnnError> {
        let _ = ws;
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        if x.rank() != 4 || out.rank() != 4 {
            return Ok(false);
        }
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = (out.shape()[2], out.shape()[3]);
        let (h0, h1) = (h0.min(oh), h1.min(oh));
        let (w0, w1) = (w0.min(ow), w1.min(ow));
        let xd = x.data();
        let od = out.data_mut();
        for plane_idx in 0..b * c {
            let plane = &xd[plane_idx * h * w..][..h * w];
            let out_plane = &mut od[plane_idx * oh * ow..][..oh * ow];
            for y in h0..h1 {
                for xx in w0..w1 {
                    out_plane[y * ow + xx] = self.pool_at(plane, h, w, y, xx);
                }
            }
        }
        Ok(true)
    }

    fn values_preserved(&self) -> bool {
        // Max selects an input (or emits 0.0 / −inf for degenerate windows,
        // both grid-closed); Avg divides and produces new values.
        self.kind == PoolKind::Max
    }
}

/// Global average pooling: NCHW → `[batch, channels]`.
#[derive(Debug, Clone)]
pub struct GlobalAvgPool {
    name: String,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new(name: impl Into<String>) -> Self {
        GlobalAvgPool { name: name.into() }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        if x.rank() != 4 {
            return Err(DnnError::ShapeMismatch {
                context: "GlobalAvgPool::forward",
                expected: "rank-4 NCHW input".into(),
                actual: format!("{:?}", x.shape()),
            });
        }
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let hw = (h * w).max(1) as f32;
        let xd = x.data();
        let mut out = ws.zeros(&[b, c]);
        let od = out.data_mut();
        for (plane_idx, out_v) in od.iter_mut().enumerate() {
            // Row-major plane walk: same single-chain accumulation order as
            // the nested y/x loop.
            let mut s = 0.0f32;
            for &v in &xd[plane_idx * h * w..][..h * w] {
                s += v;
            }
            *out_v = s / hw;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_2x2() {
        let p = Pool2d::new("p", PoolKind::Max, 2);
        let x = Tensor::from_vec(vec![1, 1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let y = p.forward_alloc(&[&x]).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_excludes_padding() {
        let p = Pool2d::new("p", PoolKind::Avg, 3)
            .with_stride(1)
            .with_padding(1);
        let x = Tensor::full(vec![1, 1, 3, 3], 9.0);
        let y = p.forward_alloc(&[&x]).unwrap();
        // Every window averages only in-bounds values, so all outputs are 9.
        assert!(y.data().iter().all(|&v| (v - 9.0).abs() < 1e-6));
    }

    #[test]
    fn global_avg_pool() {
        let g = GlobalAvgPool::new("g");
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]).unwrap();
        let y = g.forward_alloc(&[&x]).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn pool_rejects_non_4d() {
        let p = Pool2d::new("p", PoolKind::Max, 2);
        assert!(p.forward_alloc(&[&Tensor::zeros(vec![4, 4])]).is_err());
    }

    /// The naive quadruple loop the packed forward replaced; kept as the
    /// semantic reference for the differential test below.
    fn pool_reference(pool: &Pool2d, x: &Tensor) -> Tensor {
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let oh = conv_out_dim(h, pool.k, pool.stride, pool.padding, 1);
        let ow = conv_out_dim(w, pool.k, pool.stride, pool.padding, 1);
        let mut out = Tensor::zeros(vec![b, c, oh, ow]);
        for n in 0..b {
            for ch in 0..c {
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut acc = match pool.kind {
                            PoolKind::Max => f32::NEG_INFINITY,
                            PoolKind::Avg => 0.0,
                        };
                        let mut count = 0usize;
                        for ky in 0..pool.k {
                            let iy = (y * pool.stride + ky) as isize - pool.padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..pool.k {
                                let ix = (xx * pool.stride + kx) as isize - pool.padding as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let v = x.at4(n, ch, iy as usize, ix as usize);
                                match pool.kind {
                                    PoolKind::Max => acc = acc.max(v),
                                    PoolKind::Avg => acc += v,
                                }
                                count += 1;
                            }
                        }
                        let v = if count == 0 {
                            0.0
                        } else {
                            match pool.kind {
                                PoolKind::Max => acc,
                                PoolKind::Avg => acc / count as f32,
                            }
                        };
                        out.set4(n, ch, y, xx, v);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn packed_pool_matches_naive_reference_bitwise() {
        use crate::init::{uniform_tensor, SplitMix64};
        let mut seed = SplitMix64::new(0x9001_1234_5678);
        let configs = [
            // (k, stride, padding, h, w) — includes windows fully in padding
            // (k=3, p=3 corners), stride > k gaps, and stride 1 overlaps.
            (2, 2, 0, 6, 6),
            (3, 1, 1, 5, 7),
            (3, 2, 1, 7, 7),
            (3, 3, 3, 4, 4),
            (2, 3, 0, 7, 5),
            (4, 2, 2, 8, 8),
            (1, 1, 0, 3, 3),
        ];
        for (i, &(k, s, p, h, w)) in configs.iter().enumerate() {
            let x = uniform_tensor(seed.next_u64(), vec![2, 3, h, w], 4.0);
            for kind in [PoolKind::Max, PoolKind::Avg] {
                let pool = Pool2d::new(format!("p{i}"), kind, k)
                    .with_stride(s)
                    .with_padding(p);
                let fast = pool.forward_alloc(&[&x]).unwrap();
                let naive = pool_reference(&pool, &x);
                assert_eq!(fast.shape(), naive.shape());
                for (a, b) in fast.data().iter().zip(naive.data()) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{kind:?} k={k} s={s} p={p} h={h} w={w}"
                    );
                }
            }
        }
    }
}
