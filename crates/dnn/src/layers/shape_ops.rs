//! Pure data-movement layers: reshape, flatten, slice, transpose.

use crate::error::DnnError;
use crate::layers::{check_arity, Layer, LayerKind};
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Reshape to a fixed target shape (element count must match at run time).
#[derive(Debug, Clone)]
pub struct Reshape {
    name: String,
    shape: Vec<usize>,
}

impl Reshape {
    /// Creates a reshape to `shape`.
    pub fn new(name: impl Into<String>, shape: Vec<usize>) -> Self {
        Reshape {
            name: name.into(),
            shape,
        }
    }
}

impl Layer for Reshape {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Shape
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        let n: usize = self.shape.iter().product();
        if n != x.len() {
            return Err(DnnError::ShapeMismatch {
                context: "Tensor::reshaped",
                expected: format!("{} elements", x.len()),
                actual: format!("shape {:?} = {n} elements", self.shape),
            });
        }
        Ok(ws.reshaped(x, &self.shape))
    }

    fn values_preserved(&self) -> bool {
        true // pure data movement
    }
}

/// Flatten all dimensions after the first: `[b, ...] → [b, prod(...)]`.
#[derive(Debug, Clone)]
pub struct Flatten {
    name: String,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Flatten { name: name.into() }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Shape
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        if x.rank() == 0 {
            return Err(DnnError::ShapeMismatch {
                context: "Flatten::forward",
                expected: "rank >= 1".into(),
                actual: "rank 0".into(),
            });
        }
        let b = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        Ok(ws.reshaped(x, &[b, rest]))
    }

    fn values_preserved(&self) -> bool {
        true // pure data movement
    }
}

/// Slice of the last dimension: keeps columns `[start, start+len)`.
///
/// Used to split concatenated LSTM gate pre-activations.
#[derive(Debug, Clone)]
pub struct Slice {
    name: String,
    start: usize,
    len: usize,
}

impl Slice {
    /// Creates a last-dimension slice of `len` columns starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(name: impl Into<String>, start: usize, len: usize) -> Self {
        assert!(len > 0, "slice length must be positive");
        Slice {
            name: name.into(),
            start,
            len,
        }
    }
}

impl Layer for Slice {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Shape
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        let last = *x.shape().last().unwrap_or(&0);
        if self.start + self.len > last {
            return Err(DnnError::ShapeMismatch {
                context: "Slice::forward",
                expected: format!("last dim >= {}", self.start + self.len),
                actual: format!("{last}"),
            });
        }
        let rows = x.len() / last;
        let mut shape = ws.shape_vec(x.shape());
        *shape.last_mut().expect("rank >= 1") = self.len;
        let mut out = ws.zeros(&shape);
        ws.recycle_shape(shape);
        for r in 0..rows {
            let src = &x.data()[r * last + self.start..r * last + self.start + self.len];
            out.data_mut()[r * self.len..(r + 1) * self.len].copy_from_slice(src);
        }
        Ok(out)
    }

    fn values_preserved(&self) -> bool {
        true // pure data movement
    }
}

/// 2-D transpose: `[m, n] → [n, m]`.
#[derive(Debug, Clone)]
pub struct Transpose2d {
    name: String,
}

impl Transpose2d {
    /// Creates a 2-D transpose layer.
    pub fn new(name: impl Into<String>) -> Self {
        Transpose2d { name: name.into() }
    }
}

impl Layer for Transpose2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Shape
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        if x.rank() != 2 {
            return Err(DnnError::ShapeMismatch {
                context: "Transpose2d::forward",
                expected: "rank-2 input".into(),
                actual: format!("{:?}", x.shape()),
            });
        }
        let (m, n) = (x.shape()[0], x.shape()[1]);
        let mut out = ws.zeros(&[n, m]);
        for r in 0..m {
            for c in 0..n {
                out.set2(c, r, x.at2(r, c));
            }
        }
        Ok(out)
    }

    fn values_preserved(&self) -> bool {
        true // pure data movement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_4d() {
        let f = Flatten::new("f");
        let x = Tensor::zeros(vec![2, 3, 4, 5]);
        let y = f.forward_alloc(&[&x]).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
    }

    #[test]
    fn slice_last_dim() {
        let s = Slice::new("s", 1, 2);
        let x = Tensor::from_vec(vec![2, 4], (0..8).map(|v| v as f32).collect()).unwrap();
        let y = s.forward_alloc(&[&x]).unwrap();
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.data(), &[1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_out_of_bounds() {
        let s = Slice::new("s", 3, 2);
        assert!(s.forward_alloc(&[&Tensor::zeros(vec![1, 4])]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let t = Transpose2d::new("t");
        let x = Tensor::from_vec(vec![2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        let y = t.forward_alloc(&[&x]).unwrap();
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(y.at2(2, 1), 5.0);
        let back = t.forward_alloc(&[&y]).unwrap();
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn reshape_validates_count() {
        let r = Reshape::new("r", vec![2, 2]);
        assert!(r.forward_alloc(&[&Tensor::zeros(vec![5])]).is_err());
        assert!(r.forward_alloc(&[&Tensor::zeros(vec![4])]).is_ok());
    }
}
