//! Normalization layers.

use crate::error::DnnError;
use crate::layers::{check_arity, Layer, LayerKind};
use crate::precision::ValueCodec;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Per-channel affine transform `y = gamma·x + beta`, i.e. an inference-time
/// (folded) batch normalization.
#[derive(Debug, Clone)]
pub struct ScaleShift {
    name: String,
    gamma: Tensor,
    beta: Tensor,
}

impl ScaleShift {
    /// Creates a folded batch-norm from per-channel `gamma` and `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] unless both are rank 1 and equal
    /// length.
    pub fn new(name: impl Into<String>, gamma: Tensor, beta: Tensor) -> Result<Self, DnnError> {
        if gamma.rank() != 1 || beta.rank() != 1 || gamma.len() != beta.len() || gamma.is_empty() {
            return Err(DnnError::InvalidConfig {
                message: format!(
                    "scale/shift must be equal-length rank-1, got {:?} and {:?}",
                    gamma.shape(),
                    beta.shape()
                ),
            });
        }
        Ok(ScaleShift {
            name: name.into(),
            gamma,
            beta,
        })
    }
}

impl Layer for ScaleShift {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Norm
    }

    fn weights(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        let n = self.gamma.len();
        let mut out = ws.clone_of(x);
        match x.rank() {
            4 => {
                let (c, h, w) = (x.shape()[1], x.shape()[2], x.shape()[3]);
                if c != n {
                    return Err(DnnError::ShapeMismatch {
                        context: "ScaleShift::forward",
                        expected: format!("{n} channels"),
                        actual: format!("{c}"),
                    });
                }
                let hw = h * w;
                for (off, v) in out.data_mut().iter_mut().enumerate() {
                    let ch = (off / hw) % c;
                    *v = self.gamma.data()[ch] * *v + self.beta.data()[ch];
                }
            }
            2 => {
                let last = x.shape()[1];
                if last != n {
                    return Err(DnnError::ShapeMismatch {
                        context: "ScaleShift::forward",
                        expected: format!("{n} features"),
                        actual: format!("{last}"),
                    });
                }
                for (off, v) in out.data_mut().iter_mut().enumerate() {
                    let fidx = off % last;
                    *v = self.gamma.data()[fidx] * *v + self.beta.data()[fidx];
                }
            }
            r => {
                return Err(DnnError::ShapeMismatch {
                    context: "ScaleShift::forward",
                    expected: "rank 2 or 4 input".into(),
                    actual: format!("rank {r}"),
                })
            }
        }
        Ok(out)
    }

    fn quantize_weights(&mut self, codec: &ValueCodec) {
        self.gamma.map_inplace(|v| codec.quantize(v));
        self.beta.map_inplace(|v| codec.quantize(v));
    }
}

/// Layer normalization over the last dimension (Transformer blocks).
#[derive(Debug, Clone)]
pub struct LayerNorm {
    name: String,
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm with learned per-feature `gamma`/`beta`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] unless both are rank 1 and equal
    /// length.
    pub fn new(name: impl Into<String>, gamma: Tensor, beta: Tensor) -> Result<Self, DnnError> {
        if gamma.rank() != 1 || beta.rank() != 1 || gamma.len() != beta.len() || gamma.is_empty() {
            return Err(DnnError::InvalidConfig {
                message: format!(
                    "layernorm params must be equal-length rank-1, got {:?} and {:?}",
                    gamma.shape(),
                    beta.shape()
                ),
            });
        }
        Ok(LayerNorm {
            name: name.into(),
            gamma,
            beta,
            eps: 1e-5,
        })
    }
}

impl Layer for LayerNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Norm
    }

    fn weights(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        let last = *x.shape().last().unwrap_or(&0);
        if last != self.gamma.len() || last == 0 {
            return Err(DnnError::ShapeMismatch {
                context: "LayerNorm::forward",
                expected: format!("last dim {}", self.gamma.len()),
                actual: format!("{last}"),
            });
        }
        let mut out = ws.clone_of(x);
        let rows = x.len() / last;
        for r in 0..rows {
            let row = &mut out.data_mut()[r * last..(r + 1) * last];
            let mean: f32 = row.iter().sum::<f32>() / last as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / last as f32;
            let denom = (var + self.eps).sqrt();
            for (i, v) in row.iter_mut().enumerate() {
                *v = self.gamma.data()[i] * ((*v - mean) / denom) + self.beta.data()[i];
            }
        }
        Ok(out)
    }

    fn quantize_weights(&mut self, codec: &ValueCodec) {
        self.gamma.map_inplace(|v| codec.quantize(v));
        self.beta.map_inplace(|v| codec.quantize(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_shift_4d() {
        let ss = ScaleShift::new(
            "bn",
            Tensor::from_slice(&[2.0, 0.5]),
            Tensor::from_slice(&[1.0, 0.0]),
        )
        .unwrap();
        let x = Tensor::full(vec![1, 2, 1, 1], 4.0);
        let y = ss.forward_alloc(&[&x]).unwrap();
        assert_eq!(y.at4(0, 0, 0, 0), 9.0);
        assert_eq!(y.at4(0, 1, 0, 0), 2.0);
    }

    #[test]
    fn scale_shift_validates() {
        assert!(ScaleShift::new(
            "bn",
            Tensor::from_slice(&[1.0]),
            Tensor::from_slice(&[1.0, 2.0])
        )
        .is_err());
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let d = 8;
        let ln = LayerNorm::new("ln", Tensor::full(vec![d], 1.0), Tensor::zeros(vec![d])).unwrap();
        let x = Tensor::from_vec(vec![1, d], (0..d).map(|v| v as f32).collect()).unwrap();
        let y = ln.forward_alloc(&[&x]).unwrap();
        let mean: f32 = y.data().iter().sum::<f32>() / d as f32;
        let var: f32 = y
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / d as f32;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_rejects_wrong_width() {
        let ln = LayerNorm::new(
            "ln",
            Tensor::from_slice(&[1.0, 1.0]),
            Tensor::from_slice(&[0.0, 0.0]),
        )
        .unwrap();
        assert!(ln.forward_alloc(&[&Tensor::zeros(vec![1, 3])]).is_err());
    }
}
