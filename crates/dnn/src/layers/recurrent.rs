//! Recurrent layers.

use crate::error::DnnError;
use crate::layers::{check_arity, ActivationKind, Layer, LayerKind};
use crate::precision::ValueCodec;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// A single-direction LSTM processing a `[seq, in]` sequence and returning
/// all hidden states `[seq, hidden]`.
///
/// Gate order in the stacked weight matrices is `i, f, g, o` (input, forget,
/// cell candidate, output), matching the common TensorFlow convention.
#[derive(Debug, Clone)]
pub struct Lstm {
    name: String,
    w_ih: Tensor,
    w_hh: Tensor,
    bias: Tensor,
    hidden: usize,
}

impl Lstm {
    /// Creates an LSTM from `w_ih: [4·hidden, in]`, `w_hh: [4·hidden,
    /// hidden]` and `bias: [4·hidden]`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] when the shapes are inconsistent.
    pub fn new(
        name: impl Into<String>,
        w_ih: Tensor,
        w_hh: Tensor,
        bias: Tensor,
    ) -> Result<Self, DnnError> {
        if w_ih.rank() != 2 || w_hh.rank() != 2 || bias.rank() != 1 {
            return Err(DnnError::InvalidConfig {
                message: "lstm weights must be rank 2/2/1".into(),
            });
        }
        let four_h = w_ih.shape()[0];
        if !four_h.is_multiple_of(4) || four_h == 0 {
            return Err(DnnError::InvalidConfig {
                message: format!("lstm stacked gate dim {four_h} must be a positive multiple of 4"),
            });
        }
        let hidden = four_h / 4;
        if w_hh.shape() != [four_h, hidden] || bias.len() != four_h {
            return Err(DnnError::InvalidConfig {
                message: format!(
                    "lstm shape mismatch: w_ih {:?}, w_hh {:?}, bias {:?}",
                    w_ih.shape(),
                    w_hh.shape(),
                    bias.shape()
                ),
            });
        }
        Ok(Lstm {
            name: name.into(),
            w_ih,
            w_hh,
            bias,
            hidden,
        })
    }

    /// Hidden-state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

impl Layer for Lstm {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Recurrent
    }

    fn weights(&self) -> Vec<&Tensor> {
        vec![&self.w_ih, &self.w_hh, &self.bias]
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let x = inputs[0];
        if x.rank() != 2 || x.shape()[1] != self.w_ih.shape()[1] {
            return Err(DnnError::ShapeMismatch {
                context: "Lstm::forward",
                expected: format!("[seq, {}] input", self.w_ih.shape()[1]),
                actual: format!("{:?}", x.shape()),
            });
        }
        let (seq, in_dim) = (x.shape()[0], x.shape()[1]);
        let h = self.hidden;
        let mut hidden = ws.take_buf(h);
        let mut cell = ws.take_buf(h);
        // Fully overwritten each timestep, so one pooled buffer serves all.
        let mut gates = ws.take_buf(4 * h);
        let mut out = ws.zeros(&[seq, h]);

        for t in 0..seq {
            let xt = &x.data()[t * in_dim..(t + 1) * in_dim];
            // Gate pre-activations: bias + W_ih·x + W_hh·h.
            for (g, gate) in gates.iter_mut().enumerate() {
                let mut acc = self.bias.data()[g];
                for (i, &xv) in xt.iter().enumerate() {
                    acc += self.w_ih.data()[g * in_dim + i] * xv;
                }
                for (j, &hv) in hidden.iter().enumerate() {
                    acc += self.w_hh.data()[g * h + j] * hv;
                }
                *gate = acc;
            }
            for j in 0..h {
                let i_g = ActivationKind::Sigmoid.apply(gates[j]);
                let f_g = ActivationKind::Sigmoid.apply(gates[h + j]);
                let g_g = ActivationKind::Tanh.apply(gates[2 * h + j]);
                let o_g = ActivationKind::Sigmoid.apply(gates[3 * h + j]);
                cell[j] = f_g * cell[j] + i_g * g_g;
                hidden[j] = o_g * ActivationKind::Tanh.apply(cell[j]);
                out.set2(t, j, hidden[j]);
            }
        }
        ws.recycle_buf(hidden);
        ws.recycle_buf(cell);
        ws.recycle_buf(gates);
        Ok(out)
    }

    fn quantize_weights(&mut self, codec: &ValueCodec) {
        self.w_ih.map_inplace(|v| codec.quantize(v));
        self.w_hh.map_inplace(|v| codec.quantize(v));
        self.bias.map_inplace(|v| codec.quantize(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lstm() -> Lstm {
        // hidden = 1, in = 1; all weights chosen for a hand-checkable step.
        let w_ih = Tensor::from_vec(vec![4, 1], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let w_hh = Tensor::from_vec(vec![4, 1], vec![0.0, 0.0, 0.0, 0.0]).unwrap();
        let bias = Tensor::zeros(vec![4]);
        Lstm::new("lstm", w_ih, w_hh, bias).unwrap()
    }

    #[test]
    fn single_step_matches_manual() {
        let lstm = tiny_lstm();
        let x = Tensor::from_vec(vec![1, 1], vec![2.0]).unwrap();
        let y = lstm.forward_alloc(&[&x]).unwrap();
        // i=f=o=sigmoid(2), g=tanh(2); c=i*g; h=o*tanh(c).
        let s = 1.0 / (1.0 + (-2.0f32).exp());
        let c = s * 2.0f32.tanh();
        let expect = s * c.tanh();
        assert!((y.at2(0, 0) - expect).abs() < 1e-6);
    }

    #[test]
    fn state_carries_across_steps() {
        let lstm = tiny_lstm();
        let x1 = Tensor::from_vec(vec![1, 1], vec![1.0]).unwrap();
        let x2 = Tensor::from_vec(vec![2, 1], vec![1.0, 1.0]).unwrap();
        let y1 = lstm.forward_alloc(&[&x1]).unwrap();
        let y2 = lstm.forward_alloc(&[&x2]).unwrap();
        assert!((y2.at2(0, 0) - y1.at2(0, 0)).abs() < 1e-6);
        assert!(y2.at2(1, 0) != y2.at2(0, 0)); // second step sees carried cell state
    }

    #[test]
    fn validates_shapes() {
        let w_ih = Tensor::zeros(vec![4, 2]);
        let w_hh = Tensor::zeros(vec![4, 2]); // wrong: must be [4, 1]
        let bias = Tensor::zeros(vec![4]);
        assert!(Lstm::new("bad", w_ih, w_hh, bias).is_err());
        let lstm = tiny_lstm();
        assert!(lstm.forward_alloc(&[&Tensor::zeros(vec![1, 3])]).is_err());
    }
}
