//! Token embedding lookup.

use crate::error::DnnError;
use crate::layers::{check_arity, Layer, LayerKind};
use crate::precision::ValueCodec;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Embedding lookup: a rank-1 tensor of (rounded) token ids becomes a
/// `[seq, dim]` matrix of embedding rows.
///
/// Out-of-vocabulary ids clamp to the last row, mirroring an `<unk>` bucket.
#[derive(Debug, Clone)]
pub struct Embedding {
    name: String,
    table: Tensor,
}

impl Embedding {
    /// Creates an embedding from a `[vocab, dim]` table.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] for a non-rank-2 or empty table.
    pub fn new(name: impl Into<String>, table: Tensor) -> Result<Self, DnnError> {
        if table.rank() != 2 || table.is_empty() {
            return Err(DnnError::InvalidConfig {
                message: format!(
                    "embedding table must be non-empty rank 2, got {:?}",
                    table.shape()
                ),
            });
        }
        Ok(Embedding {
            name: name.into(),
            table,
        })
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.shape()[0]
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.shape()[1]
    }
}

impl Layer for Embedding {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Embedding
    }

    fn weights(&self) -> Vec<&Tensor> {
        vec![&self.table]
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let ids = inputs[0];
        if ids.rank() != 1 {
            return Err(DnnError::ShapeMismatch {
                context: "Embedding::forward",
                expected: "rank-1 id tensor".into(),
                actual: format!("{:?}", ids.shape()),
            });
        }
        let (vocab, dim) = (self.vocab(), self.dim());
        let mut out = ws.zeros(&[ids.len(), dim]);
        for (t, &idf) in ids.data().iter().enumerate() {
            let id = if idf.is_finite() && idf >= 0.0 {
                (idf.round() as usize).min(vocab - 1)
            } else {
                vocab - 1
            };
            let row = &self.table.data()[id * dim..(id + 1) * dim];
            out.data_mut()[t * dim..(t + 1) * dim].copy_from_slice(row);
        }
        Ok(out)
    }

    fn quantize_weights(&mut self, codec: &ValueCodec) {
        self.table.map_inplace(|v| codec.quantize(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_rows() {
        let table = Tensor::from_vec(vec![3, 2], vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1]).unwrap();
        let emb = Embedding::new("e", table).unwrap();
        let ids = Tensor::from_slice(&[2.0, 0.0]);
        let y = emb.forward_alloc(&[&ids]).unwrap();
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.data(), &[2.0, 2.1, 0.0, 0.1]);
    }

    #[test]
    fn oov_clamps() {
        let table = Tensor::from_vec(vec![2, 1], vec![5.0, 7.0]).unwrap();
        let emb = Embedding::new("e", table).unwrap();
        let ids = Tensor::from_slice(&[99.0, -3.0, f32::NAN]);
        let y = emb.forward_alloc(&[&ids]).unwrap();
        assert_eq!(y.data(), &[7.0, 7.0, 7.0]);
    }
}
