//! 2-D convolution.

use crate::error::DnnError;
use crate::layers::{check_arity, Layer, LayerKind};
use crate::macspec::{conv_out_window, ConvSpec, MacSpec, Operands};
use crate::precision::ValueCodec;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// A 2-D convolution over NCHW input with OIHW weights.
///
/// The forward pass uses [`MacSpec::forward_into`], whose per-neuron
/// accumulation order is bit-identical to [`MacSpec::compute_at`], so the
/// fault-injection engine's per-neuron recomputation never diverges from
/// normal inference.
///
/// # Examples
///
/// ```
/// use fidelity_dnn::layers::{Conv2d, Layer};
/// use fidelity_dnn::tensor::Tensor;
///
/// # fn main() -> Result<(), fidelity_dnn::error::DnnError> {
/// let weight = Tensor::full(vec![1, 1, 3, 3], 1.0 / 9.0);
/// let conv = Conv2d::new("blur", weight)?.with_padding(1, 1);
/// let input = Tensor::full(vec![1, 1, 8, 8], 1.0);
/// let out = conv.forward_alloc(&[&input])?;
/// assert_eq!(out.shape(), &[1, 1, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    weight: Tensor,
    stride: (usize, usize),
    padding: (usize, usize),
    dilation: (usize, usize),
    groups: usize,
}

impl Conv2d {
    /// Creates a stride-1, unpadded, undilated, ungrouped convolution.
    ///
    /// `weight` must be rank 4 (`[out_c, in_c/groups, kh, kw]`).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] for a non-rank-4 or empty weight.
    pub fn new(name: impl Into<String>, weight: Tensor) -> Result<Self, DnnError> {
        if weight.rank() != 4 || weight.is_empty() {
            return Err(DnnError::InvalidConfig {
                message: format!(
                    "conv weight must be non-empty rank 4, got shape {:?}",
                    weight.shape()
                ),
            });
        }
        Ok(Conv2d {
            name: name.into(),
            weight,
            stride: (1, 1),
            padding: (0, 0),
            dilation: (1, 1),
            groups: 1,
        })
    }

    /// Sets the stride.
    pub fn with_stride(mut self, sh: usize, sw: usize) -> Self {
        assert!(sh > 0 && sw > 0, "stride must be positive");
        self.stride = (sh, sw);
        self
    }

    /// Sets zero padding.
    pub fn with_padding(mut self, ph: usize, pw: usize) -> Self {
        self.padding = (ph, pw);
        self
    }

    /// Sets dilation.
    pub fn with_dilation(mut self, dh: usize, dw: usize) -> Self {
        assert!(dh > 0 && dw > 0, "dilation must be positive");
        self.dilation = (dh, dw);
        self
    }

    /// Sets channel groups (`in_c` for depthwise convolution).
    pub fn with_groups(mut self, groups: usize) -> Self {
        assert!(groups > 0, "groups must be positive");
        self.groups = groups;
        self
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.shape()[0]
    }

    fn spec_for(&self, input_shape: &[usize]) -> Result<ConvSpec, DnnError> {
        if input_shape.len() != 4 {
            return Err(DnnError::ShapeMismatch {
                context: "Conv2d::forward",
                expected: "rank-4 NCHW input".into(),
                actual: format!("{input_shape:?}"),
            });
        }
        let w = self.weight.shape();
        let expected_in_c = w[1] * self.groups;
        if input_shape[1] != expected_in_c {
            return Err(DnnError::ShapeMismatch {
                context: "Conv2d::forward",
                expected: format!("{expected_in_c} input channels"),
                actual: format!("{} input channels", input_shape[1]),
            });
        }
        if !w[0].is_multiple_of(self.groups) {
            return Err(DnnError::InvalidConfig {
                message: format!("out_c {} not divisible by groups {}", w[0], self.groups),
            });
        }
        Ok(ConvSpec {
            batch: input_shape[0],
            in_c: input_shape[1],
            in_h: input_shape[2],
            in_w: input_shape[3],
            out_c: w[0],
            kh: w[2],
            kw: w[3],
            stride: self.stride,
            padding: self.padding,
            dilation: self.dilation,
            groups: self.groups,
        })
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn weights(&self) -> Vec<&Tensor> {
        vec![&self.weight]
    }

    fn forward(&self, inputs: &[&Tensor], ws: &mut Workspace) -> Result<Tensor, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let c = self.spec_for(inputs[0].shape())?;
        let dims = [c.batch, c.out_c, c.out_h(), c.out_w()];
        let spec = MacSpec::Conv(c);
        let ops = Operands {
            input: inputs[0],
            weight: &self.weight,
        };
        let mut out = ws.zeros(&dims);
        let tier = ws.mac_tier();
        spec.forward_tier_into_scratch(&ops, out.data_mut(), ws.kernel_scratch(), tier);
        Ok(out)
    }

    fn mac_spec(&self, input_shapes: &[&[usize]]) -> Option<MacSpec> {
        input_shapes
            .first()
            .and_then(|s| self.spec_for(s).ok())
            .map(MacSpec::Conv)
    }

    fn region_map(
        &self,
        input_shapes: &[&[usize]],
        h: (usize, usize),
        w: (usize, usize),
    ) -> Option<((usize, usize), (usize, usize))> {
        let c = self.spec_for(input_shapes.first()?).ok()?;
        Some((
            conv_out_window(h, c.kh, c.stride.0, c.padding.0, c.dilation.0, c.out_h()),
            conv_out_window(w, c.kw, c.stride.1, c.padding.1, c.dilation.1, c.out_w()),
        ))
    }

    fn forward_region(
        &self,
        inputs: &[&Tensor],
        h: (usize, usize),
        w: (usize, usize),
        out: &mut Tensor,
        ws: &mut Workspace,
    ) -> Result<bool, DnnError> {
        check_arity(&self.name, 1, inputs.len())?;
        let c = self.spec_for(inputs[0].shape())?;
        let spec = MacSpec::Conv(c);
        let ops = Operands {
            input: inputs[0],
            weight: &self.weight,
        };
        Ok(spec.forward_region_into_scratch(&ops, out.data_mut(), ws.kernel_scratch(), h, w))
    }

    fn quantize_weights(&mut self, codec: &ValueCodec) {
        self.weight.map_inplace(|v| codec.quantize(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::Precision;

    #[test]
    fn identity_kernel_preserves_input() {
        let mut w = Tensor::zeros(vec![1, 1, 3, 3]);
        w.set(&[0, 0, 1, 1], 1.0);
        let conv = Conv2d::new("id", w).unwrap().with_padding(1, 1);
        let input = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = conv.forward_alloc(&[&input]).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn stride_downsamples() {
        let w = Tensor::full(vec![1, 1, 2, 2], 0.25);
        let conv = Conv2d::new("avg", w).unwrap().with_stride(2, 2);
        let input = Tensor::full(vec![1, 1, 4, 4], 4.0);
        let out = conv.forward_alloc(&[&input]).unwrap();
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert!(out.data().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let conv = Conv2d::new("c", Tensor::zeros(vec![2, 3, 1, 1])).unwrap();
        let input = Tensor::zeros(vec![1, 4, 2, 2]);
        assert!(conv.forward_alloc(&[&input]).is_err());
    }

    #[test]
    fn rejects_bad_weight_rank() {
        assert!(Conv2d::new("c", Tensor::zeros(vec![2, 3, 1])).is_err());
    }

    #[test]
    fn depthwise_forward() {
        // 2 channels, each with its own 1x1 kernel scaling by channel index+1.
        let w = Tensor::from_vec(vec![2, 1, 1, 1], vec![1.0, 2.0]).unwrap();
        let conv = Conv2d::new("dw", w).unwrap().with_groups(2);
        let input = Tensor::full(vec![1, 2, 2, 2], 3.0);
        let out = conv.forward_alloc(&[&input]).unwrap();
        assert_eq!(out.at4(0, 0, 0, 0), 3.0);
        assert_eq!(out.at4(0, 1, 1, 1), 6.0);
    }

    #[test]
    fn quantize_weights_moves_onto_grid() {
        let w = Tensor::from_vec(vec![1, 1, 1, 1], vec![0.3]).unwrap();
        let mut conv = Conv2d::new("q", w).unwrap();
        conv.quantize_weights(&ValueCodec::new(Precision::Int8, 0.25));
        assert_eq!(conv.weights()[0].data()[0], 0.25);
    }
}
