//! Dense row-major tensors used throughout the inference substrate.
//!
//! Values are stored as `f32`; reduced-precision execution (FP16 / INT16 /
//! INT8) is modeled by round-tripping values through a [`crate::precision`]
//! codec after each layer ("fake quantization"), which is exactly the surface
//! on which hardware bit flips are modeled.

use std::fmt;

use crate::error::DnnError;

/// A dense, row-major, arbitrary-rank tensor of `f32` values.
///
/// Convolutional tensors use NCHW order; matrices use `[rows, cols]`.
///
/// # Examples
///
/// ```
/// use fidelity_dnn::tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} values]", self.data.len())
        }
    }
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// # use fidelity_dnn::tensor::Tensor;
    /// let t = Tensor::zeros(vec![1, 2, 2, 2]);
    /// assert_eq!(t.len(), 8);
    /// assert!(t.data().iter().all(|&v| v == 0.0));
    /// ```
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if `data.len()` does not equal the
    /// product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, DnnError> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(DnnError::ShapeMismatch {
                context: "Tensor::from_vec",
                expected: format!("{n} values for shape {shape:?}"),
                actual: format!("{} values", data.len()),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        Tensor {
            shape: vec![values.len()],
            data: values.to_vec(),
        }
    }

    /// The tensor's shape (row-major, outermost dimension first).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat storage.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Consumes the tensor and returns its shape and flat storage, so both
    /// buffers can be recycled (see [`crate::workspace::Workspace`]).
    pub fn into_parts(self) -> (Vec<usize>, Vec<f32>) {
        (self.shape, self.data)
    }

    /// Assembles a tensor from a shape and a matching flat buffer — the
    /// allocation-free counterpart of [`Tensor::from_vec`] used by the
    /// workspace pool.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_parts(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, data.len(), "Tensor::from_parts length mismatch");
        Tensor { shape, data }
    }

    /// Computes the flat offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds (debug
    /// assertions always validate; release builds validate rank only).
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0usize;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            debug_assert!(ix < dim, "index {ix} out of bounds for dim {i} ({dim})");
            off = off * dim + ix;
        }
        off
    }

    /// Reads the element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Writes the element at a multi-dimensional index.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Reads a 4-D (NCHW) element without allocating an index slice.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.rank(), 4);
        let (cs, hs, ws) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// Writes a 4-D (NCHW) element without allocating an index slice.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        debug_assert_eq!(self.rank(), 4);
        let (cs, hs, ws) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cs + c) * hs + h) * ws + w] = value;
    }

    /// Reads a 2-D element.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Writes a 2-D element.
    #[inline]
    pub fn set2(&mut self, r: usize, c: usize, value: f32) {
        debug_assert_eq!(self.rank(), 2);
        self.data[r * self.shape[1] + c] = value;
    }

    /// Returns a copy reshaped to `shape`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if the element counts differ.
    pub fn reshaped(&self, shape: Vec<usize>) -> Result<Tensor, DnnError> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(DnnError::ShapeMismatch {
                context: "Tensor::reshaped",
                expected: format!("{} elements", self.data.len()),
                actual: format!("shape {shape:?} = {n} elements"),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map<F: FnMut(f32) -> f32>(&self, f: F) -> Tensor {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Largest absolute value (0.0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Index of the maximum element in the flat storage.
    ///
    /// Ties resolve to the first occurrence; returns `None` when empty or
    /// when all entries are NaN.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Whether any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Element-wise absolute difference with another tensor of equal shape.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when shapes differ.
    pub fn abs_diff(&self, other: &Tensor) -> Result<Tensor, DnnError> {
        if self.shape != other.shape {
            return Err(DnnError::ShapeMismatch {
                context: "Tensor::abs_diff",
                expected: format!("{:?}", self.shape),
                actual: format!("{:?}", other.shape),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Flat indices of elements that differ from `other` by more than `tol`.
    ///
    /// NaNs are considered different from everything (including NaN), so a
    /// fault that produces NaN is always reported.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when shapes differ.
    pub fn diff_indices(&self, other: &Tensor, tol: f32) -> Result<Vec<usize>, DnnError> {
        if self.shape != other.shape {
            return Err(DnnError::ShapeMismatch {
                context: "Tensor::diff_indices",
                expected: format!("{:?}", self.shape),
                actual: format!("{:?}", other.shape),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .enumerate()
            .filter(|(_, (a, b))| {
                if a.is_nan() || b.is_nan() {
                    true
                } else {
                    (*a - *b).abs() > tol
                }
            })
            .map(|(i, _)| i)
            .collect())
    }

    /// Converts a flat offset back to a multi-dimensional index.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.shape.len()];
        for i in (0..self.shape.len()).rev() {
            let d = self.shape[i];
            idx[i] = offset % d;
            offset /= d;
        }
        idx
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(vec![0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 3]).is_err());
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 4]).is_ok());
    }

    #[test]
    fn offset_is_row_major() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 3]), 3);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
    }

    #[test]
    fn at4_matches_generic_indexing() {
        let data: Vec<f32> = (0..24).map(|v| v as f32).collect();
        let t = Tensor::from_vec(vec![1, 2, 3, 4], data).unwrap();
        for c in 0..2 {
            for h in 0..3 {
                for w in 0..4 {
                    assert_eq!(t.at4(0, c, h, w), t.at(&[0, c, h, w]));
                }
            }
        }
    }

    #[test]
    fn unravel_inverts_offset() {
        let t = Tensor::zeros(vec![3, 4, 5]);
        for off in [0usize, 1, 19, 20, 59] {
            let idx = t.unravel(off);
            assert_eq!(t.offset(&idx), off);
        }
    }

    #[test]
    fn argmax_skips_nan_and_handles_ties() {
        let t = Tensor::from_slice(&[1.0, f32::NAN, 3.0, 3.0]);
        assert_eq!(t.argmax(), Some(2));
        let empty = Tensor::from_slice(&[]);
        assert_eq!(empty.argmax(), None);
        let all_nan = Tensor::from_slice(&[f32::NAN]);
        assert_eq!(all_nan.argmax(), None);
    }

    #[test]
    fn diff_indices_flags_nan() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[1.0, f32::NAN, 3.5]);
        let d = a.diff_indices(&b, 0.25).unwrap();
        assert_eq!(d, vec![1, 2]);
    }

    #[test]
    fn reshaped_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.reshaped(vec![2, 2]).unwrap();
        assert_eq!(r.at2(1, 0), 3.0);
        assert!(t.reshaped(vec![3, 2]).is_err());
    }

    #[test]
    fn max_abs_and_sum() {
        let t = Tensor::from_slice(&[-5.0, 2.0, 3.0]);
        assert_eq!(t.max_abs(), 5.0);
        assert_eq!(t.sum(), 0.0);
    }
}
