//! Differential-oracle property tests for the two-tier MAC lane kernels.
//!
//! The `Bitwise` tier (8-wide lane unrolls across *independent* output
//! accumulators) must be byte-identical to the scalar `compute_at` oracle
//! for every shape — including non-multiple-of-lane-width tails — and every
//! input class, including NaN, ±∞, denormals and signed zeros. The `Fast`
//! tier (4-lane in-contraction tree reduction) is allowed to diverge, but
//! its reported divergence must be an exact measurement, not an estimate.

use fidelity_dnn::init::SplitMix64;
use fidelity_dnn::macspec::{
    conv_out_window, ConvSpec, DenseSpec, KernelScratch, MacSpec, MacTier, MatMulSpec, Operands,
};
use fidelity_dnn::tensor::Tensor;
use proptest::prelude::*;

/// Bit image of a value for differential comparison, with NaNs collapsed to
/// one canonical payload. Which outputs are NaN is fully deterministic, but
/// the *payload* of a NaN is the one IEEE bit pattern the compiler may
/// legally vary between code locations (float add/mul commute in LLVM, and
/// x86 NaN propagation picks the payload by operand order), so two
/// differently-located but semantically identical accumulations can emit
/// e.g. `0x7FC00000` vs `0xFFC00000`. Every campaign-visible statistic
/// (outcomes, masking bits, checkpoint bytes) is NaN-payload-insensitive.
fn canon_bits(v: f32) -> u32 {
    if v.is_nan() {
        0x7FC0_0000
    } else {
        v.to_bits()
    }
}

/// Fills a tensor from a seeded stream, salting in the awkward input
/// classes (NaN, infinities, denormals, signed zeros) at ~1-in-6 density.
fn adversarial_tensor(seed: u64, shape: Vec<usize>) -> Tensor {
    const SPECIALS: [f32; 8] = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        1.0e-40,  // subnormal
        -1.0e-42, // subnormal
        0.0,
        -0.0,
        f32::MIN_POSITIVE,
    ];
    let mut rng = SplitMix64::new(seed);
    let len = shape.iter().product();
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        let r = rng.next_u64();
        if r.is_multiple_of(6) {
            data.push(SPECIALS[(r >> 8) as usize % SPECIALS.len()]);
        } else {
            data.push(rng.next_symmetric(8.0));
        }
    }
    Tensor::from_vec(shape, data).unwrap()
}

fn operand_shapes(spec: &MacSpec) -> (Vec<usize>, Vec<usize>) {
    match spec {
        MacSpec::Conv(c) => (
            vec![c.batch, c.in_c, c.in_h, c.in_w],
            vec![c.out_c, c.group_in_c(), c.kh, c.kw],
        ),
        MacSpec::Dense(d) => (
            vec![d.batch, d.in_features],
            vec![d.out_features, d.in_features],
        ),
        MacSpec::MatMul(m) => {
            let b = if m.transpose_b {
                vec![m.batch, m.n, m.k]
            } else {
                vec![m.batch, m.k, m.n]
            };
            (vec![m.batch, m.m, m.k], b)
        }
    }
}

/// Asserts the packed `Bitwise`-tier kernel agrees bit-for-bit with the
/// scalar per-neuron oracle on adversarial operands.
fn assert_bitwise_tier_matches_oracle(spec: &MacSpec, seed: u64) -> Result<(), TestCaseError> {
    let (in_shape, w_shape) = operand_shapes(spec);
    let input = adversarial_tensor(seed, in_shape);
    let weight = adversarial_tensor(seed ^ 0xABCD_EF01, w_shape);
    let ops = Operands {
        input: &input,
        weight: &weight,
    };
    let mut scratch = KernelScratch::new();
    let mut out = vec![0.0f32; spec.out_len()];
    spec.forward_tier_into_scratch(&ops, &mut out, &mut scratch, MacTier::Bitwise);
    for (off, v) in out.iter().enumerate() {
        let oracle = spec.compute_at(&ops, off, None);
        prop_assert_eq!(
            canon_bits(*v),
            canon_bits(oracle),
            "bitwise tier != compute_at oracle at neuron {} ({:?})",
            off,
            spec
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense: `in_features` sweeps across the 8-lane (and 4-lane) boundary
    /// so both the unrolled body and the scalar tail are exercised.
    #[test]
    fn dense_bitwise_tier_is_bit_identical(
        batch in 1usize..4,
        in_features in 1usize..35,
        out_features in 1usize..19,
        seed in 0u64..u64::MAX,
    ) {
        let spec = MacSpec::Dense(DenseSpec { batch, in_features, out_features });
        assert_bitwise_tier_matches_oracle(&spec, seed)?;
    }

    /// MatMul, both storage orders; `n` crosses the 8-lane boundary for the
    /// transposed row-dot kernel, `k` for the contraction.
    #[test]
    fn matmul_bitwise_tier_is_bit_identical(
        batch in 1usize..3,
        m in 1usize..5,
        k in 1usize..21,
        n in 1usize..13,
        transpose_b in prop_oneof![Just(false), Just(true)],
        seed in 0u64..u64::MAX,
    ) {
        let spec = MacSpec::MatMul(MatMulSpec { batch, m, k, n, transpose_b });
        assert_bitwise_tier_matches_oracle(&spec, seed)?;
    }

    /// Conv with stride / padding / dilation / groups variation; `in_w`
    /// crosses the 8-lane boundary of the row-accumulate kernel.
    #[test]
    fn conv_bitwise_tier_is_bit_identical(
        in_c_per_group in 1usize..3,
        groups in 1usize..3,
        in_h in 1usize..7,
        in_w in 1usize..12,
        kh in 1usize..4,
        kw in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        dilation in 1usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let spec = MacSpec::Conv(ConvSpec {
            batch: 1 + (seed % 2) as usize,
            in_c: in_c_per_group * groups,
            in_h,
            in_w,
            out_c: 2 * groups,
            kh,
            kw,
            stride: (stride, stride),
            padding: (padding, padding),
            dilation: (dilation, dilation),
            groups,
        });
        assert_bitwise_tier_matches_oracle(&spec, seed)?;
    }

    /// The reported Fast-tier divergence equals an independent element-wise
    /// re-measurement — exact, not estimated — and the `Fast` tier itself is
    /// reproducible run-to-run.
    #[test]
    fn fast_divergence_is_exact_measurement(
        batch in 1usize..3,
        in_features in 1usize..27,
        out_features in 1usize..9,
        seed in 0u64..u64::MAX,
    ) {
        let spec = MacSpec::Dense(DenseSpec { batch, in_features, out_features });
        let (in_shape, w_shape) = operand_shapes(&spec);
        let input = adversarial_tensor(seed, in_shape);
        let weight = adversarial_tensor(seed ^ 0x5EED, w_shape);
        let ops = Operands { input: &input, weight: &weight };

        let mut scratch = KernelScratch::new();
        let mut bitwise = vec![0.0f32; spec.out_len()];
        let mut fast = vec![0.0f32; spec.out_len()];
        let mut fast2 = vec![0.0f32; spec.out_len()];
        spec.forward_tier_into_scratch(&ops, &mut bitwise, &mut scratch, MacTier::Bitwise);
        spec.forward_tier_into_scratch(&ops, &mut fast, &mut scratch, MacTier::Fast);
        spec.forward_tier_into_scratch(&ops, &mut fast2, &mut scratch, MacTier::Fast);
        for (a, b) in fast.iter().zip(&fast2) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "Fast tier must be deterministic");
        }
        // (Re-running the *same* code location is exactly reproducible,
        // payloads included — only cross-location comparison canonicalizes.)

        let mut expected = 0.0f32;
        for (a, b) in bitwise.iter().zip(&fast) {
            if a.to_bits() == b.to_bits() {
                continue;
            }
            let d = (a - b).abs();
            expected = expected.max(if d.is_nan() { f32::INFINITY } else { d });
        }
        let reported = spec.fast_divergence(&ops);
        prop_assert_eq!(
            reported.to_bits(),
            expected.to_bits(),
            "fast_divergence must equal the element-wise measurement"
        );
    }

    /// Conv and non-transposed MatMul keep their bitwise kernels under the
    /// `Fast` tier (they are already output-parallel), so their divergence
    /// is exactly zero by construction.
    #[test]
    fn fast_tier_divergence_is_zero_for_output_parallel_kernels(seed in 0u64..u64::MAX) {
        let conv = MacSpec::Conv(ConvSpec {
            batch: 1,
            in_c: 3,
            in_h: 5,
            in_w: 6,
            out_c: 4,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            padding: (1, 1),
            dilation: (1, 1),
            groups: 1,
        });
        let mm = MacSpec::MatMul(MatMulSpec { batch: 2, m: 3, k: 9, n: 5, transpose_b: false });
        for spec in [conv, mm] {
            let (in_shape, w_shape) = operand_shapes(&spec);
            let input = adversarial_tensor(seed, in_shape);
            let weight = adversarial_tensor(seed ^ 0x77, w_shape);
            let ops = Operands { input: &input, weight: &weight };
            prop_assert_eq!(spec.fast_divergence(&ops).to_bits(), 0.0f32.to_bits());
        }
    }

    /// The windowed conv kernel writes bits identical to the full kernel
    /// inside the window and leaves everything outside untouched.
    #[test]
    fn conv_window_kernel_matches_full_kernel(
        in_h in 1usize..7,
        in_w in 1usize..10,
        kh in 1usize..4,
        kw in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        h0 in 0usize..8,
        hspan in 0usize..8,
        w0 in 0usize..10,
        wspan in 0usize..10,
        seed in 0u64..u64::MAX,
    ) {
        let c = ConvSpec {
            batch: 2,
            in_c: 2,
            in_h,
            in_w,
            out_c: 3,
            kh,
            kw,
            stride: (stride, stride),
            padding: (padding, padding),
            dilation: (1, 1),
            groups: 1,
        };
        let (oh, ow) = (c.out_h(), c.out_w());
        let spec = MacSpec::Conv(c);
        let (in_shape, w_shape) = operand_shapes(&spec);
        let input = adversarial_tensor(seed, in_shape);
        let weight = adversarial_tensor(seed ^ 0xC0FFEE, w_shape);
        let ops = Operands { input: &input, weight: &weight };

        let mut scratch = KernelScratch::new();
        let mut full = vec![0.0f32; spec.out_len()];
        spec.forward_into_scratch(&ops, &mut full, &mut scratch);

        const SENTINEL: f32 = 7777.5;
        let mut windowed = vec![SENTINEL; spec.out_len()];
        let window = ((h0, h0 + hspan), (w0, w0 + wspan));
        prop_assert!(spec.forward_region_into_scratch(
            &ops, &mut windowed, &mut scratch, window.0, window.1
        ));

        let (h0c, h1c) = (window.0.0.min(oh), window.0.1.min(oh));
        let (w0c, w1c) = (window.1.0.min(ow), window.1.1.min(ow));
        for (off, got) in windowed.iter().enumerate() {
            let y = (off / ow) % oh;
            let x = off % ow;
            let inside = y >= h0c && y < h1c && x >= w0c && x < w1c;
            if inside {
                prop_assert_eq!(canon_bits(*got), canon_bits(full[off]), "window bits at {}", off);
            } else {
                prop_assert_eq!(got.to_bits(), SENTINEL.to_bits(), "outside window at {}", off);
            }
        }
    }

    /// `conv_out_window` is a conservative superset: every output whose
    /// receptive field touches the input window must land inside the mapped
    /// output window (brute-forced over all taps).
    #[test]
    fn conv_out_window_covers_receptive_fields(
        dim in 1usize..9,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        dilation in 1usize..3,
        lo in 0usize..9,
        span in 0usize..9,
    ) {
        let out_dim = {
            let span_needed = dilation * (k - 1) + 1;
            let padded = dim + 2 * padding;
            if padded < span_needed { 0 } else { (padded - span_needed) / stride + 1 }
        };
        let hi = (lo + span).min(dim);
        let lo = lo.min(hi);
        let (out_lo, out_hi) = conv_out_window((lo, hi), k, stride, padding, dilation, out_dim);
        prop_assert!(out_hi <= out_dim);
        for oy in 0..out_dim {
            let mut touches = false;
            for tap in 0..k {
                let coord = oy * stride + tap * dilation;
                if coord >= padding {
                    let iy = coord - padding;
                    if iy < dim && iy >= lo && iy < hi {
                        touches = true;
                    }
                }
            }
            if touches {
                prop_assert!(
                    oy >= out_lo && oy < out_hi,
                    "output {} touches input window [{}, {}) but mapped window is [{}, {})",
                    oy, lo, hi, out_lo, out_hi
                );
            }
        }
    }
}

/// Pinned Fast-tier divergence: the 4-lane tree reduction
/// `(l0+l1)+(l2+l3)` loses the `+1.0` that the sequential order keeps, so
/// the reported divergence is exactly `1.0` — a deliberate catastrophic-
/// cancellation construction, not a tolerance check.
#[test]
fn fast_divergence_pinned_cancellation_case() {
    let spec = MacSpec::Dense(DenseSpec {
        batch: 1,
        in_features: 4,
        out_features: 1,
    });
    let input = Tensor::from_vec(vec![1, 4], vec![1.0e8, 1.0, -1.0e8, 1.0]).unwrap();
    let weight = Tensor::from_vec(vec![1, 4], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
    let ops = Operands {
        input: &input,
        weight: &weight,
    };
    // Sequential: ((1e8 + 1) + -1e8) + 1 = 1.0  (the first +1 is absorbed).
    // Tree: (1e8 + 1) + (-1e8 + 1) = 1e8 - 1e8 = 0.0 (both +1s absorbed).
    assert_eq!(spec.compute_at(&ops, 0, None), 1.0);
    assert_eq!(spec.fast_divergence(&ops), 1.0);

    // And a case where the tiers agree exactly: sums representable at every
    // association order diverge by exactly 0.
    let input = Tensor::from_vec(vec![1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
    let ops = Operands {
        input: &input,
        weight: &weight,
    };
    assert_eq!(spec.fast_divergence(&ops), 0.0);
}
