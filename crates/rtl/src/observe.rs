//! Extraction of observed fault effects from register-level runs.

use fidelity_dnn::tensor::Tensor;

use crate::engine::RunResult;

/// The observable effect of one injected fault: the golden reference the
/// paper's validation compares software fault models against (Sec. IV-B).
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedFault {
    /// Flat offsets of output neurons that differ from the fault-free run,
    /// in ascending order.
    pub faulty_neurons: Vec<usize>,
    /// The faulty values, parallel to `faulty_neurons`.
    pub faulty_values: Vec<f32>,
    /// Whether the run hit the watchdog (system time-out).
    pub timed_out: bool,
}

impl ObservedFault {
    /// Diffs a faulty run against the fault-free output.
    ///
    /// # Panics
    ///
    /// Panics if the two outputs have different shapes (they come from the
    /// same engine, so this indicates a bug).
    pub fn from_run(clean: &Tensor, result: &RunResult) -> Self {
        let faulty_neurons = clean
            .diff_indices(&result.output, 0.0)
            .expect("same engine produces same shape");
        let faulty_values = faulty_neurons
            .iter()
            .map(|&i| result.output.data()[i])
            .collect();
        ObservedFault {
            faulty_neurons,
            faulty_values,
            timed_out: result.timed_out,
        }
    }

    /// Whether the fault had no observable effect.
    pub fn is_masked(&self) -> bool {
        self.faulty_neurons.is_empty() && !self.timed_out
    }

    /// Number of faulty neurons (the observed reuse factor).
    pub fn reuse_factor(&self) -> usize {
        self.faulty_neurons.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_when_identical() {
        let clean = Tensor::from_slice(&[1.0, 2.0]);
        let result = RunResult {
            output: clean.clone(),
            cycles: 10,
            timed_out: false,
        };
        let obs = ObservedFault::from_run(&clean, &result);
        assert!(obs.is_masked());
        assert_eq!(obs.reuse_factor(), 0);
    }

    #[test]
    fn diff_extraction() {
        let clean = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let result = RunResult {
            output: Tensor::from_slice(&[1.0, -2.0, f32::NAN]),
            cycles: 10,
            timed_out: false,
        };
        let obs = ObservedFault::from_run(&clean, &result);
        assert_eq!(obs.faulty_neurons, vec![1, 2]);
        assert_eq!(obs.faulty_values[0], -2.0);
        assert!(obs.faulty_values[1].is_nan());
        assert!(!obs.is_masked());
    }

    #[test]
    fn timeout_is_not_masked() {
        let clean = Tensor::from_slice(&[1.0]);
        let result = RunResult {
            output: clean.clone(),
            cycles: 10,
            timed_out: true,
        };
        let obs = ObservedFault::from_run(&clean, &result);
        assert!(!obs.is_masked());
    }
}
