//! The simulated engine's flip-flop inventory and fault-site addressing.

use std::fmt;

use fidelity_accel::ff::{FfCategory, PipelineStage, VarType};

/// Identifies one flip-flop (register) of the simulated engine.
///
/// The inventory mirrors the datapath of Fig. 2(a) and the control structure
/// described in Sec. III-B3 of the paper: fetch-path registers feeding the
/// on-chip buffer, operand registers between the buffer and the MAC lanes,
/// per-lane accumulators and output registers, per-lane write-valid bits
/// (local control), and the configuration/sequencing registers (global
/// control).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FfId {
    /// Fetch-path register for activation values (before the buffer).
    FetchInput,
    /// Fetch-path register for weight values (before the buffer).
    FetchWeight,
    /// The broadcast input operand register feeding all MAC lanes.
    InputOperand,
    /// The weight operand register of one MAC lane (weight-stationary).
    WeightOperand {
        /// MAC lane index.
        lane: usize,
    },
    /// A partial-sum accumulator slot (one output neuron of the current
    /// stripe). Stored at f32 accumulator width.
    Accumulator {
        /// MAC lane index.
        lane: usize,
        /// Stripe slot (output position within the stripe).
        slot: usize,
    },
    /// The output register of one lane during writeback (value already
    /// rounded to the deployment precision).
    OutputReg {
        /// MAC lane index.
        lane: usize,
    },
    /// The write-valid bit of one lane (local control).
    OutputValid {
        /// MAC lane index.
        lane: usize,
    },
    /// A configuration register (global control), by register-file index.
    Config {
        /// Index into [`crate::layer::cfg::NAMES`].
        index: usize,
    },
    /// A sequencing counter (global control).
    Sequencer {
        /// Which counter.
        counter: SeqCounter,
    },
}

/// The engine's loop counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeqCounter {
    /// Output-channel group.
    Group,
    /// Output-position stripe.
    Stripe,
    /// Kernel / contraction step.
    Kernel,
    /// Cycle within the stripe.
    Cycle,
}

impl SeqCounter {
    /// Every sequencing counter.
    pub const ALL: [SeqCounter; 4] = [
        SeqCounter::Group,
        SeqCounter::Stripe,
        SeqCounter::Kernel,
        SeqCounter::Cycle,
    ];
}

impl FfId {
    /// Enumerates the complete flip-flop inventory of an engine instance
    /// with `lanes` MAC lanes and `stripe` accumulator slots per lane:
    /// every register [`crate::engine::RtlEngine`] instantiates, each
    /// addressable as a fault site. Static analyses iterate this set to
    /// prove that every FF maps to a censused Table-II category.
    pub fn inventory(lanes: usize, stripe: usize) -> Vec<FfId> {
        let mut ffs = vec![FfId::FetchInput, FfId::FetchWeight, FfId::InputOperand];
        for lane in 0..lanes {
            ffs.push(FfId::WeightOperand { lane });
            for slot in 0..stripe {
                ffs.push(FfId::Accumulator { lane, slot });
            }
            ffs.push(FfId::OutputReg { lane });
            ffs.push(FfId::OutputValid { lane });
        }
        for index in 0..crate::layer::cfg::COUNT {
            ffs.push(FfId::Config { index });
        }
        for counter in SeqCounter::ALL {
            ffs.push(FfId::Sequencer { counter });
        }
        ffs
    }

    /// The Table-II category this FF belongs to.
    pub fn category(self) -> FfCategory {
        match self {
            FfId::FetchInput => FfCategory::Datapath {
                stage: PipelineStage::BeforeBuffer,
                var: VarType::Input,
            },
            FfId::FetchWeight => FfCategory::Datapath {
                stage: PipelineStage::BeforeBuffer,
                var: VarType::Weight,
            },
            FfId::InputOperand => FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Input,
            },
            FfId::WeightOperand { .. } => FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Weight,
            },
            FfId::Accumulator { .. } => FfCategory::Datapath {
                stage: PipelineStage::AfterMac,
                var: VarType::PartialSum,
            },
            FfId::OutputReg { .. } => FfCategory::Datapath {
                stage: PipelineStage::AfterMac,
                var: VarType::Output,
            },
            FfId::OutputValid { .. } => FfCategory::LocalControl,
            FfId::Config { .. } | FfId::Sequencer { .. } => FfCategory::GlobalControl,
        }
    }
}

impl fmt::Display for FfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FfId::FetchInput => write!(f, "fetch.input"),
            FfId::FetchWeight => write!(f, "fetch.weight"),
            FfId::InputOperand => write!(f, "operand.input"),
            FfId::WeightOperand { lane } => write!(f, "operand.weight[{lane}]"),
            FfId::Accumulator { lane, slot } => write!(f, "acc[{lane}][{slot}]"),
            FfId::OutputReg { lane } => write!(f, "out.reg[{lane}]"),
            FfId::OutputValid { lane } => write!(f, "out.valid[{lane}]"),
            FfId::Config { index } => write!(f, "cfg[{index}]"),
            FfId::Sequencer { counter } => write!(f, "seq.{counter:?}"),
        }
    }
}

/// A fault site: flip `bit` of `ff` at the start of `cycle` (after that
/// cycle's register loads, before its combinational use — the standard
/// single-cycle single-FF bit-flip abstraction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    /// Target flip-flop.
    pub ff: FfId,
    /// Bit index within the register.
    pub bit: u32,
    /// Injection cycle.
    pub cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_table2() {
        assert_eq!(
            FfId::FetchInput.category(),
            FfCategory::Datapath {
                stage: PipelineStage::BeforeBuffer,
                var: VarType::Input
            }
        );
        assert_eq!(
            FfId::WeightOperand { lane: 3 }.category(),
            FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Weight
            }
        );
        assert_eq!(
            FfId::OutputValid { lane: 0 }.category(),
            FfCategory::LocalControl
        );
        assert_eq!(
            FfId::Sequencer {
                counter: SeqCounter::Kernel
            }
            .category(),
            FfCategory::GlobalControl
        );
        assert_eq!(
            FfId::Config { index: 2 }.category(),
            FfCategory::GlobalControl
        );
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(
            FfId::Accumulator { lane: 1, slot: 2 }.to_string(),
            "acc[1][2]"
        );
    }

    #[test]
    fn inventory_is_complete_and_duplicate_free() {
        let (lanes, stripe) = (3, 2);
        let inv = FfId::inventory(lanes, stripe);
        // 2 fetch + 1 input operand + per-lane (weight + stripe accs +
        // out + valid) + config file + sequencers.
        let expected = 3 + lanes * (3 + stripe) + crate::layer::cfg::COUNT + SeqCounter::ALL.len();
        assert_eq!(inv.len(), expected);
        let unique: std::collections::HashSet<FfId> = inv.iter().copied().collect();
        assert_eq!(unique.len(), inv.len());
        // Every FF has a category (totality is enforced by the type system;
        // spot-check the variants added through the inventory).
        assert!(inv
            .iter()
            .any(|ff| ff.category() == FfCategory::LocalControl));
        assert!(inv
            .iter()
            .any(|ff| ff.category() == FfCategory::GlobalControl));
    }
}
