//! The simulated engine's flip-flop inventory and fault-site addressing.

use std::fmt;

use fidelity_accel::ff::{FfCategory, PipelineStage, VarType};

/// Identifies one flip-flop (register) of the simulated engine.
///
/// The inventory mirrors the datapath of Fig. 2(a) and the control structure
/// described in Sec. III-B3 of the paper: fetch-path registers feeding the
/// on-chip buffer, operand registers between the buffer and the MAC lanes,
/// per-lane accumulators and output registers, per-lane write-valid bits
/// (local control), and the configuration/sequencing registers (global
/// control).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FfId {
    /// Fetch-path register for activation values (before the buffer).
    FetchInput,
    /// Fetch-path register for weight values (before the buffer).
    FetchWeight,
    /// The broadcast input operand register feeding all MAC lanes.
    InputOperand,
    /// The weight operand register of one MAC lane (weight-stationary).
    WeightOperand {
        /// MAC lane index.
        lane: usize,
    },
    /// A partial-sum accumulator slot (one output neuron of the current
    /// stripe). Stored at f32 accumulator width.
    Accumulator {
        /// MAC lane index.
        lane: usize,
        /// Stripe slot (output position within the stripe).
        slot: usize,
    },
    /// The output register of one lane during writeback (value already
    /// rounded to the deployment precision).
    OutputReg {
        /// MAC lane index.
        lane: usize,
    },
    /// The write-valid bit of one lane (local control).
    OutputValid {
        /// MAC lane index.
        lane: usize,
    },
    /// A configuration register (global control), by register-file index.
    Config {
        /// Index into [`crate::layer::cfg::NAMES`].
        index: usize,
    },
    /// A sequencing counter (global control).
    Sequencer {
        /// Which counter.
        counter: SeqCounter,
    },
}

/// The engine's loop counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeqCounter {
    /// Output-channel group.
    Group,
    /// Output-position stripe.
    Stripe,
    /// Kernel / contraction step.
    Kernel,
    /// Cycle within the stripe.
    Cycle,
}

impl FfId {
    /// The Table-II category this FF belongs to.
    pub fn category(self) -> FfCategory {
        match self {
            FfId::FetchInput => FfCategory::Datapath {
                stage: PipelineStage::BeforeBuffer,
                var: VarType::Input,
            },
            FfId::FetchWeight => FfCategory::Datapath {
                stage: PipelineStage::BeforeBuffer,
                var: VarType::Weight,
            },
            FfId::InputOperand => FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Input,
            },
            FfId::WeightOperand { .. } => FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Weight,
            },
            FfId::Accumulator { .. } => FfCategory::Datapath {
                stage: PipelineStage::AfterMac,
                var: VarType::PartialSum,
            },
            FfId::OutputReg { .. } => FfCategory::Datapath {
                stage: PipelineStage::AfterMac,
                var: VarType::Output,
            },
            FfId::OutputValid { .. } => FfCategory::LocalControl,
            FfId::Config { .. } | FfId::Sequencer { .. } => FfCategory::GlobalControl,
        }
    }
}

impl fmt::Display for FfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FfId::FetchInput => write!(f, "fetch.input"),
            FfId::FetchWeight => write!(f, "fetch.weight"),
            FfId::InputOperand => write!(f, "operand.input"),
            FfId::WeightOperand { lane } => write!(f, "operand.weight[{lane}]"),
            FfId::Accumulator { lane, slot } => write!(f, "acc[{lane}][{slot}]"),
            FfId::OutputReg { lane } => write!(f, "out.reg[{lane}]"),
            FfId::OutputValid { lane } => write!(f, "out.valid[{lane}]"),
            FfId::Config { index } => write!(f, "cfg[{index}]"),
            FfId::Sequencer { counter } => write!(f, "seq.{counter:?}"),
        }
    }
}

/// A fault site: flip `bit` of `ff` at the start of `cycle` (after that
/// cycle's register loads, before its combinational use — the standard
/// single-cycle single-FF bit-flip abstraction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    /// Target flip-flop.
    pub ff: FfId,
    /// Bit index within the register.
    pub bit: u32,
    /// Injection cycle.
    pub cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_table2() {
        assert_eq!(
            FfId::FetchInput.category(),
            FfCategory::Datapath {
                stage: PipelineStage::BeforeBuffer,
                var: VarType::Input
            }
        );
        assert_eq!(
            FfId::WeightOperand { lane: 3 }.category(),
            FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Weight
            }
        );
        assert_eq!(FfId::OutputValid { lane: 0 }.category(), FfCategory::LocalControl);
        assert_eq!(
            FfId::Sequencer {
                counter: SeqCounter::Kernel
            }
            .category(),
            FfCategory::GlobalControl
        );
        assert_eq!(FfId::Config { index: 2 }.category(), FfCategory::GlobalControl);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(FfId::Accumulator { lane: 1, slot: 2 }.to_string(), "acc[1][2]");
    }
}
