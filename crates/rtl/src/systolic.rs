//! A second register-level engine with an Eyeriss-like row-stationary
//! dataflow, used to demonstrate that the FIdelity methodology ports across
//! accelerator designs (the paper's Fig. 2(b) family).
//!
//! Geometry: a column of `pe_rows` processing elements computes `pe_rows`
//! consecutive output rows in parallel. Weights are *broadcast* across the
//! PEs (one shared weight operand register, reloaded every cycle — the
//! column-travelling reuse of Fig. 2(b) target b1, so a weight-register
//! fault corrupts up to `pe_rows` neurons in one output column). Each PE
//! holds its *input* operand for `chan_reuse` consecutive output channels
//! (Fig. 2(b) target b2's within-PE temporal reuse, so an input-register
//! fault corrupts up to `chan_reuse` neurons in consecutive channels).
//!
//! Design-point note: the paper's b2 example additionally forwards inputs
//! diagonally between PEs (RF = k·t). This engine realizes the simpler
//! private-input variant (RF ≤ t); the dataflow description used to derive
//! its software fault models is generated accordingly, which is precisely
//! the point of Reuse Factor Analysis — the models follow whatever reuse
//! the design actually implements.

use fidelity_accel::ff::{FfCategory, PipelineStage, VarType};
use fidelity_dnn::macspec::MacSpec;
use fidelity_dnn::tensor::Tensor;

use crate::layer::{cfg, input_addr, weight_addr, RtlLayer};

/// Flip-flop inventory of the systolic engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SysFfId {
    /// Fetch-path register for activations.
    FetchInput,
    /// Fetch-path register for weights.
    FetchWeight,
    /// Input operand register of one PE (held for `chan_reuse` cycles).
    InputOperand {
        /// PE (output-row) index.
        pe: usize,
    },
    /// The shared broadcast weight operand register (reloaded every cycle).
    WeightOperand,
    /// Accumulator slot: one output neuron of the current (row, channel)
    /// block at the current column.
    Accumulator {
        /// PE (output-row) index.
        pe: usize,
        /// Channel slot within the block.
        slot: usize,
    },
    /// Output register of one PE during writeback.
    OutputReg {
        /// PE index.
        pe: usize,
    },
    /// Write-valid bit of one PE (local control).
    OutputValid {
        /// PE index.
        pe: usize,
    },
    /// Configuration register (global control).
    Config {
        /// Index into [`crate::layer::cfg::NAMES`].
        index: usize,
    },
    /// Sequencer counter (global control).
    Sequencer {
        /// Which counter.
        counter: SysCounter,
    },
}

/// The systolic engine's loop counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SysCounter {
    /// Output-channel block.
    ChanBlock,
    /// Output-row block.
    RowBlock,
    /// Output column.
    Column,
    /// Kernel step.
    Kernel,
    /// Cycle within the channel block.
    Cycle,
}

impl SysCounter {
    /// Every sequencing counter.
    pub const ALL: [SysCounter; 5] = [
        SysCounter::ChanBlock,
        SysCounter::RowBlock,
        SysCounter::Column,
        SysCounter::Kernel,
        SysCounter::Cycle,
    ];
}

impl SysFfId {
    /// Enumerates the complete flip-flop inventory of a systolic engine
    /// instance with `pe_rows` PE rows and `chan_slots` accumulator slots
    /// per PE (the channel-block length). The NVDLA-bank counterpart is
    /// [`crate::ffid::FfId::inventory`].
    pub fn inventory(pe_rows: usize, chan_slots: usize) -> Vec<SysFfId> {
        let mut ffs = vec![
            SysFfId::FetchInput,
            SysFfId::FetchWeight,
            SysFfId::WeightOperand,
        ];
        for pe in 0..pe_rows {
            ffs.push(SysFfId::InputOperand { pe });
            for slot in 0..chan_slots {
                ffs.push(SysFfId::Accumulator { pe, slot });
            }
            ffs.push(SysFfId::OutputReg { pe });
            ffs.push(SysFfId::OutputValid { pe });
        }
        for index in 0..crate::layer::cfg::COUNT {
            ffs.push(SysFfId::Config { index });
        }
        for counter in SysCounter::ALL {
            ffs.push(SysFfId::Sequencer { counter });
        }
        ffs
    }

    /// The Table-II category this FF belongs to.
    pub fn category(self) -> FfCategory {
        match self {
            SysFfId::FetchInput => FfCategory::Datapath {
                stage: PipelineStage::BeforeBuffer,
                var: VarType::Input,
            },
            SysFfId::FetchWeight => FfCategory::Datapath {
                stage: PipelineStage::BeforeBuffer,
                var: VarType::Weight,
            },
            SysFfId::InputOperand { .. } => FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Input,
            },
            SysFfId::WeightOperand => FfCategory::Datapath {
                stage: PipelineStage::BufferToMac,
                var: VarType::Weight,
            },
            SysFfId::Accumulator { .. } => FfCategory::Datapath {
                stage: PipelineStage::AfterMac,
                var: VarType::PartialSum,
            },
            SysFfId::OutputReg { .. } => FfCategory::Datapath {
                stage: PipelineStage::AfterMac,
                var: VarType::Output,
            },
            SysFfId::OutputValid { .. } => FfCategory::LocalControl,
            SysFfId::Config { .. } | SysFfId::Sequencer { .. } => FfCategory::GlobalControl,
        }
    }
}

/// A fault site in the systolic engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SysFaultSite {
    /// Target flip-flop.
    pub ff: SysFfId,
    /// Bit to flip.
    pub bit: u32,
    /// Injection cycle (applied after that cycle's loads, before use).
    pub cycle: u64,
}

/// What the systolic engine does at a given fault-free cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SysSchedPoint {
    /// Streaming activation word `index`.
    FetchInput {
        /// Buffer word.
        index: usize,
    },
    /// Streaming weight word `index`.
    FetchWeight {
        /// Buffer word.
        index: usize,
    },
    /// A MAC cycle.
    Compute {
        /// Channel block.
        chan_block: u64,
        /// Row block.
        row_block: u64,
        /// Output column.
        column: u64,
        /// Kernel step.
        kstep: u64,
        /// Cycle (channel slot) within the block.
        tc: u64,
        /// Effective channel-block width.
        t_eff: u64,
    },
    /// A writeback cycle (drains channel slot `tc`).
    Writeback {
        /// Channel block.
        chan_block: u64,
        /// Row block.
        row_block: u64,
        /// Output column.
        column: u64,
        /// Channel slot being drained.
        tc: u64,
        /// Effective channel-block width.
        t_eff: u64,
    },
    /// Block-advance bubble.
    Bubble,
    /// Past the end.
    Idle,
}

/// Outcome of one systolic run.
#[derive(Debug, Clone)]
pub struct SysRunResult {
    /// Produced output (unwritten neurons remain zero).
    pub output: Tensor,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Whether the watchdog fired.
    pub timed_out: bool,
}

/// The Eyeriss-like row-stationary engine for one prepared convolution.
#[derive(Debug)]
pub struct SystolicEngine {
    layer: RtlLayer,
    pe_rows: usize,
    chan_reuse: usize,
    clean: SysRunResult,
}

const CTRL_WIDTH: u32 = 16;

impl SystolicEngine {
    /// Builds the engine (convolutions only — the row-stationary mapping is
    /// defined over output rows) and runs it once fault-free.
    ///
    /// # Panics
    ///
    /// Panics if the layer is not a batch-1 convolution, if the geometry is
    /// zero, or if the fault-free run fails to terminate.
    pub fn new(layer: RtlLayer, pe_rows: usize, chan_reuse: usize) -> Self {
        assert!(pe_rows > 0 && chan_reuse > 0, "geometry must be positive");
        match &layer.spec {
            MacSpec::Conv(c) => assert_eq!(c.batch, 1, "row-stationary mapping is batch-1"),
            // Documented constructor precondition, never hit mid-campaign.
            // statcheck:allow(panic-path)
            _ => panic!("systolic engine executes convolutions"),
        }
        let mut engine = SystolicEngine {
            layer,
            pe_rows,
            chan_reuse,
            clean: SysRunResult {
                output: Tensor::zeros(vec![0]),
                cycles: 0,
                timed_out: false,
            },
        };
        let clean = engine.execute(None, u64::MAX / 2);
        assert!(!clean.timed_out, "fault-free run must terminate");
        engine.clean = clean;
        engine
    }

    /// The prepared layer.
    pub fn layer(&self) -> &RtlLayer {
        &self.layer
    }

    /// PE-column height (output rows per block).
    pub fn pe_rows(&self) -> usize {
        self.pe_rows
    }

    /// Input-register hold length (channels per block).
    pub fn chan_reuse(&self) -> usize {
        self.chan_reuse
    }

    /// Fault-free output.
    pub fn clean_output(&self) -> &Tensor {
        &self.clean.output
    }

    /// Fault-free cycle count.
    pub fn clean_cycles(&self) -> u64 {
        self.clean.cycles
    }

    /// Runs with one FF fault.
    pub fn run(&self, site: SysFaultSite) -> SysRunResult {
        self.execute(Some(site), self.clean.cycles * 4 + 1024)
    }

    /// Every FF with its bit width.
    pub fn inventory(&self) -> Vec<(SysFfId, u32)> {
        let ib = self.layer.input_codec.precision().bits();
        let wb = self.layer.weight_codec.precision().bits();
        let ob = self.layer.output_codec.precision().bits();
        let mut v = vec![
            (SysFfId::FetchInput, ib),
            (SysFfId::FetchWeight, wb),
            (SysFfId::WeightOperand, wb),
        ];
        for pe in 0..self.pe_rows {
            v.push((SysFfId::InputOperand { pe }, ib));
            for slot in 0..self.chan_reuse {
                v.push((SysFfId::Accumulator { pe, slot }, 32));
            }
            v.push((SysFfId::OutputReg { pe }, ob));
            v.push((SysFfId::OutputValid { pe }, 1));
        }
        for index in 0..cfg::COUNT {
            v.push((SysFfId::Config { index }, CTRL_WIDTH));
        }
        for counter in [
            SysCounter::ChanBlock,
            SysCounter::RowBlock,
            SysCounter::Column,
            SysCounter::Kernel,
            SysCounter::Cycle,
        ] {
            v.push((SysFfId::Sequencer { counter }, CTRL_WIDTH));
        }
        v
    }

    fn conv_dims(&self) -> (u64, u64, u64, u64) {
        match &self.layer.spec {
            MacSpec::Conv(c) => (
                c.out_c as u64,
                c.out_h() as u64,
                c.out_w() as u64,
                (c.in_c * c.kh * c.kw) as u64,
            ),
            _ => unreachable!("constructor enforces conv"),
        }
    }

    /// The fault-free schedule at `cycle` (arithmetic mirror of the
    /// sequencer, used to derive software fault models for concrete sites).
    pub fn schedule_at(&self, cycle: u64) -> SysSchedPoint {
        let n_in = self.layer.input.len() as u64;
        let n_w = self.layer.weight.len() as u64;
        if cycle < n_in {
            return SysSchedPoint::FetchInput {
                index: cycle as usize,
            };
        }
        if cycle < n_in + n_w {
            return SysSchedPoint::FetchWeight {
                index: (cycle - n_in) as usize,
            };
        }
        let mut rem = cycle - n_in - n_w;
        let (out_c, out_h, out_w, ksteps) = self.conv_dims();
        let t = self.chan_reuse as u64;
        let k = self.pe_rows as u64;
        let chan_blocks = out_c.div_ceil(t);
        let row_blocks = out_h.div_ceil(k);
        for cb in 0..chan_blocks {
            let t_eff = (out_c - cb * t).min(t);
            for rb in 0..row_blocks {
                for col in 0..out_w {
                    let compute = ksteps * t_eff;
                    if rem < compute {
                        return SysSchedPoint::Compute {
                            chan_block: cb,
                            row_block: rb,
                            column: col,
                            kstep: rem / t_eff,
                            tc: rem % t_eff,
                            t_eff,
                        };
                    }
                    rem -= compute;
                    if rem < t_eff {
                        return SysSchedPoint::Writeback {
                            chan_block: cb,
                            row_block: rb,
                            column: col,
                            tc: rem,
                            t_eff,
                        };
                    }
                    rem -= t_eff;
                    if rem == 0 {
                        return SysSchedPoint::Bubble;
                    }
                    rem -= 1;
                }
            }
        }
        SysSchedPoint::Idle
    }

    #[allow(unused_assignments)]
    fn execute(&self, fault: Option<SysFaultSite>, watchdog: u64) -> SysRunResult {
        let layer = &self.layer;
        let k = self.pe_rows;
        let t = self.chan_reuse;

        let mut cfgw = layer.config_words();
        cfgw[cfg::STRIPE] = t as u32;
        let mut cbuf_input = vec![0u32; layer.input.len()];
        let mut cbuf_weight = vec![0u32; layer.weight.len()];
        let mut fetch_input_reg = 0u32;
        let mut fetch_weight_reg = 0u32;
        let mut in_reg = vec![0u32; k];
        let mut in_gated = vec![true; k];
        let mut w_reg = 0u32;
        let mut w_gated = true;
        let mut acc = vec![vec![0.0f32; t]; k];
        let mut out_reg = vec![0u32; k];
        let mut valid = vec![0u8; k];
        // cb, rb, col, ks, tc
        let mut seq = [0u32; 5];
        let mut out_mem = vec![0.0f32; layer.spec.out_len()];

        let mut cycle: u64 = 0;
        let mut timed_out = false;

        macro_rules! apply_fault {
            () => {
                if let Some(site) = fault {
                    if site.cycle == cycle {
                        let mask = 1u32 << (site.bit.min(31));
                        match site.ff {
                            SysFfId::FetchInput => fetch_input_reg ^= mask,
                            SysFfId::FetchWeight => fetch_weight_reg ^= mask,
                            SysFfId::InputOperand { pe } => {
                                if pe < k {
                                    in_reg[pe] ^= mask;
                                }
                            }
                            SysFfId::WeightOperand => w_reg ^= mask,
                            SysFfId::Accumulator { pe, slot } => {
                                if pe < k && slot < t {
                                    acc[pe][slot] = f32::from_bits(acc[pe][slot].to_bits() ^ mask);
                                }
                            }
                            SysFfId::OutputReg { pe } => {
                                if pe < k {
                                    out_reg[pe] ^= mask;
                                }
                            }
                            SysFfId::OutputValid { pe } => {
                                if pe < k {
                                    valid[pe] ^= 1;
                                }
                            }
                            SysFfId::Config { index } => {
                                if index < cfgw.len() {
                                    cfgw[index] ^= mask & ((1 << CTRL_WIDTH) - 1);
                                }
                            }
                            SysFfId::Sequencer { counter } => {
                                let idx = match counter {
                                    SysCounter::ChanBlock => 0,
                                    SysCounter::RowBlock => 1,
                                    SysCounter::Column => 2,
                                    SysCounter::Kernel => 3,
                                    SysCounter::Cycle => 4,
                                };
                                seq[idx] ^= mask & ((1 << CTRL_WIDTH) - 1);
                            }
                        }
                    }
                }
            };
        }

        // Fetch phase (identical to the NVDLA-like engine).
        for (i, &value) in layer.input.data().iter().enumerate() {
            fetch_input_reg = layer.input_codec.encode(value);
            apply_fault!();
            cbuf_input[i] = fetch_input_reg;
            cycle += 1;
        }
        for (i, &value) in layer.weight.data().iter().enumerate() {
            fetch_weight_reg = layer.weight_codec.encode(value);
            apply_fault!();
            cbuf_weight[i] = fetch_weight_reg;
            cycle += 1;
        }

        #[derive(PartialEq)]
        enum Phase {
            Compute,
            Writeback,
        }
        let mut phase = Phase::Compute;

        loop {
            if cycle >= watchdog {
                timed_out = true;
                break;
            }
            let out_c = cfgw[cfg::CHANNELS] as u64;
            let out_h = cfgw[cfg::OUT_H] as u64;
            let out_w = cfgw[cfg::OUT_W] as u64;
            let ksteps = cfgw[cfg::KSTEPS] as u64;
            let tt = cfgw[cfg::STRIPE] as u64;
            if tt == 0 {
                apply_fault!();
                cycle += 1;
                continue;
            }
            let chan_blocks = out_c.div_ceil(tt);
            let row_blocks = out_h.div_ceil(self.pe_rows as u64);
            if (seq[0] as u64) >= chan_blocks {
                break;
            }
            let cb_base = seq[0] as u64 * tt;
            let t_eff = if out_c > cb_base {
                (out_c - cb_base).min(tt)
            } else {
                0
            };
            // Output "position" p in the layer's (position, channel)
            // coordinate system: p = row * out_w + column (batch = 1).
            let row_base = seq[1] as u64 * self.pe_rows as u64;
            let col = seq[2] as u64;

            match phase {
                Phase::Compute => {
                    if t_eff == 0
                        || ksteps == 0
                        || col >= out_w
                        || (seq[3] as u64) >= ksteps
                        || row_base >= out_h
                    {
                        apply_fault!();
                        if t_eff == 0 || col >= out_w || row_base >= out_h {
                            advance_block(&mut seq, out_w, row_blocks);
                        } else {
                            phase = Phase::Writeback;
                            seq[4] = 0;
                        }
                        cycle += 1;
                        continue;
                    }
                    if seq[3] == 0 && seq[4] == 0 {
                        for pe_acc in &mut acc {
                            for slot in pe_acc.iter_mut() {
                                *slot = 0.0;
                            }
                        }
                    }
                    // Input loads: once per kernel step (held for the whole
                    // channel block).
                    if seq[4] == 0 {
                        for pe in 0..k {
                            let row = row_base + pe as u64;
                            let p = row * out_w + col;
                            match (row < out_h)
                                .then(|| input_addr(&cfgw, p, seq[3] as u64, cbuf_input.len()))
                                .flatten()
                            {
                                Some(a) => {
                                    in_reg[pe] = cbuf_input[a as usize];
                                    in_gated[pe] = false;
                                }
                                None => in_gated[pe] = true,
                            }
                        }
                    }
                    // Weight load: every cycle (channel changes per cycle),
                    // broadcast to all PEs.
                    let c = cb_base + seq[4] as u64;
                    match (c < out_c)
                        .then(|| weight_addr(&cfgw, c, seq[3] as u64, cbuf_weight.len()))
                        .flatten()
                    {
                        Some(a) => {
                            w_reg = cbuf_weight[a as usize];
                            w_gated = false;
                        }
                        None => w_gated = true,
                    }
                    apply_fault!();
                    // Use.
                    if !w_gated {
                        let w = layer.weight_codec.decode(w_reg);
                        let slot = (seq[4] as usize).min(t - 1);
                        for pe in 0..k {
                            if !in_gated[pe] {
                                let x = layer.input_codec.decode(in_reg[pe]);
                                acc[pe][slot] += x * w;
                            }
                        }
                    }
                    // Advance: tc (channel) inner, then kernel step.
                    seq[4] = seq[4].wrapping_add(1);
                    if (seq[4] as u64) >= t_eff {
                        seq[4] = 0;
                        seq[3] = seq[3].wrapping_add(1);
                        if (seq[3] as u64) >= ksteps {
                            seq[3] = 0;
                            phase = Phase::Writeback;
                        }
                    }
                }
                Phase::Writeback => {
                    if t_eff == 0 || (seq[4] as u64) >= t_eff {
                        apply_fault!();
                        seq[4] = 0;
                        phase = Phase::Compute;
                        advance_block(&mut seq, out_w, row_blocks);
                        cycle += 1;
                        continue;
                    }
                    let slot = (seq[4] as usize).min(t - 1);
                    let c = cb_base + seq[4] as u64;
                    for pe in 0..k {
                        let row = row_base + pe as u64;
                        let value = layer.output_codec.quantize(acc[pe][slot]);
                        out_reg[pe] = layer.output_codec.encode(value);
                        valid[pe] = u8::from(row < out_h && c < out_c);
                    }
                    apply_fault!();
                    for pe in 0..k {
                        let row = row_base + pe as u64;
                        if valid[pe] & 1 == 1 && row < out_h && c < out_c {
                            let p = row * out_w + col;
                            if let Some(a) = crate::layer::out_addr(&cfgw, p, c, out_mem.len()) {
                                out_mem[a as usize] = layer.output_codec.decode(out_reg[pe]);
                            }
                        }
                    }
                    seq[4] = seq[4].wrapping_add(1);
                }
            }
            cycle += 1;
        }

        let output = Tensor::from_vec(layer.spec.out_shape(), out_mem)
            // The buffer is allocated from the same spec two lines up.
            // statcheck:allow(panic-path)
            .expect("output buffer sized from spec");
        SysRunResult {
            output,
            cycles: cycle,
            timed_out,
        }
    }
}

/// Advances (column → row block → channel block) after a block completes.
fn advance_block(seq: &mut [u32; 5], out_w: u64, row_blocks: u64) {
    seq[3] = 0;
    seq[4] = 0;
    seq[2] = seq[2].wrapping_add(1);
    if (seq[2] as u64) >= out_w {
        seq[2] = 0;
        seq[1] = seq[1].wrapping_add(1);
        if (seq[1] as u64) >= row_blocks {
            seq[1] = 0;
            seq[0] = seq[0].wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_dnn::init::uniform_tensor;
    use fidelity_dnn::macspec::{ConvSpec, Operands};
    use fidelity_dnn::precision::{Precision, ValueCodec};

    fn conv_layer() -> RtlLayer {
        let spec = ConvSpec {
            batch: 1,
            in_c: 2,
            in_h: 6,
            in_w: 5,
            out_c: 5,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            padding: (1, 1),
            dilation: (1, 1),
            groups: 1,
        };
        let codec = ValueCodec::float(Precision::Fp16);
        let input = uniform_tensor(11, vec![1, 2, 6, 5], 1.0).map(|v| codec.quantize(v));
        let weight = uniform_tensor(12, vec![5, 2, 3, 3], 0.5).map(|v| codec.quantize(v));
        RtlLayer::new(MacSpec::Conv(spec), input, weight, codec, codec, codec).unwrap()
    }

    #[test]
    fn clean_run_matches_software_layer() {
        let layer = conv_layer();
        // Awkward geometry: 4 PEs over 6 rows, 3-channel blocks over 5.
        let engine = SystolicEngine::new(layer.clone(), 4, 3);
        let ops = Operands {
            input: &layer.input,
            weight: &layer.weight,
        };
        for off in 0..layer.spec.out_len() {
            let sw = layer
                .output_codec
                .quantize(layer.spec.compute_at(&ops, off, None));
            assert_eq!(
                sw.to_bits(),
                engine.clean_output().data()[off].to_bits(),
                "neuron {off}"
            );
        }
    }

    #[test]
    fn schedule_mirrors_execution() {
        let engine = SystolicEngine::new(conv_layer(), 3, 2);
        assert_eq!(
            engine.schedule_at(engine.clean_cycles()),
            SysSchedPoint::Idle
        );
        assert_ne!(
            engine.schedule_at(engine.clean_cycles() - 1),
            SysSchedPoint::Idle
        );
        let n_in = engine.layer().input.len() as u64;
        let n_w = engine.layer().weight.len() as u64;
        match engine.schedule_at(n_in + n_w) {
            SysSchedPoint::Compute {
                chan_block: 0,
                row_block: 0,
                column: 0,
                kstep: 0,
                tc: 0,
                ..
            } => {}
            other => panic!("expected first compute cycle, got {other:?}"),
        }
    }

    #[test]
    fn weight_fault_hits_consecutive_rows_in_one_column() {
        // Fig. 2(b) target b1: RF <= pe_rows, same output column, same
        // channel, consecutive rows.
        let layer = conv_layer();
        let engine = SystolicEngine::new(layer.clone(), 4, 3);
        let mut seen_multi = false;
        for cycle in 0..engine.clean_cycles() {
            if !matches!(engine.schedule_at(cycle), SysSchedPoint::Compute { .. }) {
                continue;
            }
            let run = engine.run(SysFaultSite {
                ff: SysFfId::WeightOperand,
                bit: 13,
                cycle,
            });
            let diffs = engine
                .clean_output()
                .diff_indices(&run.output, 0.0)
                .unwrap();
            assert!(diffs.len() <= 4, "weight fault RF must be <= pe_rows");
            if diffs.len() >= 2 {
                let coords: Vec<(usize, usize)> =
                    diffs.iter().map(|&o| layer.spec.coords_of(o)).collect();
                let chans: std::collections::HashSet<usize> =
                    coords.iter().map(|&(_, c)| c).collect();
                assert_eq!(chans.len(), 1, "one channel");
                let cols: std::collections::HashSet<usize> =
                    coords.iter().map(|&(p, _)| p % 5).collect();
                assert_eq!(cols.len(), 1, "one output column");
                seen_multi = true;
                break;
            }
        }
        assert!(seen_multi, "no multi-row weight fault observed");
    }

    #[test]
    fn input_fault_hits_consecutive_channels_in_one_position() {
        // Fig. 2(b) target b2 (private-input variant): RF <= chan_reuse,
        // consecutive channels at one spatial position.
        let layer = conv_layer();
        let engine = SystolicEngine::new(layer.clone(), 4, 3);
        let mut seen_multi = false;
        for cycle in 0..engine.clean_cycles() {
            if !matches!(engine.schedule_at(cycle), SysSchedPoint::Compute { .. }) {
                continue;
            }
            let run = engine.run(SysFaultSite {
                ff: SysFfId::InputOperand { pe: 1 },
                bit: 13,
                cycle,
            });
            let diffs = engine
                .clean_output()
                .diff_indices(&run.output, 0.0)
                .unwrap();
            assert!(diffs.len() <= 3, "input fault RF must be <= chan_reuse");
            if diffs.len() >= 2 {
                let coords: Vec<(usize, usize)> =
                    diffs.iter().map(|&o| layer.spec.coords_of(o)).collect();
                let positions: std::collections::HashSet<usize> =
                    coords.iter().map(|&(p, _)| p).collect();
                assert_eq!(positions.len(), 1, "one spatial position");
                let mut chans: Vec<usize> = coords.iter().map(|&(_, c)| c).collect();
                chans.sort_unstable();
                for pair in chans.windows(2) {
                    assert_eq!(pair[1], pair[0] + 1, "consecutive channels");
                }
                seen_multi = true;
                break;
            }
        }
        assert!(seen_multi, "no multi-channel input fault observed");
    }

    #[test]
    fn accumulator_fault_is_single_neuron() {
        let engine = SystolicEngine::new(conv_layer(), 4, 3);
        for cycle in (0..engine.clean_cycles()).step_by(7) {
            let run = engine.run(SysFaultSite {
                ff: SysFfId::Accumulator { pe: 2, slot: 1 },
                bit: 30,
                cycle,
            });
            let diffs = engine
                .clean_output()
                .diff_indices(&run.output, 0.0)
                .unwrap();
            assert!(diffs.len() <= 1);
        }
    }

    #[test]
    fn global_faults_cause_large_damage_or_timeout() {
        let engine = SystolicEngine::new(conv_layer(), 4, 3);
        let fetch = (engine.layer().input.len() + engine.layer().weight.len()) as u64;
        let run = engine.run(SysFaultSite {
            ff: SysFfId::Config { index: cfg::KSTEPS },
            bit: 9,
            cycle: fetch + 5,
        });
        let damage = if run.timed_out {
            true
        } else {
            engine
                .clean_output()
                .diff_indices(&run.output, 0.0)
                .unwrap()
                .len()
                > 5
        };
        assert!(damage);
    }

    #[test]
    fn inventory_is_complete() {
        let engine = SystolicEngine::new(conv_layer(), 4, 3);
        let inv = engine.inventory();
        let cats: std::collections::HashSet<FfCategory> =
            inv.iter().map(|(ff, _)| ff.category()).collect();
        assert!(cats.contains(&FfCategory::LocalControl));
        assert!(cats.contains(&FfCategory::GlobalControl));
        assert_eq!(
            inv.iter()
                .filter(|(ff, _)| matches!(ff, SysFfId::InputOperand { .. }))
                .count(),
            4
        );
    }
}
