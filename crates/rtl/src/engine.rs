//! The cycle-driven register-level engine.
//!
//! Executes one MAC layer the way an NVDLA-like design does (Fig. 2(a) of
//! the paper): a fetch phase streams operands through fetch registers into
//! the on-chip buffer; the compute phase iterates channel groups × position
//! stripes × kernel steps, broadcasting one input value per cycle to all MAC
//! lanes while each lane holds its weight for a whole stripe; a writeback
//! phase drains the per-lane accumulators through output registers guarded
//! by valid bits.
//!
//! Every register is a named, bit-addressable flip-flop ([`FfId`]); a
//! [`FaultSite`] flips one bit at one cycle, after that cycle's register
//! loads and before their use — the standard transient-fault abstraction the
//! paper adopts. All loop bounds and addresses are recomputed from the
//! configuration and sequencer registers each cycle, so control-FF faults
//! derail execution authentically (wrong data, dropped writes, or watchdog
//! time-outs).

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use fidelity_dnn::tensor::Tensor;
use fidelity_obs::metrics::{Counter, Histogram};

use crate::ffid::{FaultSite, FfId, SeqCounter};
use crate::layer::{cfg, input_addr, out_addr, weight_addr, RtlLayer};

/// Cached handles into the global metrics registry: register-level runs are
/// the expensive validation path, so their volume and cycle counts are
/// always counted (single relaxed `fetch_add`s per *run*, not per cycle).
struct RtlMetrics {
    runs: Arc<Counter>,
    timeouts: Arc<Counter>,
    run_cycles: Arc<Histogram>,
}

fn rtl_metrics() -> &'static RtlMetrics {
    static METRICS: OnceLock<RtlMetrics> = OnceLock::new();
    METRICS.get_or_init(|| RtlMetrics {
        runs: fidelity_obs::metrics::counter("rtl.runs"),
        timeouts: fidelity_obs::metrics::counter("rtl.timeouts"),
        run_cycles: fidelity_obs::metrics::histogram("rtl.run_cycles"),
    })
}

/// A single-bit flip in an on-chip memory word (the Sec. III-E memory-error
/// extension; not a flip-flop fault).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemFault {
    /// `true` to target the weight buffer, `false` the activation buffer.
    pub weight_buffer: bool,
    /// Word index within the buffer.
    pub index: usize,
    /// Bit to flip.
    pub bit: u32,
}

/// What to disturb during a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disturbance {
    /// A flip-flop transient fault.
    Ff(FaultSite),
    /// An on-chip memory bit flip (applied when the word is written during
    /// fetch).
    Memory(MemFault),
}

/// Outcome of one register-level run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The produced output tensor (unwritten neurons remain zero).
    pub output: Tensor,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Whether the watchdog fired before completion (system time-out).
    pub timed_out: bool,
}

/// What the engine does at a given cycle of the fault-free schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPoint {
    /// Streaming activation value `index` into the buffer.
    FetchInput {
        /// Buffer word being written.
        index: usize,
    },
    /// Streaming weight value `index` into the buffer.
    FetchWeight {
        /// Buffer word being written.
        index: usize,
    },
    /// A MAC cycle.
    Compute {
        /// Output-channel group.
        group: u64,
        /// Position stripe.
        stripe: u64,
        /// Kernel / contraction step.
        kstep: u64,
        /// Cycle within the stripe.
        y: u64,
        /// Effective stripe length (shorter for the final stripe).
        t_eff: u64,
        /// First output position of the stripe.
        s_base: u64,
    },
    /// A writeback cycle.
    Writeback {
        /// Output-channel group.
        group: u64,
        /// Position stripe.
        stripe: u64,
        /// Slot being drained.
        y: u64,
        /// Effective stripe length.
        t_eff: u64,
        /// First output position of the stripe.
        s_base: u64,
    },
    /// A stripe-advance bubble cycle.
    Bubble,
    /// Past the end of execution.
    Idle,
}

/// The simulated engine for one prepared layer.
#[derive(Debug)]
pub struct RtlEngine {
    layer: RtlLayer,
    lanes: usize,
    stripe_len: usize,
    clean: RunResult,
}

/// Width in bits of the configuration and sequencer registers.
const CTRL_WIDTH: u32 = 16;

impl RtlEngine {
    /// Builds an engine with `lanes` parallel MAC units and a
    /// `stripe_len`-cycle weight hold, and runs it once fault-free.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` or `stripe_len` is zero, or if the fault-free run
    /// does not terminate (an internal invariant violation).
    pub fn new(layer: RtlLayer, lanes: usize, stripe_len: usize) -> Self {
        assert!(lanes > 0 && stripe_len > 0, "geometry must be positive");
        let mut engine = RtlEngine {
            layer,
            lanes,
            stripe_len,
            clean: RunResult {
                output: Tensor::zeros(vec![0]),
                cycles: 0,
                timed_out: false,
            },
        };
        let clean = engine.execute(None, u64::MAX / 2);
        assert!(!clean.timed_out, "fault-free run must terminate");
        engine.clean = clean;
        engine
    }

    /// The prepared layer.
    pub fn layer(&self) -> &RtlLayer {
        &self.layer
    }

    /// Number of MAC lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Weight-hold / stripe length.
    pub fn stripe_len(&self) -> usize {
        self.stripe_len
    }

    /// Output of the fault-free run.
    pub fn clean_output(&self) -> &Tensor {
        &self.clean.output
    }

    /// Cycle count of the fault-free run (the sampling window for fault
    /// cycles).
    pub fn clean_cycles(&self) -> u64 {
        self.clean.cycles
    }

    /// Runs with a disturbance. The watchdog fires at 4× the fault-free
    /// cycle count (plus slack), flagging the run as timed out.
    pub fn run(&self, disturbance: Disturbance) -> RunResult {
        self.run_with_deadline(disturbance, None)
    }

    /// [`RtlEngine::run`] under an additional wall-clock deadline.
    ///
    /// The cycle watchdog bounds *simulated* time; the deadline bounds *host*
    /// time, protecting campaign workers from pathologically slow runs. It is
    /// checked every 4096 simulated cycles; expiry flags the run as timed out
    /// exactly like the cycle watchdog. `None` disables the check.
    pub fn run_with_deadline(
        &self,
        disturbance: Disturbance,
        deadline: Option<Instant>,
    ) -> RunResult {
        self.execute_guarded(Some(disturbance), self.clean.cycles * 4 + 1024, deadline)
    }

    /// Every flip-flop of the engine with its width in bits.
    pub fn inventory(&self) -> Vec<(FfId, u32)> {
        let ib = self.layer.input_codec.precision().bits();
        let wb = self.layer.weight_codec.precision().bits();
        let ob = self.layer.output_codec.precision().bits();
        let mut v = vec![(FfId::FetchInput, ib), (FfId::FetchWeight, wb)];
        v.push((FfId::InputOperand, ib));
        for lane in 0..self.lanes {
            v.push((FfId::WeightOperand { lane }, wb));
        }
        for lane in 0..self.lanes {
            for slot in 0..self.stripe_len {
                v.push((FfId::Accumulator { lane, slot }, 32));
            }
        }
        for lane in 0..self.lanes {
            v.push((FfId::OutputReg { lane }, ob));
            v.push((FfId::OutputValid { lane }, 1));
        }
        for index in 0..cfg::COUNT {
            v.push((FfId::Config { index }, CTRL_WIDTH));
        }
        for counter in [
            SeqCounter::Group,
            SeqCounter::Stripe,
            SeqCounter::Kernel,
            SeqCounter::Cycle,
        ] {
            v.push((FfId::Sequencer { counter }, CTRL_WIDTH));
        }
        v
    }

    /// What the engine is doing at `cycle` during a fault-free run.
    ///
    /// This is the pure-arithmetic mirror of the sequencer and is what allows
    /// a software fault model to be derived for a concrete fault site: given
    /// the FF and the cycle, the schedule identifies which operand element /
    /// output neuron the FF holds state for.
    pub fn schedule_at(&self, cycle: u64) -> SchedPoint {
        let n_in = self.layer.input.len() as u64;
        let n_w = self.layer.weight.len() as u64;
        if cycle < n_in {
            return SchedPoint::FetchInput {
                index: cycle as usize,
            };
        }
        if cycle < n_in + n_w {
            return SchedPoint::FetchWeight {
                index: (cycle - n_in) as usize,
            };
        }
        let mut rem = cycle - n_in - n_w;
        let c_total = self.layer.spec.channel_count() as u64;
        let p_total = self.layer.spec.position_count() as u64;
        let ksteps = self.layer.spec.kernel_steps() as u64;
        let stripe = self.stripe_len as u64;
        let groups = c_total.div_ceil(self.lanes as u64);
        let stripes = p_total.div_ceil(stripe);
        for group in 0..groups {
            for s in 0..stripes {
                let s_base = s * stripe;
                let t_eff = (p_total - s_base).min(stripe);
                let compute = ksteps * t_eff;
                if rem < compute {
                    return SchedPoint::Compute {
                        group,
                        stripe: s,
                        kstep: rem / t_eff,
                        y: rem % t_eff,
                        t_eff,
                        s_base,
                    };
                }
                rem -= compute;
                if rem < t_eff {
                    return SchedPoint::Writeback {
                        group,
                        stripe: s,
                        y: rem,
                        t_eff,
                        s_base,
                    };
                }
                rem -= t_eff;
                if rem == 0 {
                    return SchedPoint::Bubble;
                }
                rem -= 1;
            }
        }
        SchedPoint::Idle
    }

    fn execute(&self, disturbance: Option<Disturbance>, watchdog: u64) -> RunResult {
        self.execute_guarded(disturbance, watchdog, None)
    }

    // Faults may flip a register that is never read again (e.g. the fetch
    // register during the compute phase); those writes are intentionally
    // dead — that is exactly what makes the fault masked.
    #[allow(unused_assignments)]
    fn execute_guarded(
        &self,
        disturbance: Option<Disturbance>,
        watchdog: u64,
        deadline: Option<Instant>,
    ) -> RunResult {
        let layer = &self.layer;
        let lanes = self.lanes;

        let fault = match disturbance {
            Some(Disturbance::Ff(site)) => Some(site),
            _ => None,
        };
        let mem_fault = match disturbance {
            Some(Disturbance::Memory(m)) => Some(m),
            _ => None,
        };

        // Architectural state.
        let mut cfgw = layer.config_words();
        cfgw[cfg::STRIPE] = self.stripe_len as u32;
        let mut cbuf_input = vec![0u32; layer.input.len()];
        let mut cbuf_weight = vec![0u32; layer.weight.len()];
        let mut fetch_input_reg = 0u32;
        let mut fetch_weight_reg = 0u32;
        let mut input_op = 0u32;
        let mut input_gated = true;
        let mut weight_op = vec![0u32; lanes];
        let mut lane_gated = vec![true; lanes];
        let mut acc = vec![vec![0.0f32; self.stripe_len]; lanes];
        let mut out_reg = vec![0u32; lanes];
        let mut valid = vec![0u8; lanes];
        let mut seq = [0u32; 4]; // group, stripe, kernel, cycle-in-stripe
        let mut out_mem = vec![0.0f32; layer.spec.out_len()];

        let mut cycle: u64 = 0;
        let mut timed_out = false;

        macro_rules! apply_fault {
            () => {
                if let Some(site) = fault {
                    if site.cycle == cycle {
                        let mask = 1u32 << (site.bit.min(31));
                        match site.ff {
                            FfId::FetchInput => fetch_input_reg ^= mask,
                            FfId::FetchWeight => fetch_weight_reg ^= mask,
                            FfId::InputOperand => input_op ^= mask,
                            FfId::WeightOperand { lane } => {
                                if lane < lanes {
                                    weight_op[lane] ^= mask;
                                }
                            }
                            FfId::Accumulator { lane, slot } => {
                                if lane < lanes && slot < self.stripe_len {
                                    acc[lane][slot] =
                                        f32::from_bits(acc[lane][slot].to_bits() ^ mask);
                                }
                            }
                            FfId::OutputReg { lane } => {
                                if lane < lanes {
                                    out_reg[lane] ^= mask;
                                }
                            }
                            FfId::OutputValid { lane } => {
                                if lane < lanes {
                                    valid[lane] ^= 1;
                                }
                            }
                            FfId::Config { index } => {
                                if index < cfgw.len() {
                                    cfgw[index] ^= mask & ((1 << CTRL_WIDTH) - 1);
                                }
                            }
                            FfId::Sequencer { counter } => {
                                let idx = match counter {
                                    SeqCounter::Group => 0,
                                    SeqCounter::Stripe => 1,
                                    SeqCounter::Kernel => 2,
                                    SeqCounter::Cycle => 3,
                                };
                                seq[idx] ^= mask & ((1 << CTRL_WIDTH) - 1);
                            }
                        }
                    }
                }
            };
        }

        // ---- Fetch phase: activations, then weights, one value per cycle.
        for (i, &value) in layer.input.data().iter().enumerate() {
            fetch_input_reg = layer.input_codec.encode(value);
            apply_fault!();
            cbuf_input[i] = fetch_input_reg;
            if let Some(m) = mem_fault {
                if !m.weight_buffer && m.index == i {
                    cbuf_input[i] ^= 1 << m.bit.min(31);
                }
            }
            cycle += 1;
        }
        for (i, &value) in layer.weight.data().iter().enumerate() {
            fetch_weight_reg = layer.weight_codec.encode(value);
            apply_fault!();
            cbuf_weight[i] = fetch_weight_reg;
            if let Some(m) = mem_fault {
                if m.weight_buffer && m.index == i {
                    cbuf_weight[i] ^= 1 << m.bit.min(31);
                }
            }
            cycle += 1;
        }

        // ---- Compute + writeback, driven by the sequencer registers.
        #[derive(PartialEq)]
        enum Phase {
            Compute,
            Writeback,
        }
        let mut phase = Phase::Compute;

        loop {
            if cycle >= watchdog {
                timed_out = true;
                break;
            }
            if cycle & 0xFFF == 0 {
                if let Some(d) = deadline {
                    // Monotonic watchdog deadline via the obs clock (the
                    // workspace's sanctioned wall-clock site); never feeds
                    // statistics.
                    if fidelity_obs::clock::now() >= d {
                        timed_out = true;
                        break;
                    }
                }
            }
            let c_total = cfgw[cfg::CHANNELS] as u64;
            let p_total = cfgw[cfg::POSITIONS] as u64;
            let ksteps = cfgw[cfg::KSTEPS] as u64;
            let stripe = cfgw[cfg::STRIPE] as u64;
            let groups = c_total.div_ceil(lanes as u64);
            if (seq[0] as u64) >= groups {
                break; // all channel groups done
            }
            if stripe == 0 {
                // A faulted stripe register stalls the engine; burn a cycle
                // until the watchdog fires.
                apply_fault!();
                cycle += 1;
                continue;
            }
            let s_base = seq[1] as u64 * stripe;
            let t_eff = if p_total > s_base {
                (p_total - s_base).min(stripe)
            } else {
                0
            };
            let stripes = p_total.div_ceil(stripe);

            match phase {
                Phase::Compute => {
                    if t_eff == 0 || ksteps == 0 || (seq[2] as u64) >= ksteps {
                        // Bubble cycle: move to writeback (or next stripe).
                        apply_fault!();
                        if t_eff == 0 {
                            seq[1] = seq[1].wrapping_add(1);
                            if (seq[1] as u64) >= stripes {
                                seq[1] = 0;
                                seq[0] = seq[0].wrapping_add(1);
                            }
                            seq[2] = 0;
                            seq[3] = 0;
                        } else {
                            phase = Phase::Writeback;
                            seq[3] = 0;
                        }
                        cycle += 1;
                        continue;
                    }
                    // Loads.
                    if seq[2] == 0 && seq[3] == 0 {
                        for lane_acc in &mut acc {
                            for slot in lane_acc.iter_mut() {
                                *slot = 0.0;
                            }
                        }
                    }
                    if seq[3] == 0 {
                        for lane in 0..lanes {
                            let c = seq[0] as u64 * lanes as u64 + lane as u64;
                            match weight_addr(&cfgw, c, seq[2] as u64, cbuf_weight.len()) {
                                Some(a) if c < c_total => {
                                    weight_op[lane] = cbuf_weight[a as usize];
                                    lane_gated[lane] = false;
                                }
                                _ => lane_gated[lane] = true,
                            }
                        }
                    }
                    let p = s_base + seq[3] as u64;
                    match input_addr(&cfgw, p, seq[2] as u64, cbuf_input.len()) {
                        Some(a) => {
                            input_op = cbuf_input[a as usize];
                            input_gated = false;
                        }
                        None => input_gated = true,
                    }
                    apply_fault!();
                    // Use: multiply-accumulate.
                    if !input_gated {
                        let x = layer.input_codec.decode(input_op);
                        let slot = (seq[3] as usize).min(self.stripe_len - 1);
                        for lane in 0..lanes {
                            if !lane_gated[lane] {
                                let w = layer.weight_codec.decode(weight_op[lane]);
                                acc[lane][slot] += x * w;
                            }
                        }
                    }
                    // Advance.
                    seq[3] = seq[3].wrapping_add(1);
                    if (seq[3] as u64) >= t_eff {
                        seq[3] = 0;
                        seq[2] = seq[2].wrapping_add(1);
                        if (seq[2] as u64) >= ksteps {
                            seq[2] = 0;
                            phase = Phase::Writeback;
                        }
                    }
                }
                Phase::Writeback => {
                    if t_eff == 0 || (seq[3] as u64) >= t_eff {
                        apply_fault!();
                        seq[3] = 0;
                        phase = Phase::Compute;
                        seq[1] = seq[1].wrapping_add(1);
                        if (seq[1] as u64) >= stripes {
                            seq[1] = 0;
                            seq[0] = seq[0].wrapping_add(1);
                        }
                        cycle += 1;
                        continue;
                    }
                    // Loads: output registers and valid bits.
                    let slot = (seq[3] as usize).min(self.stripe_len - 1);
                    for lane in 0..lanes {
                        let c = seq[0] as u64 * lanes as u64 + lane as u64;
                        let value = layer.output_codec.quantize(acc[lane][slot]);
                        out_reg[lane] = layer.output_codec.encode(value);
                        valid[lane] = u8::from(c < c_total);
                    }
                    apply_fault!();
                    // Use: guarded writes.
                    let p = s_base + seq[3] as u64;
                    for lane in 0..lanes {
                        let c = seq[0] as u64 * lanes as u64 + lane as u64;
                        if valid[lane] & 1 == 1 && c < c_total {
                            if let Some(a) = out_addr(&cfgw, p, c, out_mem.len()) {
                                out_mem[a as usize] = layer.output_codec.decode(out_reg[lane]);
                            }
                        }
                    }
                    seq[3] = seq[3].wrapping_add(1);
                }
            }
            cycle += 1;
        }

        let output = Tensor::from_vec(layer.spec.out_shape(), out_mem)
            // The buffer is allocated from the same spec two lines up.
            // statcheck:allow(panic-path)
            .expect("output buffer sized from spec");
        let metrics = rtl_metrics();
        metrics.runs.inc();
        if timed_out {
            metrics.timeouts.inc();
        }
        metrics.run_cycles.record(cycle);
        RunResult {
            output,
            cycles: cycle,
            timed_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_dnn::init::uniform_tensor;
    use fidelity_dnn::macspec::{ConvSpec, MacSpec, Operands};
    use fidelity_dnn::precision::{Precision, ValueCodec};

    fn fp16_layer() -> RtlLayer {
        let spec = ConvSpec {
            batch: 1,
            in_c: 2,
            in_h: 5,
            in_w: 5,
            out_c: 6,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            padding: (1, 1),
            dilation: (1, 1),
            groups: 1,
        };
        let codec = ValueCodec::float(Precision::Fp16);
        let input = uniform_tensor(1, vec![1, 2, 5, 5], 1.0).map(|v| codec.quantize(v));
        let weight = uniform_tensor(2, vec![6, 2, 3, 3], 0.5).map(|v| codec.quantize(v));
        RtlLayer::new(MacSpec::Conv(spec), input, weight, codec, codec, codec).unwrap()
    }

    #[test]
    fn clean_run_matches_software_layer() {
        let layer = fp16_layer();
        let engine = RtlEngine::new(layer.clone(), 4, 4);
        let ops = Operands {
            input: &layer.input,
            weight: &layer.weight,
        };
        for off in 0..layer.spec.out_len() {
            let sw = layer
                .output_codec
                .quantize(layer.spec.compute_at(&ops, off, None));
            let hw = engine.clean_output().data()[off];
            assert_eq!(sw.to_bits(), hw.to_bits(), "neuron {off}");
        }
    }

    #[test]
    fn clean_run_with_awkward_geometry() {
        // Lanes don't divide channels; stripe doesn't divide positions.
        let layer = fp16_layer();
        let engine = RtlEngine::new(layer.clone(), 4, 7);
        let ops = Operands {
            input: &layer.input,
            weight: &layer.weight,
        };
        for off in 0..layer.spec.out_len() {
            let sw = layer
                .output_codec
                .quantize(layer.spec.compute_at(&ops, off, None));
            assert_eq!(sw.to_bits(), engine.clean_output().data()[off].to_bits());
        }
    }

    #[test]
    fn output_reg_fault_corrupts_one_neuron() {
        let layer = fp16_layer();
        let engine = RtlEngine::new(layer, 4, 4);
        // Find a writeback cycle by scanning: inject at every cycle until a
        // single-neuron diff appears for OutputReg faults.
        let mut found = false;
        for cycle in 0..engine.clean_cycles() {
            let result = engine.run(Disturbance::Ff(FaultSite {
                ff: FfId::OutputReg { lane: 1 },
                bit: 14,
                cycle,
            }));
            assert!(!result.timed_out);
            let diffs = engine
                .clean_output()
                .diff_indices(&result.output, 0.0)
                .unwrap();
            assert!(
                diffs.len() <= 1,
                "output reg fault must hit at most 1 neuron"
            );
            if diffs.len() == 1 {
                found = true;
                break;
            }
        }
        assert!(found, "no visible output-register fault found");
    }

    #[test]
    fn valid_drop_zeroes_one_neuron() {
        let layer = fp16_layer();
        let engine = RtlEngine::new(layer, 4, 4);
        let mut found = false;
        for cycle in 0..engine.clean_cycles() {
            let result = engine.run(Disturbance::Ff(FaultSite {
                ff: FfId::OutputValid { lane: 0 },
                bit: 0,
                cycle,
            }));
            let diffs = engine
                .clean_output()
                .diff_indices(&result.output, 0.0)
                .unwrap();
            assert!(diffs.len() <= 1);
            if diffs.len() == 1 {
                assert_eq!(result.output.data()[diffs[0]], 0.0);
                found = true;
                break;
            }
        }
        assert!(found);
    }

    #[test]
    fn config_fault_causes_many_errors_or_timeout() {
        let layer = fp16_layer();
        let engine = RtlEngine::new(layer, 4, 4);
        // Flip a high bit of the kernel-steps register early in compute.
        let fetch_cycles = (engine.layer().input.len() + engine.layer().weight.len()) as u64;
        let result = engine.run(Disturbance::Ff(FaultSite {
            ff: FfId::Config { index: cfg::KSTEPS },
            bit: 10,
            cycle: fetch_cycles + 3,
        }));
        let big_damage = if result.timed_out {
            true
        } else {
            let diffs = engine
                .clean_output()
                .diff_indices(&result.output, 0.0)
                .unwrap();
            diffs.len() > 5
        };
        assert!(big_damage, "global control fault should cause large damage");
    }

    #[test]
    fn memory_fault_equals_fetch_fault_effect() {
        let layer = fp16_layer();
        let engine = RtlEngine::new(layer.clone(), 4, 4);
        // Flip bit 9 of weight word 7 via the memory path...
        let via_mem = engine.run(Disturbance::Memory(MemFault {
            weight_buffer: true,
            index: 7,
            bit: 9,
        }));
        // ...and via the fetch register at the cycle word 7 passes through.
        let via_ff = engine.run(Disturbance::Ff(FaultSite {
            ff: FfId::FetchWeight,
            bit: 9,
            cycle: layer.input.len() as u64 + 7,
        }));
        assert_eq!(via_mem.output.data(), via_ff.output.data());
    }

    #[test]
    fn inactive_ff_fault_is_masked() {
        let layer = fp16_layer();
        let engine = RtlEngine::new(layer, 4, 4);
        // Input operand register during the fetch phase: overwritten before
        // first use.
        let result = engine.run(Disturbance::Ff(FaultSite {
            ff: FfId::InputOperand,
            bit: 3,
            cycle: 0,
        }));
        assert_eq!(result.output.data(), engine.clean_output().data());
    }

    #[test]
    fn schedule_mirrors_execution_length() {
        let layer = fp16_layer();
        let engine = RtlEngine::new(layer, 4, 7);
        // The first Idle cycle is exactly the clean cycle count.
        assert_eq!(engine.schedule_at(engine.clean_cycles()), SchedPoint::Idle);
        assert_ne!(
            engine.schedule_at(engine.clean_cycles() - 1),
            SchedPoint::Idle
        );
        // Fetch phase boundaries.
        assert_eq!(engine.schedule_at(0), SchedPoint::FetchInput { index: 0 });
        let n_in = engine.layer().input.len() as u64;
        assert_eq!(
            engine.schedule_at(n_in),
            SchedPoint::FetchWeight { index: 0 }
        );
        // First compute cycle.
        let n_w = engine.layer().weight.len() as u64;
        match engine.schedule_at(n_in + n_w) {
            SchedPoint::Compute {
                group: 0,
                stripe: 0,
                kstep: 0,
                y: 0,
                ..
            } => {}
            other => panic!("expected first compute cycle, got {other:?}"),
        }
    }

    #[test]
    fn inventory_covers_all_categories() {
        use fidelity_accel::ff::FfCategory;
        let layer = fp16_layer();
        let engine = RtlEngine::new(layer, 4, 4);
        let inv = engine.inventory();
        let has = |cat: FfCategory| inv.iter().any(|(ff, _)| ff.category() == cat);
        assert!(has(FfCategory::LocalControl));
        assert!(has(FfCategory::GlobalControl));
        assert!(inv.iter().all(|(_, w)| *w >= 1));
    }
}
