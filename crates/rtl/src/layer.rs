//! The MAC layer a simulated engine executes, and the config-register
//! address arithmetic.
//!
//! The engine computes every buffer address *from its configuration
//! registers* each cycle (as hardware sequencing logic does), rather than
//! from the original layer description. This is what gives global-control
//! faults their authentic behaviour: a bit flip in a dimension register or a
//! loop counter derails all subsequent addressing.

use fidelity_dnn::macspec::MacSpec;
use fidelity_dnn::precision::ValueCodec;
use fidelity_dnn::tensor::Tensor;

/// Indices into the engine's configuration register file.
pub mod cfg {
    /// Layer kind: 0 = conv, 1 = dense, 2 = matmul.
    pub const KIND: usize = 0;
    /// Output channels (conv) / output features (dense) / columns (matmul).
    pub const CHANNELS: usize = 1;
    /// Output positions: batch·oh·ow (conv) / batch (dense) / rows (matmul).
    pub const POSITIONS: usize = 2;
    /// Kernel / contraction steps per output neuron.
    pub const KSTEPS: usize = 3;
    /// Stripe length (weight-hold cycles, `t`).
    pub const STRIPE: usize = 4;
    /// Input channels.
    pub const IN_C: usize = 5;
    /// Input height.
    pub const IN_H: usize = 6;
    /// Input width.
    pub const IN_W: usize = 7;
    /// Output height.
    pub const OUT_H: usize = 8;
    /// Output width.
    pub const OUT_W: usize = 9;
    /// Kernel height.
    pub const KH: usize = 10;
    /// Kernel width.
    pub const KW: usize = 11;
    /// Vertical stride.
    pub const STRIDE_H: usize = 12;
    /// Horizontal stride.
    pub const STRIDE_W: usize = 13;
    /// Vertical padding.
    pub const PAD_H: usize = 14;
    /// Horizontal padding.
    pub const PAD_W: usize = 15;
    /// Vertical dilation.
    pub const DIL_H: usize = 16;
    /// Horizontal dilation.
    pub const DIL_W: usize = 17;
    /// Whether the matmul B operand is stored transposed (0/1).
    pub const TRANS_B: usize = 18;
    /// Number of configuration registers.
    pub const COUNT: usize = 19;

    /// Human-readable register names, indexed by register number.
    pub const NAMES: [&str; COUNT] = [
        "kind",
        "channels",
        "positions",
        "ksteps",
        "stripe",
        "in_c",
        "in_h",
        "in_w",
        "out_h",
        "out_w",
        "kh",
        "kw",
        "stride_h",
        "stride_w",
        "pad_h",
        "pad_w",
        "dil_h",
        "dil_w",
        "trans_b",
    ];
}

/// Error constructing an [`RtlLayer`].
#[derive(Debug, Clone, PartialEq)]
pub struct RtlLayerError {
    message: String,
}

impl std::fmt::Display for RtlLayerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported rtl layer: {}", self.message)
    }
}

impl std::error::Error for RtlLayerError {}

/// One MAC layer prepared for register-level execution: the geometry, the
/// (already quantized) operand tensors, and the value codecs of the deployed
/// precision.
#[derive(Debug, Clone)]
pub struct RtlLayer {
    /// Layer geometry.
    pub spec: MacSpec,
    /// Quantized activation operand.
    pub input: Tensor,
    /// Quantized weight operand.
    pub weight: Tensor,
    /// Codec of activation values.
    pub input_codec: ValueCodec,
    /// Codec of weight values.
    pub weight_codec: ValueCodec,
    /// Codec of output values.
    pub output_codec: ValueCodec,
}

impl RtlLayer {
    /// Prepares a layer for register-level execution.
    ///
    /// # Errors
    ///
    /// Returns [`RtlLayerError`] for geometries the simulated engine does not
    /// implement (grouped convolutions, batched matmuls).
    pub fn new(
        spec: MacSpec,
        input: Tensor,
        weight: Tensor,
        input_codec: ValueCodec,
        weight_codec: ValueCodec,
        output_codec: ValueCodec,
    ) -> Result<Self, RtlLayerError> {
        match &spec {
            MacSpec::Conv(c) => {
                if c.groups != 1 {
                    return Err(RtlLayerError {
                        message: format!("grouped convolution (groups = {})", c.groups),
                    });
                }
            }
            MacSpec::MatMul(m) => {
                if m.batch != 1 {
                    return Err(RtlLayerError {
                        message: format!("batched matmul (batch = {})", m.batch),
                    });
                }
            }
            MacSpec::Dense(_) => {}
        }
        Ok(RtlLayer {
            spec,
            input,
            weight,
            input_codec,
            weight_codec,
            output_codec,
        })
    }

    /// Builds the configuration register file for this layer.
    pub fn config_words(&self) -> Vec<u32> {
        let mut w = vec![0u32; cfg::COUNT];
        match &self.spec {
            MacSpec::Conv(c) => {
                w[cfg::KIND] = 0;
                w[cfg::CHANNELS] = c.out_c as u32;
                w[cfg::POSITIONS] = (c.batch * c.out_h() * c.out_w()) as u32;
                w[cfg::KSTEPS] = (c.in_c * c.kh * c.kw) as u32;
                w[cfg::IN_C] = c.in_c as u32;
                w[cfg::IN_H] = c.in_h as u32;
                w[cfg::IN_W] = c.in_w as u32;
                w[cfg::OUT_H] = c.out_h() as u32;
                w[cfg::OUT_W] = c.out_w() as u32;
                w[cfg::KH] = c.kh as u32;
                w[cfg::KW] = c.kw as u32;
                w[cfg::STRIDE_H] = c.stride.0 as u32;
                w[cfg::STRIDE_W] = c.stride.1 as u32;
                w[cfg::PAD_H] = c.padding.0 as u32;
                w[cfg::PAD_W] = c.padding.1 as u32;
                w[cfg::DIL_H] = c.dilation.0 as u32;
                w[cfg::DIL_W] = c.dilation.1 as u32;
            }
            MacSpec::Dense(d) => {
                w[cfg::KIND] = 1;
                w[cfg::CHANNELS] = d.out_features as u32;
                w[cfg::POSITIONS] = d.batch as u32;
                w[cfg::KSTEPS] = d.in_features as u32;
            }
            MacSpec::MatMul(m) => {
                w[cfg::KIND] = 2;
                w[cfg::CHANNELS] = m.n as u32;
                w[cfg::POSITIONS] = m.m as u32;
                w[cfg::KSTEPS] = m.k as u32;
                w[cfg::TRANS_B] = m.transpose_b as u32;
            }
        }
        w
    }
}

/// Address of the activation value consumed at output position `p`, kernel
/// step `k` — computed from config registers. `None` means the operand is
/// gated this cycle (padding, or out-of-range under a faulted config).
pub fn input_addr(w: &[u32], p: u64, k: u64, buf_len: usize) -> Option<u64> {
    let addr = match w[cfg::KIND] {
        0 => {
            let (kw_r, kh_r) = (w[cfg::KW] as u64, w[cfg::KH] as u64);
            if kw_r == 0 || kh_r == 0 || w[cfg::OUT_W] == 0 || w[cfg::OUT_H] == 0 {
                return None;
            }
            let kx = k % kw_r;
            let ky = (k / kw_r) % kh_r;
            let ic = k / (kw_r * kh_r);
            let out_hw = w[cfg::OUT_H] as u64 * w[cfg::OUT_W] as u64;
            let b = p / out_hw;
            let hw = p % out_hw;
            let oh = hw / w[cfg::OUT_W] as u64;
            let ow = hw % w[cfg::OUT_W] as u64;
            let ih = (oh * w[cfg::STRIDE_H] as u64 + ky * w[cfg::DIL_H] as u64) as i64
                - w[cfg::PAD_H] as i64;
            let iw = (ow * w[cfg::STRIDE_W] as u64 + kx * w[cfg::DIL_W] as u64) as i64
                - w[cfg::PAD_W] as i64;
            if ih < 0
                || iw < 0
                || ih as u64 >= w[cfg::IN_H] as u64
                || iw as u64 >= w[cfg::IN_W] as u64
                || ic >= w[cfg::IN_C] as u64
            {
                return None;
            }
            ((b * w[cfg::IN_C] as u64 + ic) * w[cfg::IN_H] as u64 + ih as u64) * w[cfg::IN_W] as u64
                + iw as u64
        }
        // Dense and matmul share row-major activation addressing.
        _ => p * w[cfg::KSTEPS] as u64 + k,
    };
    (addr < buf_len as u64).then_some(addr)
}

/// Address of the weight value consumed by output channel `c` at kernel step
/// `k`.
pub fn weight_addr(w: &[u32], c: u64, k: u64, buf_len: usize) -> Option<u64> {
    let addr = match w[cfg::KIND] {
        0 => {
            let (kw_r, kh_r) = (w[cfg::KW] as u64, w[cfg::KH] as u64);
            if kw_r == 0 || kh_r == 0 {
                return None;
            }
            let kx = k % kw_r;
            let ky = (k / kw_r) % kh_r;
            let ic = k / (kw_r * kh_r);
            ((c * w[cfg::IN_C] as u64 + ic) * kh_r + ky) * kw_r + kx
        }
        1 => c * w[cfg::KSTEPS] as u64 + k,
        _ => {
            if w[cfg::TRANS_B] != 0 {
                c * w[cfg::KSTEPS] as u64 + k
            } else {
                k * w[cfg::CHANNELS] as u64 + c
            }
        }
    };
    (addr < buf_len as u64).then_some(addr)
}

/// Address in the output buffer of neuron (position `p`, channel `c`).
pub fn out_addr(w: &[u32], p: u64, c: u64, buf_len: usize) -> Option<u64> {
    let addr = match w[cfg::KIND] {
        0 => {
            let out_hw = w[cfg::OUT_H] as u64 * w[cfg::OUT_W] as u64;
            if out_hw == 0 {
                return None;
            }
            let b = p / out_hw;
            let hw = p % out_hw;
            (b * w[cfg::CHANNELS] as u64 + c) * out_hw + hw
        }
        _ => p * w[cfg::CHANNELS] as u64 + c,
    };
    (addr < buf_len as u64).then_some(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_dnn::macspec::{ConvSpec, DenseSpec, MatMulSpec};
    use fidelity_dnn::precision::Precision;

    fn conv_layer() -> RtlLayer {
        let spec = ConvSpec {
            batch: 1,
            in_c: 2,
            in_h: 4,
            in_w: 4,
            out_c: 3,
            kh: 3,
            kw: 3,
            stride: (1, 1),
            padding: (1, 1),
            dilation: (1, 1),
            groups: 1,
        };
        RtlLayer::new(
            MacSpec::Conv(spec),
            Tensor::zeros(vec![1, 2, 4, 4]),
            Tensor::zeros(vec![3, 2, 3, 3]),
            ValueCodec::float(Precision::Fp16),
            ValueCodec::float(Precision::Fp16),
            ValueCodec::float(Precision::Fp16),
        )
        .unwrap()
    }

    #[test]
    fn conv_config_words() {
        let layer = conv_layer();
        let w = layer.config_words();
        assert_eq!(w[cfg::KIND], 0);
        assert_eq!(w[cfg::CHANNELS], 3);
        assert_eq!(w[cfg::POSITIONS], 16);
        assert_eq!(w[cfg::KSTEPS], 18);
    }

    #[test]
    fn conv_addressing_matches_geometry() {
        let layer = conv_layer();
        let w = layer.config_words();
        // Output (0,0) with padding 1: kernel step (ic=0, ky=0, kx=0) lands
        // at input (-1,-1): gated.
        assert_eq!(input_addr(&w, 0, 0, 32), None);
        // Kernel step (ic=0, ky=1, kx=1) is the centre: input (0,0).
        assert_eq!(input_addr(&w, 0, 4, 32), Some(0));
        // Channel 1's first weight.
        assert_eq!(weight_addr(&w, 1, 0, 54), Some(18));
        // Output address of (p=5, c=2): hw=5.
        assert_eq!(out_addr(&w, 5, 2, 48), Some(2 * 16 + 5));
    }

    #[test]
    fn dense_addressing() {
        let spec = DenseSpec {
            batch: 2,
            in_features: 3,
            out_features: 4,
        };
        let layer = RtlLayer::new(
            MacSpec::Dense(spec),
            Tensor::zeros(vec![2, 3]),
            Tensor::zeros(vec![4, 3]),
            ValueCodec::float(Precision::Fp16),
            ValueCodec::float(Precision::Fp16),
            ValueCodec::float(Precision::Fp16),
        )
        .unwrap();
        let w = layer.config_words();
        assert_eq!(input_addr(&w, 1, 2, 6), Some(5));
        assert_eq!(weight_addr(&w, 3, 1, 12), Some(10));
        assert_eq!(out_addr(&w, 1, 3, 8), Some(7));
        // Out of range under a faulted config.
        assert_eq!(input_addr(&w, 9, 2, 6), None);
    }

    #[test]
    fn matmul_transposed_addressing() {
        let spec = MatMulSpec {
            batch: 1,
            m: 2,
            k: 3,
            n: 4,
            transpose_b: true,
        };
        let layer = RtlLayer::new(
            MacSpec::MatMul(spec),
            Tensor::zeros(vec![2, 3]),
            Tensor::zeros(vec![4, 3]),
            ValueCodec::float(Precision::Fp16),
            ValueCodec::float(Precision::Fp16),
            ValueCodec::float(Precision::Fp16),
        )
        .unwrap();
        let w = layer.config_words();
        assert_eq!(weight_addr(&w, 2, 1, 12), Some(7)); // B[n=2][k=1]
    }

    #[test]
    fn rejects_unsupported_geometries() {
        let spec = ConvSpec {
            batch: 1,
            in_c: 2,
            in_h: 2,
            in_w: 2,
            out_c: 2,
            kh: 1,
            kw: 1,
            stride: (1, 1),
            padding: (0, 0),
            dilation: (1, 1),
            groups: 2,
        };
        assert!(RtlLayer::new(
            MacSpec::Conv(spec),
            Tensor::zeros(vec![1, 2, 2, 2]),
            Tensor::zeros(vec![2, 1, 1, 1]),
            ValueCodec::float(Precision::Fp16),
            ValueCodec::float(Precision::Fp16),
            ValueCodec::float(Precision::Fp16),
        )
        .is_err());
    }
}
