//! # fidelity-rtl
//!
//! A cycle-driven, bit-accurate register-level simulator of an NVDLA-like
//! convolution/FC/matmul engine, standing in for the Synopsys-VCS RTL
//! simulations the paper uses as its golden reference (Sec. IV).
//!
//! The engine exposes a complete flip-flop inventory — fetch registers,
//! operand registers, accumulators, output registers, valid bits,
//! configuration registers and sequencing counters — each tagged with its
//! Table-II category, and supports flipping any bit of any register at any
//! cycle ([`ffid::FaultSite`]). Faulty runs are diffed against the
//! fault-free run to obtain the observed set of faulty output neurons and
//! their values ([`observe::ObservedFault`]), against which `fidelity-core`
//! validates its software fault models.
//!
//! ## Example
//!
//! ```
//! use fidelity_dnn::init::uniform_tensor;
//! use fidelity_dnn::macspec::{DenseSpec, MacSpec};
//! use fidelity_dnn::precision::{Precision, ValueCodec};
//! use fidelity_rtl::{Disturbance, FaultSite, FfId, ObservedFault, RtlEngine, RtlLayer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let codec = ValueCodec::float(Precision::Fp16);
//! let layer = RtlLayer::new(
//!     MacSpec::Dense(DenseSpec { batch: 1, in_features: 8, out_features: 4 }),
//!     uniform_tensor(1, vec![1, 8], 1.0).map(|v| codec.quantize(v)),
//!     uniform_tensor(2, vec![4, 8], 1.0).map(|v| codec.quantize(v)),
//!     codec,
//!     codec,
//!     codec,
//! )?;
//! let engine = RtlEngine::new(layer, 4, 4);
//! let result = engine.run(Disturbance::Ff(FaultSite {
//!     ff: FfId::InputOperand,
//!     bit: 14,
//!     cycle: engine.clean_cycles() / 2,
//! }));
//! let observed = ObservedFault::from_run(engine.clean_output(), &result);
//! assert!(observed.reuse_factor() <= 4); // at most `lanes` neurons
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod ffid;
pub mod layer;
pub mod observe;
pub mod systolic;

pub use engine::{Disturbance, MemFault, RtlEngine, RunResult, SchedPoint};
pub use ffid::{FaultSite, FfId, SeqCounter};
pub use layer::{RtlLayer, RtlLayerError};
pub use observe::ObservedFault;
pub use systolic::{SysFaultSite, SysFfId, SysRunResult, SysSchedPoint, SystolicEngine};
