//! End-to-end exercises of the campaign service: submission, progress,
//! backpressure, shedding, cancellation, deadlines, malformed input, panic
//! isolation, and drain-then-restart recovery.
//!
//! Everything runs against a real listener on a loopback port; the only
//! in-process shortcut is the restart test, which drives the [`Supervisor`]
//! directly so two daemon "lifetimes" can share one state directory.

use std::time::Duration;

use fidelity_serve::client::Client;
use fidelity_serve::journal::{Journal, JournalEvent};
use fidelity_serve::server::{serve, ServeHandle};
use fidelity_serve::supervisor::{JobState, ServeConfig, SubmitOutcome, Supervisor};
use fidelity_serve::JobSpec;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fidelity-serve-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn daemon(name: &str, queue_cap: usize) -> (ServeHandle, Client) {
    daemon_with(name, queue_cap, Vec::new())
}

fn daemon_with(
    name: &str,
    queue_cap: usize,
    chaos: Vec<fidelity_core::resilience::ChaosSpec>,
) -> (ServeHandle, Client) {
    let sup = Supervisor::start(ServeConfig {
        state_dir: scratch(name),
        queue_cap,
        workers: 1,
        campaign_threads: 2,
        chaos,
    })
    .unwrap();
    let handle = serve(sup, "127.0.0.1:0").unwrap();
    let client = Client::new(handle.addr().to_string());
    (handle, client)
}

/// A campaign that finishes in well under a second.
fn tiny(seed: u64) -> String {
    format!("{{\"network\":\"lstm\",\"samples\":2,\"seed\":{seed}}}")
}

/// A campaign that runs for several seconds (cancellable mid-flight).
fn slow(seed: u64, priority: i32) -> String {
    format!("{{\"network\":\"lstm\",\"samples\":1500,\"seed\":{seed},\"priority\":{priority}}}")
}

fn id_of(body: &str) -> String {
    let key = "\"id\":\"";
    let start = body.find(key).expect("no id in body") + key.len();
    body[start..].split('"').next().unwrap().to_owned()
}

/// Polls healthz until at least one job is running (bounded).
fn wait_running(client: &Client) {
    for _ in 0..200 {
        let h = client.healthz().unwrap();
        if h.body.contains("\"running\":1") {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("no job reached the running state");
}

#[test]
fn submit_poll_stream_and_graceful_shutdown() {
    let (handle, client) = daemon("e2e", 4);

    let health = client.healthz().unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);

    let reply = client.submit(&tiny(7)).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id = id_of(&reply.body);

    let status = client
        .wait_terminal(&id, 600, Duration::from_millis(50))
        .unwrap();
    assert!(status.contains("\"state\":\"done\""), "{status}");
    assert!(status.contains("\"summary\":{"), "{status}");
    assert!(status.contains("\"fit_total\":"), "{status}");
    assert!(status.contains("\"masked_probability\":"), "{status}");

    // The event stream replays the last snapshot (or the final status) even
    // after completion, so late subscribers still get one line.
    let line = client.stream_one_event(&id).unwrap();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");

    let list = client.list().unwrap();
    assert!(list.body.starts_with('[') && list.body.contains(&id));

    let reply = client.shutdown().unwrap();
    assert_eq!(reply.status, 202);
    handle.wait();
    assert!(client.healthz().is_err(), "daemon still listening");
}

#[test]
fn identical_specs_are_single_flight() {
    let (handle, client) = daemon("dedup", 4);

    let first = client.submit(&tiny(11)).unwrap();
    assert_eq!(first.status, 202);
    let id = id_of(&first.body);

    // Same spec again while queued/running: attaches, never a second run.
    let second = client.submit(&tiny(11)).unwrap();
    assert_eq!(second.status, 200, "{}", second.body);
    assert!(
        second.body.contains("\"attached\":true") || second.body.contains("\"state\":\"done\""),
        "{}",
        second.body
    );
    assert_eq!(id_of(&second.body), id);

    client
        .wait_terminal(&id, 600, Duration::from_millis(50))
        .unwrap();

    // After completion the recorded result answers instantly.
    let third = client.submit(&tiny(11)).unwrap();
    assert_eq!(third.status, 200);
    assert!(third.body.contains("\"state\":\"done\""), "{}", third.body);

    // A different seed is a different campaign.
    let other = client.submit(&tiny(12)).unwrap();
    assert_eq!(other.status, 202);
    assert_ne!(id_of(&other.body), id);

    client.shutdown().unwrap();
    handle.wait();
}

#[test]
fn full_queue_rejects_then_sheds_by_priority() {
    let (handle, client) = daemon("overload", 1);

    // Occupy the worker, then the single queue slot.
    let a = client.submit(&slow(21, 0)).unwrap();
    assert_eq!(a.status, 202, "{}", a.body);
    wait_running(&client);
    let b = client.submit(&slow(22, 0)).unwrap();
    assert_eq!(b.status, 202, "{}", b.body);
    let b_id = id_of(&b.body);

    // Equal priority at a full queue: explicit backpressure.
    let c = client.submit(&slow(23, 0)).unwrap();
    assert_eq!(c.status, 429, "{}", c.body);
    assert!(c.body.contains("retry_after_secs"), "{}", c.body);

    // Higher priority: the weakest queued job is shed, visibly.
    let d = client.submit(&slow(24, 5)).unwrap();
    assert_eq!(d.status, 202, "{}", d.body);
    assert!(
        d.body.contains(&format!("\"shed\":\"{b_id}\"")),
        "{}",
        d.body
    );
    let shed_status = client.status(&b_id).unwrap();
    assert!(
        shed_status.body.contains("\"state\":\"shed\""),
        "{}",
        shed_status.body
    );
    assert!(
        shed_status.body.contains("overload"),
        "{}",
        shed_status.body
    );

    // Cancel what is left and drain.
    client.cancel(&id_of(&a.body)).unwrap();
    client.cancel(&id_of(&d.body)).unwrap();
    client.shutdown().unwrap();
    handle.wait();
}

#[test]
fn cancellation_is_cooperative_and_checkpointed() {
    let (handle, client) = daemon("cancel", 4);
    let state_dir = scratch("cancel");

    let reply = client.submit(&slow(31, 0)).unwrap();
    assert_eq!(reply.status, 202);
    let id = id_of(&reply.body);
    wait_running(&client);
    std::thread::sleep(Duration::from_millis(300)); // let some cells commit

    let cancel = client.cancel(&id).unwrap();
    assert_eq!(cancel.status, 202, "{}", cancel.body);
    let status = client
        .wait_terminal(&id, 200, Duration::from_millis(50))
        .unwrap();
    assert!(status.contains("\"state\":\"cancelled\""), "{status}");

    // The drain left a resumable checkpoint behind.
    let ckpt = state_dir.join(format!("job-{id}.ckpt"));
    assert!(ckpt.is_file(), "missing checkpoint {}", ckpt.display());

    client.shutdown().unwrap();
    handle.wait();
}

#[test]
fn deadline_expiry_is_reported_as_expired() {
    let (handle, client) = daemon("deadline", 4);

    let body =
        "{\"network\":\"lstm\",\"samples\":1500,\"seed\":41,\"deadline_ms\":100,\"retries\":0}";
    let reply = client.submit(body).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id = id_of(&reply.body);

    let status = client
        .wait_terminal(&id, 400, Duration::from_millis(50))
        .unwrap();
    assert!(status.contains("\"state\":\"expired\""), "{status}");
    assert!(status.contains("deadline"), "{status}");

    client.shutdown().unwrap();
    handle.wait();
}

#[test]
fn malformed_and_hostile_requests_get_clean_errors() {
    use std::io::{Read, Write};

    let (handle, client) = daemon("hostile", 4);

    // Bad JSON, unknown fields, unknown values: 400 with the reason.
    for body in [
        "not json",
        "{\"network\":\"lstm\",\"sample\":1}",
        "{\"network\":\"vgg\"}",
    ] {
        let reply = client.request("POST", "/campaigns", Some(body)).unwrap();
        assert_eq!(reply.status, 400, "body `{body}` → {}", reply.body);
        assert!(reply.body.contains("\"error\""), "{}", reply.body);
    }

    // Unknown routes and wrong methods.
    assert_eq!(client.request("GET", "/nope", None).unwrap().status, 404);
    assert_eq!(client.status("doesnotexist").unwrap().status, 404);
    assert_eq!(
        client.request("PUT", "/campaigns", None).unwrap().status,
        405
    );
    assert_eq!(
        client.request("DELETE", "/healthz", None).unwrap().status,
        405
    );

    // Oversized body: 413, bounded memory.
    let huge = format!(
        "{{\"network\":\"lstm\",\"pad\":\"{}\"}}",
        "x".repeat(80 * 1024)
    );
    let reply = client.request("POST", "/campaigns", Some(&huge)).unwrap();
    assert_eq!(reply.status, 413, "{}", reply.body);

    // Protocol garbage on a raw socket: 400, not a hang or a crash.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let mut out = String::new();
    let _ = raw.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 400"), "{out}");

    // The daemon is still healthy after all of it.
    assert_eq!(client.healthz().unwrap().status, 200);
    client.shutdown().unwrap();
    handle.wait();
}

#[test]
fn worker_panics_are_isolated_and_reported() {
    use fidelity_core::resilience::{ChaosMode, ChaosSpec};

    // Learn a real (node, category) cell of the tiny campaign, then boot a
    // daemon whose campaigns panic on that cell's first sample.
    let probe = JobSpec::from_json_str(&tiny(51)).unwrap();
    let (engine, trace, metric) = probe.deploy().unwrap();
    let accel = fidelity_accel::presets::nvdla_like();
    let result = fidelity_core::campaign::run_campaign(
        &engine,
        &trace,
        &accel,
        metric.as_ref(),
        &probe.campaign_spec(2),
    )
    .unwrap();
    let target = &result.cells[0];
    let chaos = vec![ChaosSpec {
        node: target.node,
        category: target.category,
        mode: ChaosMode::PanicAtSample(0),
    }];

    let (handle, client) = daemon_with("chaos", 4, chaos);
    let reply = client.submit(&tiny(51)).unwrap();
    assert_eq!(reply.status, 202);
    let id = id_of(&reply.body);
    let status = client
        .wait_terminal(&id, 600, Duration::from_millis(50))
        .unwrap();

    // The panicking cell is confined: the campaign completes within its
    // failure budget and the failure count is reported, not swallowed.
    assert!(status.contains("\"state\":\"done\""), "{status}");
    assert!(status.contains("\"cell_failures\":1"), "{status}");
    assert_eq!(client.healthz().unwrap().status, 200);

    client.shutdown().unwrap();
    handle.wait();
}

#[test]
fn drain_and_restart_loses_no_accepted_job() {
    let dir = scratch("restart");
    let cfg = || ServeConfig {
        state_dir: dir.clone(),
        queue_cap: 4,
        workers: 1,
        campaign_threads: 2,
        chaos: Vec::new(),
    };

    // Lifetime 1: accept a slow job and a queued job, then drain mid-run.
    // The job is deliberately long (well past the drain point even when
    // parallel tests contend for the CPU) so the drain always lands
    // mid-campaign rather than after an early finish.
    let long = "{\"network\":\"lstm\",\"samples\":6000,\"seed\":61}";
    let sup = Supervisor::start(cfg()).unwrap();
    let slow_spec = JobSpec::from_json_str(long).unwrap();
    let tiny_spec = JobSpec::from_json_str(&tiny(62)).unwrap();
    let (slow_id, outcome) = sup.submit(slow_spec.clone()).unwrap();
    assert_eq!(outcome, SubmitOutcome::Accepted);
    let (tiny_id, outcome) = sup.submit(tiny_spec.clone()).unwrap();
    assert_eq!(outcome, SubmitOutcome::Accepted);
    for _ in 0..200 {
        if sup
            .status_json(&slow_id)
            .unwrap()
            .contains("\"state\":\"running\"")
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    std::thread::sleep(Duration::from_millis(250)); // let cells checkpoint
    sup.shutdown_and_drain();
    drop(sup);

    // Lifetime 2: both jobs recover from the journal and finish.
    let sup = Supervisor::start(cfg()).unwrap();
    assert_eq!(sup.recovered_jobs(), 2, "{}", sup.healthz_json());
    for id in [&slow_id, &tiny_id] {
        for attempt in 0..2400 {
            let status = sup.status_json(id).unwrap();
            if status.contains("\"state\":\"done\"") {
                break;
            }
            assert!(attempt < 2399, "job {id} never finished: {status}");
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    // Zero duplicated results: resubmitting answers from the record.
    let (_, outcome) = sup.submit(slow_spec).unwrap();
    assert_eq!(outcome, SubmitOutcome::AlreadyDone);
    let recovered_status = sup.status_json(&slow_id).unwrap();
    sup.shutdown_and_drain();

    // The recovered result matches an uninterrupted run of the same spec
    // in a fresh daemon (same summary digits, bit for bit).
    let fresh_dir = scratch("restart-fresh");
    let sup = Supervisor::start(ServeConfig {
        state_dir: fresh_dir,
        queue_cap: 4,
        workers: 1,
        campaign_threads: 2,
        chaos: Vec::new(),
    })
    .unwrap();
    let (id, _) = sup.submit(JobSpec::from_json_str(long).unwrap()).unwrap();
    for attempt in 0..2400 {
        if sup.status_json(&id).unwrap().contains("\"state\":\"done\"") {
            break;
        }
        assert!(attempt < 2399, "fresh job never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
    let fresh_status = sup.status_json(&id).unwrap();
    sup.shutdown_and_drain();

    assert_eq!(
        summary_of(&recovered_status),
        summary_of(&fresh_status),
        "recovered vs fresh summaries differ"
    );
}

#[test]
fn recovery_requeues_more_jobs_than_the_queue_cap() {
    // A pre-crash daemon can have `queue_cap` queued jobs plus running
    // ones, all of which fold back to queued on recovery — every one of
    // them was accepted, so every one must requeue even past the cap.
    let dir = scratch("over-cap-recovery");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let specs: Vec<JobSpec> = (71..75)
        .map(|seed| JobSpec::from_json_str(&tiny(seed)).unwrap())
        .collect();
    let mut journal = Journal::create(&dir.join("jobs.journal")).unwrap();
    for spec in &specs {
        journal
            .append(&JournalEvent::Submit {
                id: spec.job_id(),
                spec_json: spec.to_canonical_json(),
            })
            .unwrap();
    }
    drop(journal);

    let sup = Supervisor::start(ServeConfig {
        state_dir: dir,
        queue_cap: 1,
        workers: 1,
        campaign_threads: 2,
        chaos: Vec::new(),
    })
    .unwrap();
    assert_eq!(sup.recovered_jobs(), specs.len(), "{}", sup.healthz_json());
    for spec in &specs {
        let id = spec.job_id();
        for attempt in 0..2400 {
            let status = sup.status_json(&id).unwrap();
            if status.contains("\"state\":\"done\"") {
                break;
            }
            assert!(attempt < 2399, "recovered job {id} never ran: {status}");
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    sup.shutdown_and_drain();
}

#[test]
fn resubmit_at_full_queue_stays_terminal_not_wedged() {
    let sup = Supervisor::start(ServeConfig {
        state_dir: scratch("resubmit-full"),
        queue_cap: 1,
        workers: 1,
        campaign_threads: 2,
        chaos: Vec::new(),
    })
    .unwrap();

    // Occupy the worker, then cancel a queued job to get a terminal entry.
    let (a_id, outcome) = sup
        .submit(JobSpec::from_json_str(&slow(81, 0)).unwrap())
        .unwrap();
    assert_eq!(outcome, SubmitOutcome::Accepted);
    for attempt in 0..200 {
        if sup
            .status_json(&a_id)
            .unwrap()
            .contains("\"state\":\"running\"")
        {
            break;
        }
        assert!(attempt < 199, "job never started");
        std::thread::sleep(Duration::from_millis(25));
    }
    let (b_id, outcome) = sup
        .submit(JobSpec::from_json_str(&slow(82, 0)).unwrap())
        .unwrap();
    assert_eq!(outcome, SubmitOutcome::Accepted);
    assert_eq!(sup.cancel(&b_id), Some(JobState::Cancelled));

    // Refill the single queue slot, then resubmit the cancelled job into
    // the full queue: a clean Busy, with the terminal state untouched —
    // never a phantom entry marked queued but absent from the queue.
    let (c_id, outcome) = sup
        .submit(JobSpec::from_json_str(&slow(83, 0)).unwrap())
        .unwrap();
    assert_eq!(outcome, SubmitOutcome::Accepted);
    let (again, outcome) = sup
        .submit(JobSpec::from_json_str(&slow(82, 0)).unwrap())
        .unwrap();
    assert_eq!(again, b_id);
    assert!(matches!(outcome, SubmitOutcome::Busy { .. }), "{outcome:?}");
    let status = sup.status_json(&b_id).unwrap();
    assert!(status.contains("\"state\":\"cancelled\""), "{status}");

    // The id is not wedged: once space frees, resubmission really requeues.
    assert_eq!(sup.cancel(&c_id), Some(JobState::Cancelled));
    let (_, outcome) = sup
        .submit(JobSpec::from_json_str(&slow(82, 0)).unwrap())
        .unwrap();
    assert_eq!(outcome, SubmitOutcome::Accepted);
    let status = sup.status_json(&b_id).unwrap();
    assert!(
        status.contains("\"state\":\"queued\"") || status.contains("\"state\":\"running\""),
        "{status}"
    );

    sup.cancel(&a_id);
    sup.cancel(&b_id);
    sup.shutdown_and_drain();
}

#[test]
fn unparseable_recovered_spec_aborts_boot_and_preserves_the_journal() {
    // A journal whose records no longer parse (say, after a format change)
    // must abort recovery with the original journal intact on disk — not
    // truncate it first and lose durably journaled jobs.
    let dir = scratch("bad-spec-journal");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("jobs.journal");
    let mut journal = Journal::create(&path).unwrap();
    journal
        .append(&JournalEvent::Submit {
            id: "deadbeef".to_owned(),
            spec_json: r#"{"network":"vgg"}"#.to_owned(),
        })
        .unwrap();
    drop(journal);
    let before = std::fs::read(&path).unwrap();

    let err = Supervisor::start(ServeConfig {
        state_dir: dir,
        queue_cap: 4,
        workers: 1,
        campaign_threads: 2,
        chaos: Vec::new(),
    })
    .unwrap_err();
    assert!(err.contains("deadbeef"), "{err}");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "failed boot rewrote the journal"
    );
}

fn summary_of(status: &str) -> String {
    let key = "\"summary\":{";
    let start = status.find(key).expect("no summary") + key.len() - 1;
    let mut depth = 0usize;
    for (i, b) in status[start..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return status[start..=start + i].to_owned();
                }
            }
            _ => {}
        }
    }
    panic!("unterminated summary in {status}");
}
