//! `fidelity top`: a live terminal dashboard over a running daemon.
//!
//! Polls `GET /metrics` (Prometheus text, parsed with the in-repo parser)
//! and `GET /campaigns` (JSON) and renders queue state, injection
//! throughput, per-category masking probabilities with their Wilson 95%
//! intervals, and per-job progress bars. Everything between fetch and
//! print is a pure function of the two response bodies, so the whole
//! render path is unit-testable without a socket.
//!
//! Injections/second is derived from the `campaign_injections` counter
//! delta between consecutive polls (the first frame shows the per-job
//! reported rate instead, since a single scrape has no delta).

use std::fmt::Write as _;
use std::time::Duration;

use fidelity_obs::json::{self, Json};
use fidelity_obs::prom::{self, PromDump};

use crate::client::Client;

/// One sampled frame: the parsed metrics dump plus the jobs listing.
#[derive(Debug)]
pub struct TopFrame {
    /// Parsed `/metrics` families.
    pub metrics: PromDump,
    /// Parsed `/campaigns` array.
    pub jobs: Json,
}

impl TopFrame {
    /// Parses the two raw response bodies into a frame.
    ///
    /// # Errors
    ///
    /// Returns a description when either body fails to parse.
    pub fn parse(metrics_text: &str, campaigns_json: &str) -> Result<TopFrame, String> {
        let metrics = prom::parse(metrics_text)?;
        let jobs = json::parse(campaigns_json)?;
        Ok(TopFrame { metrics, jobs })
    }

    fn scalar(&self, name: &str) -> f64 {
        self.metrics.scalar(name).unwrap_or(0.0)
    }
}

/// Fetches one frame from a daemon.
///
/// # Errors
///
/// Returns connection/parse errors as text.
pub fn fetch(client: &Client) -> Result<TopFrame, String> {
    let metrics = client.request("GET", "/metrics", None)?;
    if metrics.status != 200 {
        return Err(format!("/metrics answered {}", metrics.status));
    }
    let campaigns = client.request("GET", "/campaigns", None)?;
    if campaigns.status != 200 {
        return Err(format!("/campaigns answered {}", campaigns.status));
    }
    TopFrame::parse(&metrics.body, &campaigns.body)
}

fn bar(frac: f64, width: usize) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

fn fmt_rate(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.1}M", v / 1_000_000.0)
    } else if v >= 1_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else {
        format!("{v:.0}")
    }
}

fn job_field<'a>(job: &'a Json, key: &str) -> Option<&'a Json> {
    job.get(key)
}

fn category_line(out: &mut String, kind: &str, samples: f64, masked: f64, lo: f64, hi: f64) {
    let label = match kind {
        "dp" => "datapath ",
        "lc" => "local ctl",
        "gc" => "global ctl",
        other => other,
    };
    let p = if samples > 0.0 { masked / samples } else { 0.0 };
    let _ = writeln!(
        out,
        "    {label:<10} masked {:>7.4}  [{lo:.4}, {hi:.4}]  n={}",
        p, samples as u64
    );
}

/// Renders a frame (optionally against the previous frame for counter
/// deltas) into the text the terminal shows. Pure.
pub fn render(frame: &TopFrame, prev: Option<(&TopFrame, Duration)>) -> String {
    let mut out = String::with_capacity(2048);

    let depth = frame.scalar("serve_queue_depth");
    let headroom = frame.scalar("serve_queue_headroom");
    let uptime = frame.scalar("serve_uptime_seconds");
    let submitted = frame.scalar("serve_jobs_submitted");
    let shed = frame.scalar("serve_jobs_shed");
    let rejected = frame.scalar("serve_jobs_rejected");
    let retries = frame.scalar("serve_jobs_retries");
    let running = frame.scalar("serve_jobs_state_running");
    let queued = frame.scalar("serve_jobs_state_queued");
    let done = frame.scalar("serve_jobs_state_done");
    let failed = frame.scalar("serve_jobs_state_failed");
    let injections = frame.scalar("campaign_injections");

    // Throughput: counter delta over the poll interval when we have a
    // previous frame, else the sum of per-job self-reported rates.
    let inj_per_sec = match prev {
        Some((p, dt)) if dt.as_secs_f64() > 0.0 => {
            (injections - p.scalar("campaign_injections")).max(0.0) / dt.as_secs_f64()
        }
        _ => jobs_iter(&frame.jobs)
            .filter_map(|j| j.get("progress"))
            .filter_map(|p| p.get("rate_per_sec"))
            .filter_map(Json::as_f64)
            .sum(),
    };

    let _ = writeln!(
        out,
        "fidelity top — up {}s   queue {}/{} (headroom {})   inj/s {}",
        uptime as u64,
        depth as u64,
        (depth + headroom) as u64,
        headroom as u64,
        fmt_rate(inj_per_sec)
    );
    let _ = writeln!(
        out,
        "jobs: {} queued, {} running, {} done, {} failed   submitted {}  shed {}  429 {}  retries {}",
        queued as u64, running as u64, done as u64, failed as u64,
        submitted as u64, shed as u64, rejected as u64, retries as u64
    );
    let dropped = frame.scalar("obs_trace_dropped_events");
    if dropped > 0.0 {
        let _ = writeln!(
            out,
            "!! trace sink dropped {} events — traces are lossy",
            dropped as u64
        );
    }
    out.push('\n');

    let mut shown = 0usize;
    for job in jobs_iter(&frame.jobs) {
        let id = job_field(job, "id").and_then(Json::as_str).unwrap_or("?");
        let state = job_field(job, "state")
            .and_then(Json::as_str)
            .unwrap_or("?");
        let network = job_field(job, "network")
            .and_then(Json::as_str)
            .unwrap_or("");
        let _ = write!(out, "  {id}  [{state:<9}] {network:<12}");
        if let Some(progress) = job_field(job, "progress") {
            let cells_done = progress
                .get("cells_done")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let cells_total = progress
                .get("cells_total")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let frac = if cells_total > 0.0 {
                cells_done / cells_total
            } else {
                0.0
            };
            let rate = progress
                .get("rate_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let _ = write!(
                out,
                " |{}| {:>3.0}% ({}/{} cells, {}/s)",
                bar(frac, 24),
                frac * 100.0,
                cells_done as u64,
                cells_total as u64,
                fmt_rate(rate)
            );
            // Adaptive campaigns additionally report per-stratum
            // convergence (strata whose FIT bound resolved below ε).
            let strata_total = progress
                .get("strata_total")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if strata_total > 0.0 {
                let resolved = progress
                    .get("strata_resolved")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                let _ = write!(out, "  strata {}/{}", resolved as u64, strata_total as u64);
            }
            out.push('\n');
            if let Some(Json::Arr(kinds)) = progress.get("per_kind") {
                for k in kinds {
                    category_line(
                        &mut out,
                        k.get("kind").and_then(Json::as_str).unwrap_or("?"),
                        k.get("samples").and_then(Json::as_f64).unwrap_or(0.0),
                        k.get("masked").and_then(Json::as_f64).unwrap_or(0.0),
                        k.get("lo").and_then(Json::as_f64).unwrap_or(0.0),
                        k.get("hi").and_then(Json::as_f64).unwrap_or(0.0),
                    );
                }
            }
        } else {
            out.push('\n');
        }
        shown += 1;
    }
    if shown == 0 {
        out.push_str("  (no campaigns)\n");
    }
    out
}

fn jobs_iter(jobs: &Json) -> std::slice::Iter<'_, Json> {
    const EMPTY: &[Json] = &[];
    match jobs {
        Json::Arr(v) => v.iter(),
        _ => EMPTY.iter(),
    }
}

/// Runs the dashboard: fetch + render every `interval`, clearing the
/// screen between frames. With `once`, prints a single frame and returns
/// (the CI smoke path).
///
/// # Errors
///
/// In `once` mode, fetch errors are fatal. In live mode a failed poll is
/// rendered as a status line and polling continues (the daemon may be
/// restarting); only ten consecutive failures abort.
pub fn run(addr: &str, once: bool, interval: Duration) -> Result<(), String> {
    let client = Client::new(addr);
    if once {
        let frame = fetch(&client)?;
        print!("{}", render(&frame, None));
        return Ok(());
    }
    let mut prev: Option<TopFrame> = None;
    let mut consecutive_failures = 0usize;
    loop {
        match fetch(&client) {
            Ok(frame) => {
                consecutive_failures = 0;
                let text = render(&frame, prev.as_ref().map(|p| (p, interval)));
                // ANSI clear + home; plain prints keep `--once` pipeable.
                print!("\x1b[2J\x1b[H{text}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                prev = Some(frame);
            }
            Err(e) => {
                consecutive_failures += 1;
                if consecutive_failures >= 10 {
                    return Err(format!("lost the daemon: {e}"));
                }
                println!("(poll failed: {e})");
            }
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS: &str = "\
# TYPE serve_queue_depth gauge
serve_queue_depth 3
# TYPE serve_queue_headroom gauge
serve_queue_headroom 5
# TYPE serve_uptime_seconds gauge
serve_uptime_seconds 42
# TYPE serve_jobs_submitted counter
serve_jobs_submitted 7
# TYPE serve_jobs_state_running gauge
serve_jobs_state_running 1
# TYPE campaign_injections counter
campaign_injections 10000
";

    const CAMPAIGNS: &str = r#"[{"id":"abc123","state":"running","network":"lenet5",
        "progress":{"cells_done":5,"cells_total":10,"rate_per_sec":1234.0,
        "per_kind":[{"kind":"dp","samples":600,"masked":540,"lo":0.87,"hi":0.92},
                    {"kind":"lc","samples":200,"masked":120,"lo":0.53,"hi":0.66}]}}]"#;

    #[test]
    fn renders_queue_jobs_and_wilson_intervals() {
        let frame = TopFrame::parse(METRICS, CAMPAIGNS).expect("frame parses");
        let text = render(&frame, None);
        assert!(text.contains("queue 3/8"), "queue line in:\n{text}");
        assert!(text.contains("up 42s"));
        assert!(text.contains("abc123"));
        assert!(text.contains("[running"));
        assert!(text.contains("lenet5"));
        assert!(text.contains("50%"), "progress percent in:\n{text}");
        assert!(
            text.contains("[0.8700, 0.9200]"),
            "dp Wilson CI in:\n{text}"
        );
        assert!(text.contains("datapath"));
        assert!(text.contains("local ctl"));
        // First frame: inj/s falls back to the per-job reported rate.
        assert!(text.contains("inj/s 1.2k"), "rate in:\n{text}");
        // No strata fields → fixed campaign → no strata segment.
        assert!(!text.contains("strata"), "no strata for fixed in:\n{text}");
    }

    #[test]
    fn adaptive_jobs_show_stratum_convergence() {
        let campaigns = CAMPAIGNS.replace(
            "\"rate_per_sec\":1234.0,",
            "\"rate_per_sec\":1234.0,\"strata_resolved\":41,\"strata_total\":54,",
        );
        let frame = TopFrame::parse(METRICS, &campaigns).expect("frame parses");
        let text = render(&frame, None);
        assert!(text.contains("strata 41/54"), "strata in:\n{text}");
    }

    #[test]
    fn rate_uses_counter_delta_when_previous_frame_exists() {
        let prev = TopFrame::parse(METRICS, "[]").unwrap();
        let cur_metrics = METRICS.replace("campaign_injections 10000", "campaign_injections 30000");
        let cur = TopFrame::parse(&cur_metrics, "[]").unwrap();
        let text = render(&cur, Some((&prev, Duration::from_secs(2))));
        assert!(text.contains("inj/s 10.0k"), "delta rate in:\n{text}");
        assert!(text.contains("(no campaigns)"));
    }

    #[test]
    fn lossy_trace_sink_is_flagged() {
        let metrics = format!(
            "{METRICS}# TYPE obs_trace_dropped_events counter\nobs_trace_dropped_events 4\n"
        );
        let frame = TopFrame::parse(&metrics, "[]").unwrap();
        let text = render(&frame, None);
        assert!(text.contains("dropped 4 events"));
    }

    #[test]
    fn malformed_bodies_are_reported_not_panicked() {
        assert!(TopFrame::parse("not prometheus", "[]").is_err());
        assert!(TopFrame::parse(METRICS, "{broken").is_err());
    }
}
