//! The supervised job engine behind the HTTP API.
//!
//! Jobs move through a small state machine:
//!
//! ```text
//!                      +----------------------------------------+
//!                      v                                        |
//! submit -> queued -> running -> done                           |
//!             |          |-----> failed  (retries exhausted) ---+ resubmit
//!             |          |-----> cancelled (DELETE, drain)      |
//!             |          `-----> expired  (deadline)            |
//!             `--------> shed    (overload eviction) -----------+
//! ```
//!
//! Every transition is journaled before it takes effect (write-ahead), so a
//! killed daemon recovers exactly: accepted-but-unfinished jobs re-enqueue
//! and resume from their checkpoints, finished jobs keep their recorded
//! summaries, and a resumed campaign is bit-identical to an uninterrupted
//! one (the cell RNG streams are derived, never ambient).
//!
//! Failure handling per job: attempts run under the campaign's own panic
//! isolation; a failed attempt retries with the workspace's seeded
//! exponential backoff ([`RetryBackoff`]) up to the job's retry budget,
//! each retry resuming from the checkpoint rather than starting over.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use fidelity_core::analysis::{analyze, ResilienceAnalysis};
use fidelity_core::fit::PAPER_RAW_FIT_PER_MB;
use fidelity_core::resilience::{CheckpointSpec, RetryBackoff};
use fidelity_obs::json::escape_into;
use fidelity_obs::progress::{ProgressShare, ProgressSnapshot, ProgressSpec};
use fidelity_obs::trace::{SinkHandle, TraceSink, Value};
use fidelity_obs::{clock, event, prof};
use fidelity_par::CancelToken;

use crate::jobspec::JobSpec;
use crate::jobtrace::{self, JobTracer};
use crate::journal::{replay_file, Journal, JournalEvent};
use crate::metrics::ServeMetrics;
use crate::queue::{JobQueue, PushOutcome, QueueEntry};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory for the journal and per-job checkpoints.
    pub state_dir: PathBuf,
    /// Bounded queue capacity; submissions beyond it are rejected or shed.
    pub queue_cap: usize,
    /// Concurrent campaign executions.
    pub workers: usize,
    /// Worker threads per campaign (results are bit-identical for any
    /// value).
    pub campaign_threads: usize,
    /// Fault injection applied to every job's campaign — the service's own
    /// chaos-test hook. Always empty in production configurations.
    pub chaos: Vec<fidelity_core::resilience::ChaosSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            state_dir: PathBuf::from("fidelity-serve-state"),
            queue_cap: 8,
            workers: 1,
            campaign_threads: 2,
            chaos: Vec::new(),
        }
    }
}

/// Job lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing the campaign.
    Running,
    /// Finished; a summary is recorded.
    Done,
    /// Retries exhausted.
    Failed,
    /// Cancelled via the API.
    Cancelled,
    /// The job deadline expired.
    Expired,
    /// Evicted from a full queue by higher-priority work.
    Shed,
}

impl JobState {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Expired => "expired",
            JobState::Shed => "shed",
        }
    }

    /// Whether the state ends the job's current lifetime. Terminal jobs
    /// stay registered (for dedup and status) and may be resubmitted.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done
                | JobState::Failed
                | JobState::Cancelled
                | JobState::Expired
                | JobState::Shed
        )
    }
}

#[derive(Debug)]
struct JobMeta {
    state: JobState,
    attempts: usize,
    priority: i32,
    seq: u64,
    error: Option<String>,
    summary_json: Option<String>,
    /// When the job entered the queue (`clock::since_epoch_us`), for the
    /// queue-wait span in the per-job trace.
    queued_at_us: u64,
}

/// One registered job (by fingerprint id).
#[derive(Debug)]
pub struct JobEntry {
    id: String,
    spec: JobSpec,
    meta: Mutex<JobMeta>,
    /// Cancellation for the *current* lifetime; tokens never reset, so a
    /// resubmission installs a fresh one.
    cancel: Mutex<CancelToken>,
    /// Set by the deadline monitor just before it fires the token, so the
    /// worker can tell expiry from an API cancel.
    deadline_fired: AtomicBool,
    /// Absolute deadline (`clock::since_epoch_us`), 0 while not running.
    deadline_at_us: AtomicU64,
    /// Progress outlet shared with status queries and event streams.
    share: ProgressShare,
    /// Per-job trace writer (`None` only when the trace file could not be
    /// opened — tracing degrades, the job still runs).
    tracer: Option<Arc<JobTracer>>,
}

/// What `submit` did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Newly accepted and queued.
    Accepted,
    /// Accepted; the named lower-priority queued job was shed to make room.
    AcceptedShedding {
        /// Id of the evicted job.
        victim: String,
    },
    /// An identical spec is already queued or running; this submission
    /// attached to it (single-flight).
    Attached {
        /// The in-flight job's state.
        state: JobState,
    },
    /// An identical spec already finished; the recorded result applies.
    AlreadyDone,
    /// The queue is full of equal-or-higher-priority work; retry later.
    Busy {
        /// Suggested wait before retrying.
        retry_after: Duration,
    },
}

/// The supervised job engine. One instance per daemon; shared with the
/// HTTP listener through an `Arc`.
#[derive(Debug)]
pub struct Supervisor {
    cfg: ServeConfig,
    jobs: Mutex<HashMap<String, Arc<JobEntry>>>,
    queue: JobQueue,
    journal: Mutex<Journal>,
    seq: AtomicU64,
    accepting: AtomicBool,
    shutdown: CancelToken,
    running_jobs: AtomicUsize,
    recovered: usize,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    metrics: Arc<ServeMetrics>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Supervisor {
    /// Boots the engine: recovers the journal, re-enqueues unfinished jobs,
    /// and spawns the worker and deadline-monitor threads.
    ///
    /// # Errors
    ///
    /// Fails on an unusable state directory or a corrupt journal (a torn
    /// tail is not corruption; see [`crate::journal`]).
    pub fn start(cfg: ServeConfig) -> Result<Arc<Supervisor>, String> {
        std::fs::create_dir_all(&cfg.state_dir)
            .map_err(|e| format!("state dir {}: {e}", cfg.state_dir.display()))?;
        let journal_path = cfg.state_dir.join("jobs.journal");
        let events = replay_file(&journal_path)?;

        // Fold the log into per-job final states, preserving submit order.
        let mut order: Vec<String> = Vec::new();
        let mut folded: HashMap<String, (String, JobState, Option<String>, Option<String>)> =
            HashMap::new();
        for ev in &events {
            let id = ev.id().to_owned();
            match ev {
                JournalEvent::Submit { spec_json, .. } => {
                    if !folded.contains_key(&id) {
                        order.push(id.clone());
                    }
                    folded.insert(id, (spec_json.clone(), JobState::Queued, None, None));
                }
                JournalEvent::Start { .. } => {
                    if let Some(f) = folded.get_mut(&id) {
                        f.1 = JobState::Running;
                    }
                }
                JournalEvent::Done { summary_json, .. } => {
                    if let Some(f) = folded.get_mut(&id) {
                        f.1 = JobState::Done;
                        f.3 = Some(summary_json.clone());
                    }
                }
                JournalEvent::Fail { reason, .. } => {
                    if let Some(f) = folded.get_mut(&id) {
                        f.1 = JobState::Failed;
                        f.2 = Some(reason.clone());
                    }
                }
                JournalEvent::Cancel { .. } => {
                    if let Some(f) = folded.get_mut(&id) {
                        f.1 = JobState::Cancelled;
                        f.2 = Some("cancelled".to_owned());
                    }
                }
                JournalEvent::Expire { .. } => {
                    if let Some(f) = folded.get_mut(&id) {
                        f.1 = JobState::Expired;
                        f.2 = Some("deadline expired".to_owned());
                    }
                }
                JournalEvent::Shed { .. } => {
                    if let Some(f) = folded.get_mut(&id) {
                        f.1 = JobState::Shed;
                        f.2 = Some("shed under overload".to_owned());
                    }
                }
            }
        }

        // Re-validate every recovered record before rewriting anything: a
        // spec that no longer parses must abort recovery while the original
        // journal is still intact on disk.
        let mut recovered_jobs = Vec::with_capacity(order.len());
        for id in &order {
            let Some((spec_json, state, error, summary)) = folded.remove(id) else {
                continue;
            };
            let spec =
                JobSpec::from_json_str(&spec_json).map_err(|e| format!("journal job {id}: {e}"))?;
            recovered_jobs.push((id.clone(), spec_json, spec, state, error, summary));
        }

        // Compact: rewrite the journal from the folded state, dropping any
        // torn tail and bounding the log's growth. The rewrite goes to a
        // temporary file that is atomically renamed over `jobs.journal`
        // only once every record has landed, so a crash or I/O error
        // mid-compaction never loses durably journaled jobs.
        let tmp_path = cfg.state_dir.join("jobs.journal.tmp");
        let mut journal = Journal::create(&tmp_path)?;
        let mut entries: Vec<Arc<JobEntry>> = Vec::new();
        let mut recovered = 0usize;
        for (id, spec_json, spec, state, error, summary) in recovered_jobs {
            journal.append(&JournalEvent::Submit {
                id: id.clone(),
                spec_json,
            })?;
            // An interrupted `running` job recovers as queued: its
            // checkpoint holds the finished cells, so the rerun is a
            // resume, not a restart.
            let recovered_state = match state {
                JobState::Running | JobState::Queued => JobState::Queued,
                terminal => {
                    let terminal_event = match terminal {
                        JobState::Done => JournalEvent::Done {
                            id: id.clone(),
                            summary_json: summary.clone().unwrap_or_else(|| "{}".to_owned()),
                        },
                        JobState::Failed => JournalEvent::Fail {
                            id: id.clone(),
                            reason: error.clone().unwrap_or_default(),
                        },
                        JobState::Cancelled => JournalEvent::Cancel { id: id.clone() },
                        JobState::Expired => JournalEvent::Expire { id: id.clone() },
                        _ => JournalEvent::Shed { id: id.clone() },
                    };
                    journal.append(&terminal_event)?;
                    terminal
                }
            };
            if recovered_state == JobState::Queued {
                recovered += 1;
            }
            let priority = spec.priority;
            entries.push(Arc::new(JobEntry {
                id: id.clone(),
                spec,
                meta: Mutex::new(JobMeta {
                    state: recovered_state,
                    attempts: 0,
                    priority,
                    seq: 0,
                    error,
                    summary_json: summary,
                    queued_at_us: 0,
                }),
                cancel: Mutex::new(CancelToken::new()),
                deadline_fired: AtomicBool::new(false),
                deadline_at_us: AtomicU64::new(0),
                share: ProgressShare::new(),
                tracer: JobTracer::open(&cfg.state_dir, &id).ok().map(Arc::new),
            }));
        }
        journal.commit_rename(&journal_path)?;

        let metrics = Arc::new(ServeMetrics::new());
        metrics.recovered.add(recovered as u64);
        let sup = Arc::new(Supervisor {
            queue: JobQueue::new(cfg.queue_cap),
            cfg,
            jobs: Mutex::new(HashMap::new()),
            journal: Mutex::new(journal),
            seq: AtomicU64::new(1),
            accepting: AtomicBool::new(true),
            shutdown: CancelToken::new(),
            running_jobs: AtomicUsize::new(0),
            recovered,
            threads: Mutex::new(Vec::new()),
            metrics,
        });
        {
            let mut jobs = lock(&sup.jobs);
            for entry in entries {
                let requeue = lock(&entry.meta).state == JobState::Queued;
                if requeue {
                    let seq = sup.seq.fetch_add(1, Ordering::Relaxed);
                    {
                        let mut meta = lock(&entry.meta);
                        meta.seq = seq;
                        meta.queued_at_us = clock::since_epoch_us();
                    }
                    // Recovered jobs were accepted in a previous lifetime,
                    // so requeueing bypasses the capacity check: a pre-crash
                    // queue at cap plus interrupted running jobs can exceed
                    // `queue_cap`, and dropping any of them would break the
                    // zero-lost-accepted-jobs guarantee.
                    sup.queue.push_recovered(QueueEntry {
                        id: entry.id.clone(),
                        priority: entry.spec.priority,
                        seq,
                    });
                    event!("serve.recover", id = &entry.id);
                    if let Some(t) = &entry.tracer {
                        // The recovery record ties this generation's pid to
                        // the job's trace id, minted by the generation that
                        // admitted it.
                        t.record_event("job.recover", &[]);
                    }
                }
                jobs.insert(entry.id.clone(), entry);
            }
        }

        let workers = sup.cfg.workers.max(1);
        let mut threads = Vec::with_capacity(workers + 1);
        for w in 0..workers {
            let s = Arc::clone(&sup);
            let spawned = std::thread::Builder::new()
                .name(format!("serve-worker-{w}"))
                .spawn(move || s.worker_loop());
            match spawned {
                Ok(h) => threads.push(h),
                Err(e) => return Err(format!("worker spawn: {e}")),
            }
        }
        let s = Arc::clone(&sup);
        match std::thread::Builder::new()
            .name("serve-deadline".to_owned())
            .spawn(move || s.deadline_loop())
        {
            Ok(h) => threads.push(h),
            Err(e) => return Err(format!("monitor spawn: {e}")),
        }
        *lock(&sup.threads) = threads;
        Ok(sup)
    }

    /// Jobs re-enqueued from the journal at boot.
    pub fn recovered_jobs(&self) -> usize {
        self.recovered
    }

    /// Whether new submissions are being accepted (false while draining).
    pub fn is_accepting(&self) -> bool {
        self.accepting.load(Ordering::Acquire)
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// Fails while the daemon is draining or on journal I/O errors.
    pub fn submit(&self, spec: JobSpec) -> Result<(String, SubmitOutcome), String> {
        if !self.is_accepting() {
            return Err("shutting down; not accepting new campaigns".to_owned());
        }
        let id = spec.job_id();
        let mut jobs = lock(&self.jobs);
        if let Some(existing) = jobs.get(&id) {
            let state = lock(&existing.meta).state;
            match state {
                JobState::Done => {
                    self.metrics.dedup.inc();
                    return Ok((id, SubmitOutcome::AlreadyDone));
                }
                s if !s.is_terminal() => {
                    // Single-flight: an identical spec is already in flight;
                    // this submission rides along.
                    event!("serve.attach", id = &id);
                    self.metrics.dedup.inc();
                    return Ok((id, SubmitOutcome::Attached { state: s }));
                }
                _ => {} // terminal non-done: resubmission below
            }
        }

        // Backpressure is decided before anything mutates: submitters are
        // serialized by the `jobs` lock held here, and concurrent pops and
        // cancels only free queue space, so an admission predicted now
        // cannot come back rejected from the push below. This keeps a
        // rejected resubmission's terminal state untouched — the job is
        // never left marked queued while absent from the queue.
        if !self.queue.would_accept(spec.priority) {
            event!("serve.reject", id = &id);
            self.metrics.rejected.inc();
            return Ok((
                id,
                SubmitOutcome::Busy {
                    retry_after: crate::queue::RETRY_AFTER,
                },
            ));
        }

        // Write-ahead: the submit record is durable before the job is
        // registered or queued, so a crash at any later point recovers the
        // job, and a failed append leaves no half-accepted state behind.
        self.journal_append(&JournalEvent::Submit {
            id: id.clone(),
            spec_json: spec.to_canonical_json(),
        })?;

        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let queued_at_us = clock::since_epoch_us();
        let fresh = !jobs.contains_key(&id);
        let entry = jobs.entry(id.clone()).or_insert_with(|| {
            Arc::new(JobEntry {
                id: id.clone(),
                spec: spec.clone(),
                meta: Mutex::new(JobMeta {
                    state: JobState::Queued,
                    attempts: 0,
                    priority: spec.priority,
                    seq,
                    error: None,
                    summary_json: None,
                    queued_at_us,
                }),
                cancel: Mutex::new(CancelToken::new()),
                deadline_fired: AtomicBool::new(false),
                deadline_at_us: AtomicU64::new(0),
                share: ProgressShare::new(),
                tracer: JobTracer::open(&self.cfg.state_dir, &id).ok().map(Arc::new),
            })
        });
        if !fresh {
            // Resubmission of a failed/cancelled/expired/shed job: new
            // lifetime, fresh token, keep the id (and its checkpoint).
            let mut meta = lock(&entry.meta);
            meta.state = JobState::Queued;
            meta.attempts = 0;
            meta.priority = spec.priority;
            meta.seq = seq;
            meta.error = None;
            meta.queued_at_us = queued_at_us;
            drop(meta);
            *lock(&entry.cancel) = CancelToken::new();
            entry.deadline_fired.store(false, Ordering::Release);
        }
        if let Some(t) = &entry.tracer {
            // The admission record mints the trace id on the wire: from here
            // on every journal mirror, span, and terminal record carries it.
            t.record_event(
                "job.admit",
                &[
                    ("state", Value::Str("accepted")),
                    ("priority", Value::I64(i64::from(spec.priority))),
                    ("network", Value::Str(&spec.network)),
                ],
            );
        }

        match self.queue.push(QueueEntry {
            id: id.clone(),
            priority: spec.priority,
            seq,
        }) {
            PushOutcome::Queued => {
                event!("serve.submit", id = &id, priority = spec.priority);
                self.metrics.submitted.inc();
                Ok((id, SubmitOutcome::Accepted))
            }
            PushOutcome::Shed { victim } => {
                // Report the eviction loudly: mark the victim, journal it,
                // and name it in the acceptance response. The journal write
                // is best-effort — the write-ahead submit record above is
                // what recovery depends on; losing the shed record merely
                // re-runs a deterministic, checkpointed job.
                if let Some(v) = jobs.get(&victim.id) {
                    let mut meta = lock(&v.meta);
                    meta.state = JobState::Shed;
                    meta.error = Some(format!("shed under overload by job {id}"));
                }
                let _ = self.journal_append(&JournalEvent::Shed {
                    id: victim.id.clone(),
                });
                event!("serve.shed", victim = &victim.id, for_job = &id);
                self.metrics.submitted.inc();
                self.metrics.shed.inc();
                // Trace I/O happens outside the jobs guard: the victim's
                // terminal record is informational, and flushing a file
                // under the admission lock would stall every submitter.
                let victim_tracer = jobs.get(&victim.id).and_then(|v| v.tracer.clone());
                drop(jobs);
                if let Some(t) = victim_tracer {
                    t.record_event("job.terminal", &[("state", Value::Str("shed"))]);
                    t.flush();
                }
                Ok((id, SubmitOutcome::AcceptedShedding { victim: victim.id }))
            }
            PushOutcome::Rejected { retry_after } => {
                // Unreachable by construction (`would_accept` held under
                // this same lock), kept as a safe fallback: undo the
                // registration so no job is left marked queued while absent
                // from the queue, and journal the shed so recovery agrees.
                if fresh {
                    jobs.remove(&id);
                } else if let Some(v) = jobs.get(&id) {
                    let mut meta = lock(&v.meta);
                    meta.state = JobState::Shed;
                    meta.error = Some("rejected by a full queue".to_owned());
                }
                let _ = self.journal_append(&JournalEvent::Shed { id: id.clone() });
                event!("serve.reject", id = &id);
                self.metrics.rejected.inc();
                Ok((id, SubmitOutcome::Busy { retry_after }))
            }
        }
    }

    /// Cancels a job. Queued jobs are dequeued immediately; running jobs
    /// get a cooperative cancel (they drain to their checkpoint first).
    /// Returns the resulting state, or `None` for an unknown id.
    pub fn cancel(&self, id: &str) -> Option<JobState> {
        let entry = lock(&self.jobs).get(id).map(Arc::clone)?;
        let mut meta = lock(&entry.meta);
        match meta.state {
            JobState::Queued => {
                self.queue.remove(id);
                meta.state = JobState::Cancelled;
                meta.error = Some("cancelled".to_owned());
                drop(meta);
                let _ = self.journal_append(&JournalEvent::Cancel { id: id.to_owned() });
                event!("serve.cancel", id = id, was = "queued");
                if let Some(t) = &entry.tracer {
                    t.record_event("job.terminal", &[("state", Value::Str("cancelled"))]);
                    t.flush();
                }
                Some(JobState::Cancelled)
            }
            JobState::Running => {
                drop(meta);
                lock(&entry.cancel).cancel();
                event!("serve.cancel", id = id, was = "running");
                Some(JobState::Running) // will transition when the drain lands
            }
            terminal => Some(terminal),
        }
    }

    /// Status of one job as a JSON object, or `None` for an unknown id.
    pub fn status_json(&self, id: &str) -> Option<String> {
        let entry = lock(&self.jobs).get(id).map(Arc::clone)?;
        Some(self.render_status(&entry))
    }

    /// All registered jobs as a JSON array (submission-stable order by
    /// sequence, then id).
    pub fn list_json(&self) -> String {
        let mut entries: Vec<Arc<JobEntry>> = lock(&self.jobs).values().map(Arc::clone).collect();
        entries.sort_by_key(|e| {
            let meta = lock(&e.meta);
            (meta.seq, e.id.clone())
        });
        let mut s = String::from("[");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&self.render_status(e));
        }
        s.push(']');
        s
    }

    /// Health snapshot as JSON: liveness (the daemon answered at all) plus
    /// readiness facts — uptime, queue headroom, journal size, and worker
    /// liveness — so an orchestrator can distinguish "busy" from "wedged".
    pub fn healthz_json(&self) -> String {
        let queued = self.queue.len();
        let headroom = self.cfg.queue_cap.saturating_sub(queued);
        let (workers_total, workers_alive) = {
            let threads = lock(&self.threads);
            let alive = threads.iter().filter(|t| !t.is_finished()).count();
            (threads.len(), alive)
        };
        format!(
            "{{\"status\":\"{}\",\"accepting\":{},\"uptime_secs\":{},\"queued\":{queued},\
             \"running\":{},\"jobs\":{},\"recovered\":{},\"queue_cap\":{},\
             \"queue_headroom\":{headroom},\"journal_bytes\":{},\
             \"workers_alive\":{workers_alive},\"workers_total\":{workers_total}}}",
            if self.is_accepting() {
                "ok"
            } else {
                "draining"
            },
            self.is_accepting(),
            clock::since_epoch_us() / 1_000_000,
            self.running_jobs.load(Ordering::Relaxed),
            lock(&self.jobs).len(),
            self.recovered,
            self.cfg.queue_cap,
            self.journal_bytes(),
        )
    }

    /// The service-level instrument handles (exposed for the HTTP listener
    /// and tests).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The trace file path for a job id (the `/campaigns/:id/trace` route
    /// serves these bytes).
    pub fn trace_path_for(&self, id: &str) -> PathBuf {
        jobtrace::trace_path(&self.cfg.state_dir, id)
    }

    /// Journal size on disk, bytes (0 when unreadable).
    fn journal_bytes(&self) -> u64 {
        std::fs::metadata(self.cfg.state_dir.join("jobs.journal")).map_or(0, |m| m.len())
    }

    /// Publishes the sampled gauges (queue depth/headroom, per-state job
    /// counts, journal size, uptime). Called on every `/metrics` scrape so
    /// gauge freshness matches scrape cadence without a sampler thread.
    pub fn refresh_gauges(&self) {
        let queued = self.queue.len();
        self.metrics.queue_depth.set(queued as i64);
        self.metrics
            .queue_headroom
            .set(self.cfg.queue_cap.saturating_sub(queued) as i64);
        self.metrics.journal_bytes.set(self.journal_bytes() as i64);
        self.metrics
            .uptime_seconds
            .set((clock::since_epoch_us() / 1_000_000) as i64);
        let mut counts = [0i64; 7];
        for entry in lock(&self.jobs).values() {
            let state = lock(&entry.meta).state;
            if let Some(c) = counts.get_mut(crate::metrics::state_index(state)) {
                *c += 1;
            }
        }
        for (state, count) in crate::metrics::STATES.iter().zip(counts) {
            self.metrics.set_state_count(*state, count);
        }
    }

    /// Subscribes to a job's progress snapshots. Returns the receiver, the
    /// latest snapshot (if any), and whether the job is already terminal.
    pub fn subscribe(
        &self,
        id: &str,
    ) -> Option<(Receiver<ProgressSnapshot>, Option<ProgressSnapshot>, bool)> {
        let entry = lock(&self.jobs).get(id).map(Arc::clone)?;
        let rx = entry.share.subscribe();
        let latest = entry.share.latest();
        let terminal = lock(&entry.meta).state.is_terminal();
        Some((rx, latest, terminal))
    }

    /// Whether the job is terminal right now (event streams use this to
    /// stop).
    pub fn is_terminal(&self, id: &str) -> Option<bool> {
        let entry = lock(&self.jobs).get(id).map(Arc::clone)?;
        let terminal = lock(&entry.meta).state.is_terminal();
        Some(terminal)
    }

    /// Graceful shutdown: stop accepting, cancel running jobs (they drain
    /// to their checkpoints), keep queued jobs journaled for the next boot,
    /// and join every engine thread.
    pub fn shutdown_and_drain(&self) {
        self.accepting.store(false, Ordering::Release);
        self.shutdown.cancel();
        // Cooperatively cancel in-flight campaigns; their checkpoints make
        // the work resumable, so draining loses nothing.
        for entry in lock(&self.jobs).values() {
            if lock(&entry.meta).state == JobState::Running {
                lock(&entry.cancel).cancel();
            }
        }
        self.queue.close();
        let threads = std::mem::take(&mut *lock(&self.threads));
        for t in threads {
            let _ = t.join();
        }
        event!("serve.shutdown", drained = true);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.is_cancelled()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn journal_append(&self, ev: &JournalEvent) -> Result<(), String> {
        lock(&self.journal).append(ev)
    }

    fn worker_loop(&self) {
        while let Some(q) = self.queue.pop_blocking() {
            if self.shutdown.is_cancelled() {
                // Drain mode: leave the job journaled-as-submitted; the next
                // boot re-enqueues it. Keep pulling so close() terminates.
                continue;
            }
            self.run_job(&q.id);
        }
    }

    fn deadline_loop(&self) {
        while !self.shutdown.is_cancelled() {
            let now = clock::since_epoch_us();
            let running: Vec<Arc<JobEntry>> = lock(&self.jobs)
                .values()
                .filter(|e| lock(&e.meta).state == JobState::Running)
                .map(Arc::clone)
                .collect();
            for entry in running {
                let at = entry.deadline_at_us.load(Ordering::Acquire);
                if at != 0 && now >= at && !entry.deadline_fired.swap(true, Ordering::AcqRel) {
                    event!("serve.deadline", id = &entry.id);
                    lock(&entry.cancel).cancel();
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    fn run_job(&self, id: &str) {
        let _prof = prof::scope("serve.run_job");
        let Some(entry) = lock(&self.jobs).get(id).map(Arc::clone) else {
            return; // cancelled-and-removed between pop and here
        };
        let queued_at_us;
        {
            let mut meta = lock(&entry.meta);
            if meta.state != JobState::Queued {
                return; // cancelled while queued (raced the dequeue)
            }
            meta.state = JobState::Running;
            queued_at_us = meta.queued_at_us;
        }
        if let Some(t) = &entry.tracer {
            let waited = clock::since_epoch_us().saturating_sub(queued_at_us);
            t.span("queue_wait", if queued_at_us == 0 { 0 } else { waited }, 0);
        }
        if self
            .journal_append(&JournalEvent::Start { id: id.to_owned() })
            .is_err()
        {
            // A dead journal voids the crash-recovery story; fail the job
            // rather than run it unlogged.
            let mut meta = lock(&entry.meta);
            meta.state = JobState::Failed;
            meta.error = Some("journal write failed".to_owned());
            return;
        }
        self.running_jobs.fetch_add(1, Ordering::Relaxed);
        if let Some(ms) = entry.spec.deadline_ms {
            // Saturating: validation bounds `deadline_ms`, but a wrapped
            // deadline would mean instant expiry (or a panicking worker in
            // debug builds), so the arithmetic stays overflow-proof anyway.
            let at = clock::since_epoch_us().saturating_add(ms.saturating_mul(1000));
            entry.deadline_at_us.store(at, Ordering::Release);
        }
        let cancel = lock(&entry.cancel).clone();
        event!("serve.start", id = id, network = &entry.spec.network);

        let backoff = RetryBackoff::default();
        let retries = entry.spec.retries;
        let mut outcome: Result<String, String> = Err("never attempted".to_owned());
        for attempt in 0..=retries {
            lock(&entry.meta).attempts = attempt + 1;
            let run_sw = clock::Stopwatch::start();
            outcome = self.run_attempt(&entry, &cancel);
            if let Some(t) = &entry.tracer {
                t.span(
                    "run",
                    run_sw.elapsed_us().unwrap_or(0),
                    (attempt + 1) as u64,
                );
            }
            match &outcome {
                Ok(_) => break,
                Err(_) if cancel.is_cancelled() => break,
                Err(e) => {
                    event!("serve.retry", id = id, attempt = attempt + 1, error = e);
                    self.metrics.retries.inc();
                    if attempt < retries {
                        let wait = backoff.delay(entry.spec.campaign_seed(), 0, attempt + 1);
                        let backoff_sw = clock::Stopwatch::start();
                        let kept_going = sleep_unless_cancelled(wait, &cancel);
                        if let Some(t) = &entry.tracer {
                            t.span(
                                "backoff",
                                backoff_sw.elapsed_us().unwrap_or(0),
                                (attempt + 1) as u64,
                            );
                        }
                        if !kept_going {
                            break;
                        }
                    }
                }
            }
        }
        entry.deadline_at_us.store(0, Ordering::Release);
        self.running_jobs.fetch_sub(1, Ordering::Relaxed);

        let terminal_state = match outcome {
            Ok(summary_json) => {
                let _ = self.journal_append(&JournalEvent::Done {
                    id: id.to_owned(),
                    summary_json: summary_json.clone(),
                });
                let mut meta = lock(&entry.meta);
                meta.state = JobState::Done;
                meta.summary_json = Some(summary_json);
                meta.error = None;
                event!("serve.done", id = id);
                Some(JobState::Done)
            }
            Err(e) if entry.deadline_fired.load(Ordering::Acquire) => {
                let _ = self.journal_append(&JournalEvent::Expire { id: id.to_owned() });
                let mut meta = lock(&entry.meta);
                meta.state = JobState::Expired;
                meta.error = Some(format!("deadline expired: {e}"));
                event!("serve.expired", id = id);
                Some(JobState::Expired)
            }
            Err(_) if self.shutdown.is_cancelled() => {
                // Drained by graceful shutdown: the checkpoint holds the
                // finished cells and the journal still says "submitted", so
                // the next boot resumes the job. Not a terminal state.
                let mut meta = lock(&entry.meta);
                meta.state = JobState::Queued;
                meta.queued_at_us = clock::since_epoch_us();
                event!("serve.drain", id = id);
                None
            }
            Err(e) if cancel.is_cancelled() => {
                let _ = self.journal_append(&JournalEvent::Cancel { id: id.to_owned() });
                let mut meta = lock(&entry.meta);
                meta.state = JobState::Cancelled;
                meta.error = Some(format!("cancelled: {e}"));
                event!("serve.cancelled", id = id);
                Some(JobState::Cancelled)
            }
            Err(e) => {
                let _ = self.journal_append(&JournalEvent::Fail {
                    id: id.to_owned(),
                    reason: e.clone(),
                });
                let mut meta = lock(&entry.meta);
                meta.state = JobState::Failed;
                meta.error = Some(e.clone());
                event!("serve.failed", id = id, error = &e);
                Some(JobState::Failed)
            }
        };
        if let (Some(state), Some(t)) = (terminal_state, &entry.tracer) {
            t.record_event("job.terminal", &[("state", Value::Str(state.as_str()))]);
            t.flush();
        }
    }

    fn run_attempt(&self, entry: &JobEntry, cancel: &CancelToken) -> Result<String, String> {
        let _prof = prof::scope("serve.run_attempt");
        let (engine, trace, metric) = entry.spec.deploy()?;
        let mut spec = entry.spec.campaign_spec(self.cfg.campaign_threads);
        // Resume semantics on every attempt: cells already checkpointed (by
        // a previous attempt, lifetime, or daemon process) are restored, so
        // retries and restarts never redo or alter finished work.
        spec.resilience.checkpoint = Some(CheckpointSpec::resuming(self.checkpoint_path(entry)));
        spec.resilience.cancel = Some(cancel.clone());
        // The job deadline doubles as the per-injection watchdog bound: any
        // single injection outliving the whole job budget is already lost.
        spec.resilience.injection_deadline = entry.spec.deadline_ms.map(Duration::from_millis);
        spec.resilience.chaos = self.cfg.chaos.clone();
        spec.progress = Some(ProgressSpec {
            interval: Duration::from_millis(100),
            render: false,
            share: Some(entry.share.clone()),
            sink: entry
                .tracer
                .clone()
                .map(|t| SinkHandle(t as Arc<dyn TraceSink>)),
        });
        let accel = fidelity_accel::presets::nvdla_like();
        let analysis = analyze(
            &engine,
            &trace,
            &accel,
            metric.as_ref(),
            PAPER_RAW_FIT_PER_MB,
            &spec,
        )
        .map_err(|e| e.to_string())?;
        Ok(summary_json(&analysis))
    }

    /// Per-job checkpoint path: keyed by the job id (the spec fingerprint),
    /// so recovery after a crash finds it from the journal alone.
    pub fn checkpoint_path(&self, entry: &JobEntry) -> PathBuf {
        self.cfg.state_dir.join(format!("job-{}.ckpt", entry.id))
    }

    /// Checkpoint path for a job id (test and tooling hook).
    pub fn checkpoint_path_for(&self, id: &str) -> PathBuf {
        self.cfg.state_dir.join(format!("job-{id}.ckpt"))
    }

    fn render_status(&self, entry: &JobEntry) -> String {
        let meta = lock(&entry.meta);
        let mut s = String::with_capacity(256);
        s.push_str("{\"id\":");
        escape_into(&mut s, &entry.id);
        s.push_str(",\"state\":\"");
        s.push_str(meta.state.as_str());
        s.push('"');
        let _ = std::fmt::Write::write_fmt(
            &mut s,
            format_args!(
                ",\"priority\":{},\"attempts\":{},\"retries\":{}",
                meta.priority, meta.attempts, entry.spec.retries
            ),
        );
        s.push_str(",\"network\":");
        escape_into(&mut s, &entry.spec.network);
        if let Some(err) = &meta.error {
            s.push_str(",\"error\":");
            escape_into(&mut s, err);
        }
        if let Some(summary) = &meta.summary_json {
            s.push_str(",\"summary\":");
            s.push_str(summary);
        }
        if let Some(snap) = entry.share.latest() {
            s.push_str(",\"progress\":");
            s.push_str(&snap.to_json());
        }
        s.push('}');
        s
    }
}

/// Sleeps `total` in short slices, returning `false` early when cancelled.
fn sleep_unless_cancelled(total: Duration, cancel: &CancelToken) -> bool {
    let slice = Duration::from_millis(5);
    let mut remaining = total;
    while !remaining.is_zero() {
        if cancel.is_cancelled() {
            return false;
        }
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining -= step;
    }
    !cancel.is_cancelled()
}

/// Renders the result summary for a finished job: the FIT breakdown plus
/// aggregate masking statistics with the canonical Wilson 95% interval.
fn summary_json(analysis: &ResilienceAnalysis) -> String {
    let campaign = &analysis.campaign;
    let (masked, output_error, anomaly) = campaign.cells.iter().fold((0, 0, 0), |acc, c| {
        (acc.0 + c.masked, acc.1 + c.output_error, acc.2 + c.anomaly)
    });
    let injections = campaign.total_samples();
    let (lo, hi) = fidelity_obs::stats::wilson95(masked, injections);
    let p = if injections == 0 {
        0.0
    } else {
        masked as f64 / injections as f64
    };
    let mut s = String::with_capacity(256);
    s.push('{');
    let mut num = |key: &str, v: f64, first: bool| {
        if !first {
            s.push(',');
        }
        s.push('"');
        s.push_str(key);
        s.push_str("\":");
        fidelity_obs::json::number_into(&mut s, v);
    };
    num("fit_total", analysis.fit.total, true);
    num("fit_datapath", analysis.fit.datapath, false);
    num("fit_local", analysis.fit.local, false);
    num("fit_global", analysis.fit.global, false);
    num("cells", campaign.cells.len() as f64, false);
    num("cell_failures", campaign.failures.len() as f64, false);
    num("injections", injections as f64, false);
    num("masked", masked as f64, false);
    num("output_error", output_error as f64, false);
    num("anomaly", anomaly as f64, false);
    num("masked_probability", p, false);
    num("masked_lo", lo, false);
    num("masked_hi", hi, false);
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fidelity-poison-{tag}-{}", std::process::id()))
    }

    /// A worker panicking while it holds supervisor locks must not wedge
    /// admission: every internal `lock()` recovers from poison, so the
    /// supervisor keeps accepting jobs after the panic.
    #[test]
    fn submit_survives_poisoned_locks() {
        let dir = scratch_dir("submit");
        let _ = std::fs::remove_dir_all(&dir);
        let sup = Supervisor::start(ServeConfig {
            state_dir: dir.clone(),
            ..ServeConfig::default()
        })
        .expect("supervisor starts");

        // Panic a thread mid-hold on the two locks `submit` takes (in
        // submit's own order, jobs before journal). The guards are still
        // live when the panic unwinds, so std marks both mutexes poisoned.
        let s = Arc::clone(&sup);
        let worker = std::thread::spawn(move || {
            let _jobs = s.jobs.lock().unwrap();
            let _journal = s.journal.lock().unwrap();
            panic!("simulated worker crash while holding supervisor locks");
        });
        assert!(worker.join().is_err(), "the worker must actually panic");
        assert!(sup.jobs.is_poisoned(), "jobs mutex should be poisoned");
        assert!(
            sup.journal.is_poisoned(),
            "journal mutex should be poisoned"
        );

        assert!(sup.is_accepting(), "poison must not flip admission off");
        let spec = JobSpec {
            network: "lstm".to_owned(),
            samples: 1,
            threads: 1,
            ..JobSpec::default()
        };
        let (id, outcome) = sup.submit(spec).expect("submit succeeds after poison");
        assert!(matches!(outcome, SubmitOutcome::Accepted), "{outcome:?}");
        assert!(!id.is_empty());

        sup.shutdown_and_drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
