//! Bounded priority queue with explicit backpressure and overload shedding.
//!
//! The queue holds job ids waiting for a worker. It is deliberately small
//! and honest about overload:
//!
//! * **Backpressure** — a submission to a full queue is *rejected* with a
//!   retry hint, never silently buffered without bound.
//! * **Shedding** — when a higher-priority job arrives at a full queue, the
//!   lowest-priority queued entry is evicted to make room, and the eviction
//!   is reported to the caller (who journals it and marks the job shed) —
//!   degradation is graceful and visible, never silent.
//!
//! Ordering: higher priority first; FIFO (submission order) within a
//! priority.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One queued entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEntry {
    /// Job id.
    pub id: String,
    /// Priority; higher runs first.
    pub priority: i32,
    /// Submission sequence number (FIFO tiebreak).
    pub seq: u64,
}

/// What happened to a push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushOutcome {
    /// The entry was queued.
    Queued,
    /// The queue was full and the entry outranked the lowest-priority
    /// occupant, which was evicted to make room. The caller must report the
    /// eviction — shedding is never silent.
    Shed {
        /// The evicted entry.
        victim: QueueEntry,
    },
    /// The queue was full of equal-or-higher-priority work; the submission
    /// is rejected and the client should retry after roughly this long.
    Rejected {
        /// Retry hint.
        retry_after: Duration,
    },
}

#[derive(Debug, Default)]
struct Inner {
    entries: Vec<QueueEntry>,
    closed: bool,
}

/// The queue. All methods are safe to call from any thread.
#[derive(Debug)]
pub struct JobQueue {
    cap: usize,
    inner: Mutex<Inner>,
    ready: Condvar,
}

/// Retry hint for rejected submissions: long enough for one small campaign
/// to drain, short enough that clients poll usefully.
pub const RETRY_AFTER: Duration = Duration::from_secs(2);

impl JobQueue {
    /// A queue admitting at most `cap` waiting jobs (min 1).
    pub fn new(cap: usize) -> Self {
        JobQueue {
            cap: cap.max(1),
            inner: Mutex::new(Inner::default()),
            ready: Condvar::new(),
        }
    }

    /// Whether a push at `priority` would be admitted right now — either
    /// queued into free space or shedding a strictly weaker occupant.
    /// Concurrent pops, removals, and closes only free space, so as long as
    /// pushers are serialized (the supervisor holds its registry lock across
    /// check and push), a `true` answer cannot turn into a rejection.
    pub fn would_accept(&self, priority: i32) -> bool {
        let inner = lock_inner(&self.inner);
        inner.entries.len() < self.cap
            || inner
                .entries
                .iter()
                .map(|e| e.priority)
                .min()
                .is_some_and(|weakest| priority > weakest)
    }

    /// Enqueues a journal-recovered job unconditionally. Recovery must never
    /// drop an accepted job, so boot-time requeue bypasses the capacity
    /// check; the queue may sit above `cap` until workers drain it, during
    /// which new submissions still see full-queue backpressure.
    pub fn push_recovered(&self, entry: QueueEntry) {
        lock_inner(&self.inner).entries.push(entry);
        self.ready.notify_one();
    }

    /// Submits an entry; see [`PushOutcome`] for the full-queue behavior.
    pub fn push(&self, entry: QueueEntry) -> PushOutcome {
        let mut inner = lock_inner(&self.inner);
        if inner.entries.len() < self.cap {
            inner.entries.push(entry);
            drop(inner);
            self.ready.notify_one();
            return PushOutcome::Queued;
        }
        // Full: find the weakest occupant (lowest priority; youngest within
        // it, so surviving work keeps FIFO fairness).
        let weakest = inner
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
            .map(|(i, e)| (i, e.priority));
        match weakest {
            Some((i, weakest_priority)) if entry.priority > weakest_priority => {
                let victim = inner.entries.swap_remove(i);
                inner.entries.push(entry);
                drop(inner);
                self.ready.notify_one();
                PushOutcome::Shed { victim }
            }
            _ => PushOutcome::Rejected {
                retry_after: RETRY_AFTER,
            },
        }
    }

    /// Takes the best entry, blocking until one arrives or the queue closes.
    /// `None` means the queue is closed and drained of claimable work.
    pub fn pop_blocking(&self) -> Option<QueueEntry> {
        let mut inner = lock_inner(&self.inner);
        loop {
            if let Some(best) = best_index(&inner.entries) {
                return Some(inner.entries.swap_remove(best));
            }
            if inner.closed {
                return None;
            }
            // A timeout bounds the wait so a close() racing the wait never
            // strands a worker.
            let (guard, _) = self
                .ready
                .wait_timeout(inner, Duration::from_millis(100))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Removes a specific id from the queue (cancellation of a queued job).
    pub fn remove(&self, id: &str) -> bool {
        let mut inner = lock_inner(&self.inner);
        match inner.entries.iter().position(|e| e.id == id) {
            Some(i) => {
                inner.entries.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Queued entry count.
    pub fn len(&self) -> usize {
        lock_inner(&self.inner).entries.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: waiting workers drain what is left, then see
    /// `None`.
    pub fn close(&self) {
        lock_inner(&self.inner).closed = true;
        self.ready.notify_all();
    }
}

fn lock_inner(m: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Index of the best entry: highest priority, oldest within it.
fn best_index(entries: &[QueueEntry]) -> Option<usize> {
    entries
        .iter()
        .enumerate()
        .max_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, priority: i32, seq: u64) -> QueueEntry {
        QueueEntry {
            id: id.to_owned(),
            priority,
            seq,
        }
    }

    #[test]
    fn orders_by_priority_then_fifo() {
        let q = JobQueue::new(8);
        assert_eq!(q.push(entry("a", 0, 1)), PushOutcome::Queued);
        assert_eq!(q.push(entry("b", 5, 2)), PushOutcome::Queued);
        assert_eq!(q.push(entry("c", 5, 3)), PushOutcome::Queued);
        q.close();
        let order: Vec<String> = std::iter::from_fn(|| q.pop_blocking().map(|e| e.id)).collect();
        assert_eq!(order, ["b", "c", "a"]);
    }

    #[test]
    fn full_queue_rejects_equal_priority_with_retry_hint() {
        let q = JobQueue::new(2);
        q.push(entry("a", 1, 1));
        q.push(entry("b", 1, 2));
        match q.push(entry("c", 1, 3)) {
            PushOutcome::Rejected { retry_after } => assert!(retry_after.as_secs() >= 1),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn full_queue_sheds_lowest_priority_for_higher_work() {
        let q = JobQueue::new(2);
        q.push(entry("low-old", 0, 1));
        q.push(entry("low-new", 0, 2));
        match q.push(entry("vip", 3, 3)) {
            PushOutcome::Shed { victim } => assert_eq!(victim.id, "low-new"),
            other => panic!("expected shed, got {other:?}"),
        }
        q.close();
        let order: Vec<String> = std::iter::from_fn(|| q.pop_blocking().map(|e| e.id)).collect();
        assert_eq!(order, ["vip", "low-old"]);
    }

    #[test]
    fn would_accept_predicts_push() {
        let q = JobQueue::new(2);
        assert!(q.would_accept(0));
        q.push(entry("a", 1, 1));
        q.push(entry("b", 1, 2));
        assert!(!q.would_accept(1)); // full of equal-priority work
        assert!(q.would_accept(2)); // outranks the weakest occupant
        match (q.would_accept(2), q.push(entry("vip", 2, 3))) {
            (true, PushOutcome::Shed { .. }) => {}
            other => panic!("prediction and push disagree: {other:?}"),
        }
    }

    #[test]
    fn recovered_pushes_bypass_the_cap() {
        let q = JobQueue::new(1);
        q.push_recovered(entry("a", 0, 1));
        q.push_recovered(entry("b", 0, 2));
        assert_eq!(q.len(), 2);
        // Above cap, new submissions still see honest backpressure.
        assert!(!q.would_accept(0));
        assert!(matches!(
            q.push(entry("c", 0, 3)),
            PushOutcome::Rejected { .. }
        ));
        q.close();
        let order: Vec<String> = std::iter::from_fn(|| q.pop_blocking().map(|e| e.id)).collect();
        assert_eq!(order, ["a", "b"]);
    }

    #[test]
    fn remove_cancels_a_queued_entry() {
        let q = JobQueue::new(4);
        q.push(entry("a", 0, 1));
        assert!(q.remove("a"));
        assert!(!q.remove("a"));
        assert!(q.is_empty());
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = std::sync::Arc::new(JobQueue::new(2));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop_blocking());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }
}
