//! Per-job end-to-end tracing: deterministic trace ids, append-mode JSONL
//! trace files with rotation, and the `job.*` event vocabulary that
//! `fidelity report --trace` renders as a span tree.
//!
//! The trace id is derived from the job fingerprint ([`trace_id`]), so
//! every daemon generation that touches a job — including one recovering
//! the job after `kill -9` — stamps the *same* id into the same per-job
//! file. The file is opened in append mode; sequence numbers are
//! per-tracer (they restart at 0 each generation, which the report's
//! gap detector is built to tolerate), and `pid` identifies the
//! generation that wrote each record.
//!
//! Rotation: when the file passes [`ROTATE_BYTES`] it is renamed to
//! `<path>.1` (replacing any previous rotation) and a fresh file starts,
//! bounding any one job's trace footprint to roughly twice the cap.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};

use fidelity_obs::trace::{Field, JsonlSink, TraceEvent, TraceSink, Value};
use fidelity_obs::{clock, metrics};

use crate::journal::fnv64;

/// Rotation threshold for one job trace file.
pub const ROTATE_BYTES: u64 = 4 * 1024 * 1024;

/// The deterministic trace id for a job: FNV-1a over a domain-separated
/// copy of the job id (the spec fingerprint), hex. Every process that
/// handles the job derives the same id with no coordination.
pub fn trace_id(job_id: &str) -> String {
    let mut keyed = Vec::with_capacity(job_id.len() + 16);
    keyed.extend_from_slice(b"fidelity-trace/");
    keyed.extend_from_slice(job_id.as_bytes());
    format!("{:016x}", fnv64(&keyed))
}

/// The trace file path for a job id inside a state directory.
pub fn trace_path(state_dir: &Path, job_id: &str) -> PathBuf {
    state_dir.join(format!("job-{job_id}.trace.jsonl"))
}

/// A per-job trace writer. Thread-safe; every record is stamped with the
/// job's trace id, job id, and the writing process id.
pub struct JobTracer {
    trace_id: String,
    job_id: String,
    path: PathBuf,
    sink: RwLock<JsonlSink>,
    seq: AtomicU64,
    pid: u64,
}

impl std::fmt::Debug for JobTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JobTracer({}, trace={})", self.job_id, self.trace_id)
    }
}

impl JobTracer {
    /// Opens (appending) the job's trace file under `state_dir`.
    ///
    /// # Errors
    ///
    /// Returns a description when the file cannot be opened.
    pub fn open(state_dir: &Path, job_id: &str) -> Result<JobTracer, String> {
        let path = trace_path(state_dir, job_id);
        let sink = JsonlSink::append(&path)?;
        Ok(JobTracer {
            trace_id: trace_id(job_id),
            job_id: job_id.to_owned(),
            path,
            sink: RwLock::new(sink),
            seq: AtomicU64::new(0),
            pid: u64::from(std::process::id()),
        })
    }

    /// The job's deterministic trace id.
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// The trace file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events this tracer's sink dropped on write errors.
    pub fn dropped(&self) -> u64 {
        self.sink
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .dropped()
    }

    /// Records one event, augmented with `trace`, `job`, and `pid` fields.
    /// Never panics and never blocks beyond one buffered write.
    pub fn record_event(&self, name: &str, fields: &[Field<'_>]) {
        let mut augmented: Vec<Field<'_>> = Vec::with_capacity(fields.len() + 3);
        augmented.extend_from_slice(fields);
        augmented.push(("trace", Value::Str(&self.trace_id)));
        augmented.push(("job", Value::Str(&self.job_id)));
        augmented.push(("pid", Value::U64(self.pid)));
        let event = TraceEvent {
            name,
            t_us: clock::since_epoch_us(),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            fields: &augmented,
        };
        let over_cap = {
            let sink = self.sink.read().unwrap_or_else(PoisonError::into_inner);
            sink.record(&event);
            // Flush per record: job traces are low-rate (lifecycle events
            // and per-cell records, not per-injection), and the file must
            // survive `kill -9` — a buffered generation-1 record that dies
            // with the process would break trace continuity across crashes.
            let _ = sink.flush();
            sink.bytes_written() >= ROTATE_BYTES
        };
        if over_cap {
            self.rotate();
        }
    }

    /// Emits a `job.span` phase record (`queue_wait` / `run` / `backoff`).
    pub fn span(&self, phase: &str, dur_us: u64, attempt: u64) {
        self.record_event(
            "job.span",
            &[
                ("phase", Value::Str(phase)),
                ("dur_us", Value::U64(dur_us)),
                ("attempt", Value::U64(attempt)),
            ],
        );
    }

    /// Flushes the underlying file and, when events were dropped, appends a
    /// `trace.lossy` marker (best effort) so post-hoc readers see the loss
    /// even without the live metric.
    pub fn flush(&self) {
        let dropped = {
            let sink = self.sink.read().unwrap_or_else(PoisonError::into_inner);
            let _ = sink.flush();
            sink.dropped()
        };
        if dropped > 0 {
            self.record_event("trace.lossy", &[("dropped", Value::U64(dropped))]);
            let sink = self.sink.read().unwrap_or_else(PoisonError::into_inner);
            let _ = sink.flush();
        }
    }

    /// Renames the current file to `<path>.1` and starts a fresh one.
    /// Degrades gracefully: if the new file cannot be created, writing
    /// continues into the renamed (or original) sink.
    fn rotate(&self) {
        let mut sink = self.sink.write().unwrap_or_else(PoisonError::into_inner);
        // Re-check under the exclusive guard: a racing recorder may have
        // rotated already.
        if sink.bytes_written() < ROTATE_BYTES {
            return;
        }
        let _ = sink.flush();
        let rotated = self.path.with_extension("jsonl.1");
        if std::fs::rename(&self.path, &rotated).is_ok() {
            if let Ok(fresh) = JsonlSink::create(&self.path) {
                *sink = fresh;
                metrics::counter("serve.trace.rotations").inc();
            }
        }
    }
}

impl TraceSink for JobTracer {
    /// Adapts the tracer to the generic sink interface (the campaign
    /// runner's per-campaign outlet): re-stamps the event with this
    /// tracer's sequence and identity fields.
    fn record(&self, event: &TraceEvent<'_>) {
        self.record_event(event.name, event.fields);
    }

    fn flush(&self) -> Result<(), String> {
        JobTracer::flush(self);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_obs::json::{self, Json};

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fidelity-jobtrace-{tag}-{}", std::process::id()))
    }

    #[test]
    fn trace_id_is_deterministic_and_distinct() {
        assert_eq!(trace_id("abc"), trace_id("abc"));
        assert_ne!(trace_id("abc"), trace_id("abd"));
        assert_ne!(trace_id("abc"), "abc");
        assert_eq!(trace_id("abc").len(), 16);
    }

    #[test]
    fn records_carry_identity_and_survive_reopen() {
        let dir = scratch("reopen");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let t1 = JobTracer::open(&dir, "deadbeef00000001").expect("open tracer");
        t1.record_event("job.admit", &[("state", Value::Str("accepted"))]);
        t1.span("queue_wait", 10, 0);
        t1.flush();
        let id = t1.trace_id().to_owned();
        drop(t1);

        // Second generation: same file, same trace id, fresh seq.
        let t2 = JobTracer::open(&dir, "deadbeef00000001").expect("reopen tracer");
        assert_eq!(t2.trace_id(), id);
        t2.span("run", 500, 1);
        t2.flush();

        let text = std::fs::read_to_string(trace_path(&dir, "deadbeef00000001")).unwrap();
        let lines: Vec<Json> = text.lines().map(|l| json::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 3);
        for v in &lines {
            assert_eq!(v.get("trace").and_then(Json::as_str), Some(id.as_str()));
            assert_eq!(
                v.get("job").and_then(Json::as_str),
                Some("deadbeef00000001")
            );
            assert!(v.get("pid").and_then(Json::as_u64).is_some());
        }
        // The whole file summarizes into one job keyed by the trace id.
        let summary = fidelity_obs::report::summarize(text.as_bytes()).unwrap();
        let job = &summary.jobs[&id];
        assert_eq!(job.queue_wait_us, 10);
        assert_eq!(job.run_us, 500);
        assert!(!summary.is_lossy());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_caps_file_size() {
        let dir = scratch("rotate");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = JobTracer::open(&dir, "cafe000000000002").expect("open tracer");
        // ~200 bytes per record; push well past the cap.
        let filler = "x".repeat(160);
        let per_record = 200u64;
        let records = ROTATE_BYTES / per_record + 64;
        for i in 0..records {
            t.record_event(
                "spam",
                &[("i", Value::U64(i)), ("pad", Value::Str(&filler))],
            );
        }
        t.flush();
        let live = std::fs::metadata(t.path()).expect("live file exists").len();
        assert!(
            live < ROTATE_BYTES,
            "live file must restart after rotation (len {live})"
        );
        let rotated = t.path().with_extension("jsonl.1");
        assert!(rotated.exists(), "rotated file kept");
        assert!(std::fs::metadata(&rotated).unwrap().len() >= ROTATE_BYTES);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
