//! Write-ahead job journal: the daemon's crash-recovery record.
//!
//! Every job transition is appended to `jobs.journal` *before* it takes
//! effect, so a SIGTERM or hard kill at any instant loses at most the
//! transition being written. On restart the journal is replayed: accepted
//! jobs that never reached a terminal state are re-enqueued (resuming from
//! their checkpoints), finished jobs keep their recorded summaries, and the
//! single-flight registry is rebuilt — zero lost accepted jobs, zero
//! duplicated results.
//!
//! Format (line-oriented, like the campaign checkpoint):
//!
//! ```text
//! fidelity-journal v1
//! <fnv64-hex> submit <id> <canonical job-spec JSON>
//! <fnv64-hex> start <id>
//! <fnv64-hex> done <id> <summary JSON>
//! <fnv64-hex> fail <id> <escaped reason>
//! <fnv64-hex> cancel <id>
//! <fnv64-hex> expire <id>
//! <fnv64-hex> shed <id>
//! ```
//!
//! Each line carries an FNV-1a checksum of its payload. A final line that is
//! truncated, checksum-broken, or missing its newline is a *torn tail* from
//! a killed writer and is dropped; the same damage anywhere earlier means
//! real corruption and replay refuses with the offending line number rather
//! than recovering wrong state.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Journal format magic + version line.
pub const HEADER: &str = "fidelity-journal v1";

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A job was accepted; carries the canonical spec JSON.
    Submit {
        /// Job id (spec fingerprint, hex).
        id: String,
        /// Canonical [`crate::JobSpec`] JSON.
        spec_json: String,
    },
    /// A worker picked the job up.
    Start {
        /// Job id.
        id: String,
    },
    /// The job finished; carries the result-summary JSON.
    Done {
        /// Job id.
        id: String,
        /// Result summary JSON (restored verbatim on recovery).
        summary_json: String,
    },
    /// The job exhausted its retries.
    Fail {
        /// Job id.
        id: String,
        /// Why (JSON-escaped on disk).
        reason: String,
    },
    /// The job was cancelled via the API or a shutdown drain.
    Cancel {
        /// Job id.
        id: String,
    },
    /// The job's deadline expired.
    Expire {
        /// Job id.
        id: String,
    },
    /// The job was shed under overload.
    Shed {
        /// Job id.
        id: String,
    },
}

impl JournalEvent {
    /// The payload text after the checksum column.
    fn payload(&self) -> String {
        match self {
            JournalEvent::Submit { id, spec_json } => format!("submit {id} {spec_json}"),
            JournalEvent::Start { id } => format!("start {id}"),
            JournalEvent::Done { id, summary_json } => format!("done {id} {summary_json}"),
            JournalEvent::Fail { id, reason } => {
                let mut s = format!("fail {id} ");
                fidelity_obs::json::escape_into(&mut s, reason);
                s
            }
            JournalEvent::Cancel { id } => format!("cancel {id}"),
            JournalEvent::Expire { id } => format!("expire {id}"),
            JournalEvent::Shed { id } => format!("shed {id}"),
        }
    }

    /// The job id the event concerns.
    pub fn id(&self) -> &str {
        match self {
            JournalEvent::Submit { id, .. }
            | JournalEvent::Start { id }
            | JournalEvent::Done { id, .. }
            | JournalEvent::Fail { id, .. }
            | JournalEvent::Cancel { id }
            | JournalEvent::Expire { id }
            | JournalEvent::Shed { id } => id,
        }
    }

    fn parse_payload(payload: &str) -> Option<JournalEvent> {
        let (kind, rest) = payload.split_once(' ')?;
        let ev = match kind {
            "submit" => {
                let (id, spec_json) = rest.split_once(' ')?;
                JournalEvent::Submit {
                    id: id.to_owned(),
                    spec_json: spec_json.to_owned(),
                }
            }
            "start" => JournalEvent::Start {
                id: word_only(rest)?,
            },
            "done" => {
                let (id, summary_json) = rest.split_once(' ')?;
                JournalEvent::Done {
                    id: id.to_owned(),
                    summary_json: summary_json.to_owned(),
                }
            }
            "fail" => {
                let (id, reason_json) = rest.split_once(' ')?;
                let reason = fidelity_obs::json::parse(reason_json)
                    .ok()?
                    .as_str()?
                    .to_owned();
                JournalEvent::Fail {
                    id: id.to_owned(),
                    reason,
                }
            }
            "cancel" => JournalEvent::Cancel {
                id: word_only(rest)?,
            },
            "expire" => JournalEvent::Expire {
                id: word_only(rest)?,
            },
            "shed" => JournalEvent::Shed {
                id: word_only(rest)?,
            },
            _ => return None,
        };
        Some(ev)
    }
}

/// `rest` as a single bare word (trailing fields reject the line).
fn word_only(rest: &str) -> Option<String> {
    if rest.is_empty() || rest.contains(' ') {
        None
    } else {
        Some(rest.to_owned())
    }
}

/// FNV-1a over a line payload (the same hash family the checkpoint
/// fingerprint uses; collisions against random corruption are what matter,
/// not adversaries). Also derives trace ids in [`crate::jobtrace`].
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Append-only journal writer. Every append flushes, so an accepted job's
/// `submit` record is on disk before the client sees 202.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating), writing the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors as text.
    pub fn create(path: &Path) -> Result<Journal, String> {
        let file = File::create(path).map_err(|e| io_err(path, "create", &e))?;
        let mut writer = BufWriter::new(file);
        writeln!(writer, "{HEADER}").map_err(|e| io_err(path, "header write", &e))?;
        writer.flush().map_err(|e| io_err(path, "flush", &e))?;
        Ok(Journal {
            writer,
            path: path.to_owned(),
        })
    }

    /// Opens `path` for appending (the recovery path: replay first, then
    /// reopen to continue the log).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors as text.
    pub fn append_to(path: &Path) -> Result<Journal, String> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, "open", &e))?;
        Ok(Journal {
            writer: BufWriter::new(file),
            path: path.to_owned(),
        })
    }

    /// Durably installs this journal at `dest`: flushes and syncs the file,
    /// then atomically renames it into place. The boot-time compaction path
    /// uses this so a crash mid-rewrite can never leave a half-written
    /// journal — until the rename lands, the old file at `dest` is
    /// untouched. Appends continue on the same handle afterwards (the
    /// rename moves the file, not its descriptor).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors as text; on error `dest` is left as it was.
    pub fn commit_rename(&mut self, dest: &Path) -> Result<(), String> {
        self.writer
            .flush()
            .map_err(|e| io_err(&self.path, "flush", &e))?;
        self.writer
            .get_ref()
            .sync_all()
            .map_err(|e| io_err(&self.path, "sync", &e))?;
        std::fs::rename(&self.path, dest).map_err(|e| io_err(&self.path, "rename", &e))?;
        self.path = dest.to_owned();
        Ok(())
    }

    /// Appends one event and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors as text.
    pub fn append(&mut self, ev: &JournalEvent) -> Result<(), String> {
        let payload = ev.payload();
        let mut line = String::with_capacity(payload.len() + 20);
        let _ = write!(line, "{:016x} {payload}", fnv64(payload.as_bytes()));
        writeln!(self.writer, "{line}").map_err(|e| io_err(&self.path, "append", &e))?;
        self.writer
            .flush()
            .map_err(|e| io_err(&self.path, "flush", &e))
    }
}

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> String {
    format!("journal {what} failed for {}: {e}", path.display())
}

/// Replays a journal from raw bytes.
///
/// A final fragment without its newline is the torn tail of a killed writer
/// and is dropped — the transition it recorded never took effect anywhere
/// else, so dropping it costs nothing. Every newline-terminated line must
/// verify; damage there is corruption, and replay refuses with the 1-based
/// line number rather than recovering wrong state. (The supervisor rewrites
/// the journal on boot, so a dropped tail is physically truncated before
/// any new record is appended.)
///
/// # Errors
///
/// Returns a message naming the offending line on corruption.
pub fn replay_bytes(bytes: &[u8]) -> Result<Vec<JournalEvent>, String> {
    // Split into newline-terminated lines; a final fragment without `\n`
    // is torn by construction (the writer always appends whole lines).
    let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    // The popped final piece is either the empty slice after a clean
    // trailing newline or a torn fragment; both are dropped unparsed.
    lines.pop();
    if lines.is_empty() {
        return Err("corrupt journal: empty file".to_owned());
    }
    if lines[0] != HEADER.as_bytes() {
        // A header cut short is still a bad journal: nothing was recovered
        // from it, so refusing is safe and honest.
        return Err("corrupt journal: bad header".to_owned());
    }
    let mut events = Vec::new();
    for (i, raw) in lines[1..].iter().enumerate() {
        let lineno = i + 2;
        match parse_line(raw) {
            Ok(ev) => events.push(ev),
            Err(why) => {
                return Err(format!("corrupt journal: {why} at line {lineno}"));
            }
        }
    }
    Ok(events)
}

fn parse_line(raw: &[u8]) -> Result<JournalEvent, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "invalid UTF-8".to_owned())?;
    let (crc_hex, payload) = text
        .split_once(' ')
        .ok_or_else(|| "missing checksum column".to_owned())?;
    let crc = u64::from_str_radix(crc_hex, 16).map_err(|_| "bad checksum field".to_owned())?;
    if crc != fnv64(payload.as_bytes()) {
        return Err("checksum mismatch".to_owned());
    }
    JournalEvent::parse_payload(payload).ok_or_else(|| "unparseable event".to_owned())
}

/// Replays the journal at `path`. A missing file is an empty journal (first
/// boot).
///
/// # Errors
///
/// Propagates I/O errors and corruption as text.
pub fn replay_file(path: &Path) -> Result<Vec<JournalEvent>, String> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| io_err(path, "read", &e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(path, "open", &e)),
    }
    replay_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::Submit {
                id: "ab12".to_owned(),
                spec_json: r#"{"network":"lstm","samples":4}"#.to_owned(),
            },
            JournalEvent::Start {
                id: "ab12".to_owned(),
            },
            JournalEvent::Fail {
                id: "ab12".to_owned(),
                reason: "worker panic: boom\nwith newline".to_owned(),
            },
            JournalEvent::Cancel {
                id: "ab12".to_owned(),
            },
            JournalEvent::Expire {
                id: "ab12".to_owned(),
            },
            JournalEvent::Shed {
                id: "cd34".to_owned(),
            },
            JournalEvent::Done {
                id: "ab12".to_owned(),
                summary_json: r#"{"masked":3}"#.to_owned(),
            },
        ]
    }

    fn write_journal(events: &[JournalEvent]) -> Vec<u8> {
        let dir =
            std::env::temp_dir().join(format!("fidelity-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("j-{:p}.journal", events));
        let mut j = Journal::create(&path).unwrap();
        for ev in events {
            j.append(ev).unwrap();
        }
        drop(j);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        bytes
    }

    #[test]
    fn round_trips_every_event_kind() {
        let events = sample_events();
        let bytes = write_journal(&events);
        assert_eq!(replay_bytes(&bytes).unwrap(), events);
    }

    #[test]
    fn torn_tail_is_dropped_everywhere_else_errors() {
        let events = sample_events();
        let bytes = write_journal(&events);
        // Truncation mid-final-line drops only that record.
        let cut = bytes.len() - 4;
        let replayed = replay_bytes(&bytes[..cut]).unwrap();
        assert_eq!(replayed.len(), events.len() - 1);
        // Flipping a byte in an *interior* line is corruption, not a tear.
        let mut evil = bytes.clone();
        let idx = bytes.iter().position(|&b| b == b'\n').unwrap() + 2;
        evil[idx] ^= 0x40;
        let err = replay_bytes(&evil).unwrap_err();
        assert!(err.contains("line 2"), "unexpected error: {err}");
    }

    #[test]
    fn missing_file_is_empty_first_boot() {
        let path = std::env::temp_dir().join("fidelity-journal-does-not-exist.journal");
        assert!(replay_file(&path).unwrap().is_empty());
    }

    #[test]
    fn append_to_continues_an_existing_log() {
        let dir =
            std::env::temp_dir().join(format!("fidelity-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("append.journal");
        let mut j = Journal::create(&path).unwrap();
        j.append(&JournalEvent::Start { id: "x".to_owned() })
            .unwrap();
        drop(j);
        let mut j = Journal::append_to(&path).unwrap();
        j.append(&JournalEvent::Done {
            id: "x".to_owned(),
            summary_json: "{}".to_owned(),
        })
        .unwrap();
        drop(j);
        let events = replay_file(&path).unwrap();
        assert_eq!(events.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
