//! Job specifications: the JSON body of `POST /campaigns`.
//!
//! A [`JobSpec`] names everything that identifies a campaign — network,
//! precision, sample count, seed, adaptive-CI target, range bounding — plus
//! service-side policy that does *not* affect results (priority, deadline,
//! retries, thread count). The split matters: the identity fields feed the
//! job fingerprint, which keys single-flight deduplication and the on-disk
//! checkpoint, while policy fields can differ between two submissions that
//! still attach to the same run.
//!
//! Deployment mirrors the `fidelity analyze` CLI exactly (same workload
//! constructors, same seed defaults, same engine configuration), so a
//! campaign run by the service produces bit-identical checkpoints and
//! masking probabilities to an uninterrupted CLI run of the same spec.

use fidelity_core::adaptive::AdaptivePlan;
use fidelity_core::campaign::{CampaignSpec, MacTier};
use fidelity_core::outcome::{CorrectnessMetric, TopOneMatch};
use fidelity_dnn::graph::{Engine, Trace};
use fidelity_dnn::precision::Precision;
use fidelity_obs::json::{escape_into, number_into, Json};
use fidelity_workloads::{
    classification_suite, lstm_workload, transformer_workload, yolo_workload, BleuThreshold,
    DetectionThreshold, Workload, WorkloadKind,
};

/// Workload seed `fidelity analyze` uses when `--seed` is absent.
const DEFAULT_WORKLOAD_SEED: u64 = 42;
/// Campaign seed `fidelity analyze` uses when `--seed` is absent.
const DEFAULT_CAMPAIGN_SEED: u64 = 0xF1DE;

/// One campaign job, as submitted over the API.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Workload name (`inception`, `resnet`, `mobilenet`, `yolo`,
    /// `transformer`, `lstm`).
    pub network: String,
    /// Numeric precision (`fp16`, `fp32`, `int16`, `int8`).
    pub precision: String,
    /// Injection samples per cell.
    pub samples: usize,
    /// RNG seed. `None` reproduces the CLI defaults (workload seed 42,
    /// campaign seed `0xF1DE`).
    pub seed: Option<u64>,
    /// Keep per-injection events (costs memory and checkpoint bytes).
    pub record_events: bool,
    /// Adaptive sampling target (95% Wilson half-width).
    pub target_ci: Option<f64>,
    /// Range-bounding slack, when range detectors are deployed.
    pub bounding: Option<f32>,
    /// Campaign worker threads; `0` takes the server default. Results are
    /// bit-identical for any value.
    pub threads: usize,
    /// Queue priority; higher runs first. Under overload a full queue sheds
    /// its lowest-priority entry to admit higher-priority work.
    pub priority: i32,
    /// Whole-job wall-clock deadline in milliseconds, enforced by the
    /// supervisor (cooperative cancellation), and also plumbed into the
    /// per-injection watchdog of the campaign's `ResilienceSpec`.
    pub deadline_ms: Option<u64>,
    /// Job-level retries after a failed attempt (each resumes from the
    /// job's checkpoint, backing off exponentially).
    pub retries: usize,
    /// Batched fault-cone evaluation cadence (`0` = off). Policy, not
    /// identity: the batched and dense paths produce bit-identical results,
    /// so two submissions differing only here share one execution.
    pub batch: usize,
    /// MAC kernel tier (`bitwise` or `fast`). Identity: the Fast tier may
    /// change low-order bits, so it feeds the fingerprint and the campaign
    /// checkpoint key.
    pub mac_tier: MacTier,
    /// Adaptive-planner FIT-bound target ε. `Some` switches the campaign
    /// to confidence-driven wave sampling; identity (changes which
    /// injections run), so it feeds the fingerprint.
    pub epsilon: Option<f64>,
    /// Adaptive confidence level (0.90, 0.95, or 0.99). Identity alongside
    /// `epsilon`; ignored unless `epsilon` is set.
    pub confidence: Option<f64>,
    /// Adaptive total-injection ceiling. Identity alongside `epsilon`;
    /// ignored unless `epsilon` is set.
    pub max_injections: Option<usize>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            network: String::new(),
            precision: "fp16".to_owned(),
            samples: 200,
            seed: None,
            record_events: false,
            target_ci: None,
            bounding: None,
            threads: 0,
            priority: 0,
            deadline_ms: None,
            retries: 2,
            batch: 0,
            mac_tier: MacTier::Bitwise,
            epsilon: None,
            confidence: None,
            max_injections: None,
        }
    }
}

const NETWORKS: &[&str] = &[
    "inception",
    "resnet",
    "mobilenet",
    "yolo",
    "transformer",
    "lstm",
];
const PRECISIONS: &[&str] = &["fp16", "fp32", "int16", "int8"];

/// Upper bound on `deadline_ms`: ten years. Rules out timer-arithmetic
/// overflow in the supervisor and keeps the canonical-JSON `f64` encoding
/// of the field exact (the bound is well under 2^53).
const MAX_DEADLINE_MS: u64 = 10 * 365 * 24 * 60 * 60 * 1000;

impl JobSpec {
    /// Parses a spec from a JSON request body. Unknown fields are rejected —
    /// a typo in `"samples"` must not silently run a 200-sample default.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let Json::Obj(map) = v else {
            return Err("job spec must be a JSON object".to_owned());
        };
        let mut spec = JobSpec::default();
        for (key, val) in map {
            match key.as_str() {
                "network" => {
                    spec.network = val
                        .as_str()
                        .ok_or_else(|| "`network` must be a string".to_owned())?
                        .to_owned();
                }
                "precision" => {
                    spec.precision = val
                        .as_str()
                        .ok_or_else(|| "`precision` must be a string".to_owned())?
                        .to_owned();
                }
                "samples" => spec.samples = usize_field(val, key)?,
                "seed" => spec.seed = Some(u64_field(val, key)?),
                "record_events" => spec.record_events = bool_field(val, key)?,
                "target_ci" => {
                    spec.target_ci = Some(val.as_f64().ok_or_else(|| bad(key, "a number"))?);
                }
                "bounding" => {
                    spec.bounding = Some(val.as_f64().ok_or_else(|| bad(key, "a number"))? as f32);
                }
                "threads" => spec.threads = usize_field(val, key)?,
                "priority" => {
                    let n = val.as_f64().ok_or_else(|| bad(key, "an integer"))?;
                    if n < f64::from(i32::MIN) || n > f64::from(i32::MAX) {
                        return Err(bad(key, "an i32"));
                    }
                    spec.priority = n as i32;
                }
                "deadline_ms" => spec.deadline_ms = Some(u64_field(val, key)?),
                "retries" => spec.retries = usize_field(val, key)?,
                "batch" => spec.batch = usize_field(val, key)?,
                "mac_tier" => {
                    let s = val
                        .as_str()
                        .ok_or_else(|| bad(key, "\"bitwise\" or \"fast\""))?;
                    spec.mac_tier =
                        MacTier::parse(s).ok_or_else(|| bad(key, "\"bitwise\" or \"fast\""))?;
                }
                "epsilon" => {
                    spec.epsilon = Some(val.as_f64().ok_or_else(|| bad(key, "a number"))?);
                }
                "confidence" => {
                    spec.confidence = Some(val.as_f64().ok_or_else(|| bad(key, "a number"))?);
                }
                "max_injections" => spec.max_injections = Some(usize_field(val, key)?),
                other => return Err(format!("unknown field `{other}`")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a spec from raw JSON text (journal recovery path).
    ///
    /// # Errors
    ///
    /// Propagates JSON and field errors.
    pub fn from_json_str(s: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&fidelity_obs::json::parse(s)?)
    }

    fn validate(&self) -> Result<(), String> {
        if self.network.is_empty() {
            return Err("`network` is required".to_owned());
        }
        if !NETWORKS.contains(&self.network.as_str()) {
            return Err(format!(
                "unknown network `{}` (expected one of {})",
                self.network,
                NETWORKS.join(", ")
            ));
        }
        if !PRECISIONS.contains(&self.precision.as_str()) {
            return Err(format!(
                "unknown precision `{}` (expected one of {})",
                self.precision,
                PRECISIONS.join(", ")
            ));
        }
        if self.samples == 0 {
            return Err("`samples` must be at least 1".to_owned());
        }
        if self.deadline_ms.is_some_and(|d| d > MAX_DEADLINE_MS) {
            return Err(format!(
                "`deadline_ms` must be at most {MAX_DEADLINE_MS} (ten years)"
            ));
        }
        if self.epsilon.is_none() && (self.confidence.is_some() || self.max_injections.is_some()) {
            return Err("`confidence`/`max_injections` require `epsilon`".to_owned());
        }
        if let Some(plan) = self.adaptive_plan() {
            plan.validated_z().map_err(|e| e.to_string())?;
            if self.record_events {
                return Err("`epsilon` (adaptive) excludes `record_events`".to_owned());
            }
            if self.target_ci.is_some() {
                return Err("`epsilon` (adaptive) excludes `target_ci`".to_owned());
            }
        }
        Ok(())
    }

    /// The adaptive plan implied by the spec, when `epsilon` is set.
    pub fn adaptive_plan(&self) -> Option<AdaptivePlan> {
        let epsilon = self.epsilon?;
        let mut plan = AdaptivePlan::new(epsilon);
        if let Some(c) = self.confidence {
            plan.confidence = c;
        }
        if let Some(m) = self.max_injections {
            plan.max_injections = m;
        }
        Some(plan)
    }

    /// Canonical single-line JSON encoding: stable field order, defaults
    /// included. The journal stores this; [`JobSpec::from_json_str`] must
    /// round-trip it exactly.
    pub fn to_canonical_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("{\"network\":");
        escape_into(&mut s, &self.network);
        s.push_str(",\"precision\":");
        escape_into(&mut s, &self.precision);
        push_num(&mut s, "samples", self.samples as f64);
        if let Some(seed) = self.seed {
            push_num(&mut s, "seed", seed as f64);
        }
        s.push_str(",\"record_events\":");
        s.push_str(if self.record_events { "true" } else { "false" });
        if let Some(ci) = self.target_ci {
            push_num(&mut s, "target_ci", ci);
        }
        if let Some(b) = self.bounding {
            push_num(&mut s, "bounding", f64::from(b));
        }
        push_num(&mut s, "threads", self.threads as f64);
        push_num(&mut s, "priority", f64::from(self.priority));
        if let Some(d) = self.deadline_ms {
            push_num(&mut s, "deadline_ms", d as f64);
        }
        push_num(&mut s, "retries", self.retries as f64);
        push_num(&mut s, "batch", self.batch as f64);
        s.push_str(",\"mac_tier\":");
        escape_into(&mut s, self.mac_tier.as_str());
        if let Some(e) = self.epsilon {
            push_num(&mut s, "epsilon", e);
        }
        if let Some(c) = self.confidence {
            push_num(&mut s, "confidence", c);
        }
        if let Some(m) = self.max_injections {
            push_num(&mut s, "max_injections", m as f64);
        }
        s.push('}');
        s
    }

    /// FNV-1a over the identity fields only. Two specs with equal
    /// fingerprints run the same campaign and may share one execution
    /// (single-flight); policy fields (priority, deadline, retries,
    /// threads) are deliberately excluded.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.network.as_bytes());
        eat(self.precision.as_bytes());
        eat(&(self.samples as u64).to_le_bytes());
        eat(&self.seed.unwrap_or(u64::MAX).to_le_bytes());
        eat(&[u8::from(self.record_events), u8::from(self.seed.is_some())]);
        eat(&self.target_ci.map_or(u64::MAX, f64::to_bits).to_le_bytes());
        eat(&self.bounding.map_or(u32::MAX, f32::to_bits).to_le_bytes());
        // The MAC tier is identity (Fast may change bits); `batch` is policy
        // (bit-identical by construction) and deliberately excluded.
        eat(self.mac_tier.as_str().as_bytes());
        // Adaptive plan is identity: it decides which injections run.
        if let Some(plan) = self.adaptive_plan() {
            eat(&[1u8]);
            eat(&plan.epsilon.to_bits().to_le_bytes());
            eat(&plan.confidence.to_bits().to_le_bytes());
            eat(&(plan.max_injections as u64).to_le_bytes());
        }
        h
    }

    /// The job id: the fingerprint in hex. Doubles as the checkpoint file
    /// stem, so a restarted daemon finds the right checkpoint by id alone.
    pub fn job_id(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// The workload seed, with the CLI's `analyze` default.
    pub fn workload_seed(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_WORKLOAD_SEED)
    }

    /// The campaign seed, with the CLI's `analyze` default.
    pub fn campaign_seed(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_CAMPAIGN_SEED)
    }

    /// Deploys the workload exactly as `fidelity analyze` does: same
    /// constructors, same precision mapping, same optional range bounding.
    ///
    /// # Errors
    ///
    /// Returns deployment errors as text.
    pub fn deploy(&self) -> Result<(Engine, Trace, Box<dyn CorrectnessMetric>), String> {
        let seed = self.workload_seed();
        let w = self.workload(seed)?;
        let metric = metric_for(&w);
        let p = self.parse_precision()?;
        let inputs = w.inputs.clone();
        let mut engine =
            Engine::new(w.network, p, std::slice::from_ref(&inputs)).map_err(|e| e.to_string())?;
        if let Some(slack) = self.bounding {
            engine
                .enable_range_bounding(&inputs, slack)
                .map_err(|e| e.to_string())?;
        }
        let trace = engine.trace(&inputs).map_err(|e| e.to_string())?;
        Ok((engine, trace, metric))
    }

    fn workload(&self, seed: u64) -> Result<Workload, String> {
        Ok(match self.network.as_str() {
            "inception" => classification_suite(seed).remove(0),
            "resnet" => classification_suite(seed).remove(1),
            "mobilenet" => classification_suite(seed).remove(2),
            "yolo" => yolo_workload(seed),
            "transformer" => transformer_workload(seed),
            "lstm" => lstm_workload(seed),
            other => return Err(format!("unknown network `{other}`")),
        })
    }

    fn parse_precision(&self) -> Result<Precision, String> {
        Ok(match self.precision.as_str() {
            "fp16" => Precision::Fp16,
            "fp32" => Precision::Fp32,
            "int16" => Precision::Int16,
            "int8" => Precision::Int8,
            other => return Err(format!("unknown precision `{other}`")),
        })
    }

    /// Builds the identity half of a [`CampaignSpec`] — the fields covered
    /// by the checkpoint fingerprint. Resilience policy (checkpoint path,
    /// cancellation, watchdog) is layered on by the supervisor.
    pub fn campaign_spec(&self, default_threads: usize) -> CampaignSpec {
        CampaignSpec {
            samples_per_cell: self.samples,
            seed: self.campaign_seed(),
            threads: if self.threads == 0 {
                default_threads.max(1)
            } else {
                self.threads
            },
            record_events: self.record_events,
            target_ci_halfwidth: self.target_ci,
            resilience: Default::default(),
            progress: None,
            batch: self.batch,
            mac_tier: self.mac_tier,
            adaptive: self.adaptive_plan(),
        }
    }
}

fn metric_for(w: &Workload) -> Box<dyn CorrectnessMetric> {
    match w.kind {
        WorkloadKind::Classification => Box::new(TopOneMatch),
        WorkloadKind::Translation => Box::new(BleuThreshold::ten_percent()),
        WorkloadKind::Detection => Box::new(DetectionThreshold::ten_percent()),
    }
}

fn bad(key: &str, expected: &str) -> String {
    format!("`{key}` must be {expected}")
}

fn usize_field(v: &Json, key: &str) -> Result<usize, String> {
    let n = v
        .as_u64()
        .ok_or_else(|| bad(key, "a non-negative integer"))?;
    usize::try_from(n).map_err(|_| bad(key, "a usize"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.as_u64().ok_or_else(|| bad(key, "a non-negative integer"))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, String> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err(bad(key, "a boolean")),
    }
}

fn push_num(out: &mut String, key: &str, v: f64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    number_into(out, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelity_obs::json::parse;

    fn tiny() -> JobSpec {
        JobSpec {
            network: "lstm".to_owned(),
            samples: 4,
            seed: Some(7),
            ..JobSpec::default()
        }
    }

    #[test]
    fn canonical_json_round_trips() {
        let specs = [
            tiny(),
            JobSpec {
                network: "yolo".to_owned(),
                precision: "int8".to_owned(),
                samples: 11,
                seed: None,
                record_events: true,
                target_ci: Some(0.05),
                bounding: Some(1.5),
                threads: 3,
                priority: -2,
                deadline_ms: Some(12_000),
                retries: 0,
                batch: 16,
                mac_tier: MacTier::Fast,
                epsilon: None,
                confidence: None,
                max_injections: None,
            },
            JobSpec {
                network: "resnet".to_owned(),
                epsilon: Some(0.005),
                confidence: Some(0.99),
                max_injections: Some(50_000),
                ..tiny()
            },
        ];
        for spec in specs {
            let text = spec.to_canonical_json();
            let back = JobSpec::from_json_str(&text).unwrap();
            assert_eq!(back, spec, "round-trip through {text}");
        }
    }

    #[test]
    fn unknown_fields_and_values_are_rejected() {
        for body in [
            r#"{"network":"lstm","sample":4}"#,  // typo'd field
            r#"{"network":"vgg"}"#,              // unknown network
            r#"{"network":"lstm","samples":0}"#, // zero samples
            r#"{"network":"lstm","precision":"bf16"}"#,
            r#"{"network":"lstm","mac_tier":"turbo"}"#, // unknown tier
            r#"{"samples":4}"#,                         // missing network
            r#"[1,2,3]"#,                               // not an object
        ] {
            let v = parse(body).unwrap();
            assert!(JobSpec::from_json(&v).is_err(), "accepted: {body}");
        }
    }

    #[test]
    fn absurd_deadlines_are_rejected() {
        // Above the ten-year bound (but exactly representable as f64, so
        // the failure is the validation, not the number parse).
        let v = parse(r#"{"network":"lstm","deadline_ms":1000000000000}"#).unwrap();
        let err = JobSpec::from_json(&v).unwrap_err();
        assert!(err.contains("deadline_ms"), "{err}");
        let v = parse(r#"{"network":"lstm","deadline_ms":60000}"#).unwrap();
        assert_eq!(JobSpec::from_json(&v).unwrap().deadline_ms, Some(60_000));
    }

    #[test]
    fn fingerprint_covers_identity_not_policy() {
        let a = tiny();
        let mut policy = a.clone();
        policy.priority = 9;
        policy.deadline_ms = Some(1);
        policy.retries = 0;
        policy.threads = 8;
        policy.batch = 64; // batched evaluation is bit-identical → policy
        assert_eq!(a.fingerprint(), policy.fingerprint());
        let mut fast = a.clone();
        fast.mac_tier = MacTier::Fast; // may change bits → identity
        assert_ne!(a.fingerprint(), fast.fingerprint());
        let mut reseeded = a.clone();
        reseeded.seed = Some(8);
        assert_ne!(a.fingerprint(), reseeded.fingerprint());
        let mut samples = a.clone();
        samples.samples = 5;
        assert_ne!(a.fingerprint(), samples.fingerprint());
        let mut unseeded = a.clone();
        unseeded.seed = None;
        assert_ne!(a.fingerprint(), unseeded.fingerprint());
        let mut adaptive = a.clone();
        adaptive.epsilon = Some(0.01); // decides which injections run → identity
        assert_ne!(a.fingerprint(), adaptive.fingerprint());
        let mut tighter = adaptive.clone();
        tighter.epsilon = Some(0.001);
        assert_ne!(adaptive.fingerprint(), tighter.fingerprint());
    }

    #[test]
    fn adaptive_validation_rejects_conflicts() {
        for body in [
            r#"{"network":"lstm","confidence":0.95}"#, // confidence without epsilon
            r#"{"network":"lstm","epsilon":0.0}"#,     // non-positive epsilon
            r#"{"network":"lstm","epsilon":0.01,"confidence":0.8}"#, // unsupported level
            r#"{"network":"lstm","epsilon":0.01,"record_events":true}"#,
            r#"{"network":"lstm","epsilon":0.01,"target_ci":0.05}"#,
        ] {
            let v = parse(body).unwrap();
            assert!(JobSpec::from_json(&v).is_err(), "accepted: {body}");
        }
        let v = parse(r#"{"network":"lstm","epsilon":0.01,"confidence":0.99}"#).unwrap();
        let spec = JobSpec::from_json(&v).unwrap();
        let plan = spec.adaptive_plan().unwrap();
        assert_eq!(plan.epsilon, 0.01);
        assert_eq!(plan.confidence, 0.99);
        assert!(spec.campaign_spec(1).adaptive.is_some());
    }

    #[test]
    fn seed_defaults_match_the_cli() {
        let spec = JobSpec {
            seed: None,
            ..tiny()
        };
        assert_eq!(spec.workload_seed(), 42);
        assert_eq!(spec.campaign_seed(), 0xF1DE);
        let spec = JobSpec {
            seed: Some(5),
            ..tiny()
        };
        assert_eq!(spec.workload_seed(), 5);
        assert_eq!(spec.campaign_seed(), 5);
    }
}
