//! Deterministic interleaving model of the supervisor admission protocol.
//!
//! Re-expresses the [`crate::supervisor`] submit path — dedup single-flight
//! attach, backpressure decided under the `jobs` lock, priority shedding —
//! and the worker's pop-then-run transition against the `loom` model types,
//! so the scheduler can enumerate every interleaving of submitters and
//! workers. The journal write-ahead and the campaign execution itself are
//! out of scope (they are I/O, serialized behind the same locks modeled
//! here); what is kept is the lock protocol: admission is decided and the
//! queue mutated while the `jobs` lock is held (the `jobs → queue` order
//! edge `fidelity concheck` reports), and the worker pops from the queue
//! *before* taking `jobs` — nesting them the other way would be the AB-BA
//! cycle the model would report as a deadlock.
//!
//! Checked invariants, in every explored interleaving:
//!
//! - **single-flight**: two identical submissions yield exactly one
//!   `Accepted` and one `Attached`, and never two queue entries;
//! - **shed accounting**: with a full queue, a higher-priority submission
//!   evicts exactly the lowest-priority victim; the victim ends `Shed`,
//!   lower-priority arrivals end `Busy`, and the queue never exceeds
//!   capacity;
//! - **queued ⇔ enqueued**: a job is in state `Queued` if and only if its
//!   id is in the queue once the dust settles — no job is left marked
//!   queued while absent from the queue (the wedged state the production
//!   fallback path guards against).

use std::collections::BTreeMap;

use loom::model::sync::{Arc, Mutex};
use loom::model::thread;

/// Job lifecycle states the model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JState {
    Queued,
    Running,
    Shed,
}

/// What one model `submit` observed (mirrors `SubmitOutcome`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MOutcome {
    Accepted,
    AcceptedShedding,
    Attached,
    Busy,
}

/// The supervisor's shared state, reduced to its admission protocol.
struct ModelSup {
    jobs: Mutex<BTreeMap<&'static str, JState>>,
    /// Bounded queue: `(id, priority)`, admission under the `jobs` lock.
    queue: Mutex<Vec<(&'static str, u8)>>,
    capacity: usize,
}

fn lock<T>(m: &Mutex<T>) -> loom::model::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ModelSup {
    fn new(capacity: usize) -> Self {
        ModelSup {
            jobs: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(Vec::new()),
            capacity,
        }
    }

    /// The submit path: dedup, backpressure, register, push — all under
    /// the `jobs` lock, as in `Supervisor::submit`.
    fn submit(&self, id: &'static str, priority: u8) -> MOutcome {
        let mut jobs = lock(&self.jobs);
        if let Some(state) = jobs.get(id) {
            match state {
                JState::Queued | JState::Running => return MOutcome::Attached,
                JState::Shed => {} // terminal: resubmission falls through
            }
        }
        let mut queue = lock(&self.queue);
        if queue.len() < self.capacity {
            jobs.insert(id, JState::Queued);
            queue.push((id, priority));
            return MOutcome::Accepted;
        }
        // Full: shed the lowest-priority entry iff strictly lower.
        let victim_pos = (0..queue.len()).min_by_key(|&i| queue[i].1);
        if let Some(pos) = victim_pos {
            if queue[pos].1 < priority {
                let (victim, _) = queue.remove(pos);
                jobs.insert(victim, JState::Shed);
                jobs.insert(id, JState::Queued);
                queue.push((id, priority));
                return MOutcome::AcceptedShedding;
            }
        }
        MOutcome::Busy
    }

    /// The worker's claim: pop from the queue first, release it, then take
    /// `jobs` to mark the transition (never nested — see module docs).
    fn pop_and_run(&self) -> Option<&'static str> {
        let popped = {
            let mut queue = lock(&self.queue);
            if queue.is_empty() {
                None
            } else {
                let best = (0..queue.len()).max_by_key(|&i| queue[i].1)?;
                Some(queue.remove(best).0)
            }
        };
        let id = popped?;
        lock(&self.jobs).insert(id, JState::Running);
        Some(id)
    }

    /// The queued ⇔ enqueued consistency check, taken under both locks.
    fn assert_consistent(&self) {
        let jobs = lock(&self.jobs);
        let queue = lock(&self.queue);
        assert!(queue.len() <= self.capacity, "queue over capacity");
        for (id, state) in jobs.iter() {
            let enqueued = queue.iter().filter(|(q, _)| q == id).count();
            assert!(enqueued <= 1, "job {id} enqueued {enqueued} times");
            match state {
                JState::Queued => {
                    assert_eq!(enqueued, 1, "job {id} marked queued but absent");
                }
                JState::Running | JState::Shed => {
                    assert_eq!(enqueued, 0, "job {id} is {state:?} yet enqueued");
                }
            }
        }
    }
}

/// Two identical submissions race a worker: single-flight dedup.
fn run_dedup_model() {
    let sup = Arc::new(ModelSup::new(2));
    let s1 = {
        let sup = Arc::clone(&sup);
        thread::spawn(move || sup.submit("x", 1))
    };
    let s2 = {
        let sup = Arc::clone(&sup);
        thread::spawn(move || sup.submit("x", 1))
    };
    let w = {
        let sup = Arc::clone(&sup);
        thread::spawn(move || sup.pop_and_run())
    };
    let o1 = s1.join().expect("submitter 1 panicked");
    let o2 = s2.join().expect("submitter 2 panicked");
    let ran = w.join().expect("worker panicked");
    let accepted = [o1, o2]
        .iter()
        .filter(|o| **o == MOutcome::Accepted)
        .count();
    let attached = [o1, o2]
        .iter()
        .filter(|o| **o == MOutcome::Attached)
        .count();
    assert_eq!(accepted, 1, "dedup admitted twice: {o1:?} {o2:?}");
    assert_eq!(attached, 1, "second submit must attach: {o1:?} {o2:?}");
    if let Some(id) = ran {
        assert_eq!(id, "x");
        assert_eq!(lock(&sup.jobs).get("x"), Some(&JState::Running));
    }
    sup.assert_consistent();
}

/// Two different-priority submissions race a capacity-1 queue: shedding.
fn run_shed_model() {
    let sup = Arc::new(ModelSup::new(1));
    let lo = {
        let sup = Arc::clone(&sup);
        thread::spawn(move || sup.submit("low", 0))
    };
    let hi = {
        let sup = Arc::clone(&sup);
        thread::spawn(move || sup.submit("high", 1))
    };
    let lo_out = lo.join().expect("low submitter panicked");
    let hi_out = hi.join().expect("high submitter panicked");
    // Whichever order the lock grants, the high-priority job always wins
    // the queue slot; the low one is shed (arrived first) or bounced
    // (arrived second).
    assert_eq!(lock(&sup.jobs).get("high"), Some(&JState::Queued));
    match (lo_out, hi_out) {
        (MOutcome::Accepted, MOutcome::AcceptedShedding) => {
            assert_eq!(lock(&sup.jobs).get("low"), Some(&JState::Shed));
        }
        (MOutcome::Busy, MOutcome::Accepted) => {
            assert_eq!(lock(&sup.jobs).get("low"), None);
        }
        other => panic!("impossible admission outcome: {other:?}"),
    }
    sup.assert_consistent();
}

/// Exhaustively model-checks single-flight dedup under a racing worker.
pub fn supervisor_dedup_exhaustive() -> loom::Report {
    loom::Builder::default().check(run_dedup_model)
}

/// Exhaustively model-checks priority shedding on a full queue.
pub fn supervisor_shed_exhaustive() -> loom::Report {
    loom::Builder::default().check(run_shed_model)
}
