//! Minimal HTTP/1.1 support for the campaign service.
//!
//! Hand-rolled on purpose: the daemon depends only on the standard library,
//! and the API surface is small (five routes, JSON bodies, one chunked
//! stream). The parser enforces hard limits — 8 KiB of headers, 64 KiB of
//! body — so a malformed or hostile request costs bounded memory and gets a
//! clean 4xx, never a panic or an unbounded buffer.

use std::io::{ErrorKind, Read, Write};

/// Maximum bytes of request line + headers.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Maximum bytes of request body.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, ...
    pub method: String,
    /// Request target, e.g. `/campaigns/abc123`.
    pub path: String,
    /// Raw body bytes (≤ [`MAX_BODY_BYTES`]).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed. Each variant maps to one status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line or headers → 400.
    BadRequest(String),
    /// Headers or body over the hard limits → 413.
    TooLarge(&'static str),
    /// The client went quiet mid-request → 408.
    Timeout,
    /// The client disconnected before sending anything.
    Closed,
}

/// Reads and parses one request. The caller owns socket timeouts; a read
/// timeout surfaces as [`ParseError::Timeout`].
///
/// # Errors
///
/// See [`ParseError`].
pub fn read_request<R: Read>(r: &mut R) -> Result<Request, ParseError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ParseError::TooLarge("headers"));
        }
        match r.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(ParseError::Closed);
                }
                return Err(ParseError::BadRequest("truncated headers".to_owned()));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(ParseError::Timeout);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ParseError::BadRequest(format!("read: {e}"))),
        }
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequest(format!(
            "malformed request line `{request_line}`"
        )));
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| ParseError::BadRequest(format!("bad content-length `{value}`")))?;
        } else if name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity") {
            return Err(ParseError::BadRequest(
                "transfer-encoding not supported for requests".to_owned(),
            ));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge("body"));
    }

    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        match r.read(&mut chunk) {
            Ok(0) => return Err(ParseError::BadRequest("truncated body".to_owned())),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(ParseError::Timeout);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ParseError::BadRequest(format!("read: {e}"))),
        }
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Canonical reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete JSON response with `Content-Length`.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn respond_json<W: Write>(w: &mut W, status: u16, body: &str) -> std::io::Result<()> {
    respond_json_with(w, status, &[], body)
}

/// Like [`respond_json`], with extra headers (e.g. `Retry-After`).
///
/// # Errors
///
/// Propagates socket write errors.
pub fn respond_json_with<W: Write>(
    w: &mut W,
    status: u16,
    extra: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    respond_with(w, status, "application/json", extra, body.as_bytes())
}

/// Writes a complete response with an arbitrary content type — the
/// `/metrics` route speaks Prometheus text and `/campaigns/:id/trace`
/// serves raw NDJSON, neither of which is `application/json`.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn respond_with<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Starts a chunked response (the event stream).
///
/// # Errors
///
/// Propagates socket write errors.
pub fn start_chunked<W: Write>(w: &mut W, status: u16) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(status)
    );
    w.write_all(head.as_bytes())?;
    w.flush()
}

/// Writes one chunk.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_chunk<W: Write>(w: &mut W, data: &str) -> std::io::Result<()> {
    write!(w, "{:x}\r\n{data}\r\n", data.len())?;
    w.flush()
}

/// Terminates a chunked response.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn end_chunked<W: Write>(w: &mut W) -> std::io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut std::io::Cursor::new(raw.to_vec()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /campaigns HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaigns");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET /x SMTP/1.0\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(parse(b""), Err(ParseError::Closed)));
    }

    #[test]
    fn rejects_oversized_headers_and_bodies() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 16));
        assert!(matches!(
            read_request(&mut std::io::Cursor::new(raw)),
            Err(ParseError::TooLarge("headers"))
        ));

        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(raw.as_bytes()),
            Err(ParseError::TooLarge("body"))
        ));
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(parse(raw), Err(ParseError::BadRequest(_))));
    }

    #[test]
    fn chunked_writer_emits_valid_framing() {
        let mut out = Vec::new();
        start_chunked(&mut out, 200).unwrap();
        write_chunk(&mut out, "{\"a\":1}\n").unwrap();
        end_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
