//! fidelity-serve: crash-tolerant campaign-as-a-service daemon.
//!
//! Long resilience campaigns want to run unattended: submitted over HTTP,
//! supervised, resumable after a crash or `kill -9`, and honest under
//! overload. This crate provides that service layer on top of the
//! deterministic campaign engine:
//!
//! * [`jobspec`] — the JSON job description; its fingerprint keys
//!   single-flight deduplication and the on-disk checkpoint, and
//!   deployment mirrors the `fidelity analyze` CLI so service results are
//!   bit-identical to CLI results.
//! * [`journal`] — a checksummed write-ahead log of job lifecycle events;
//!   a torn tail (the one legal crash artifact) truncates cleanly, any
//!   other damage is reported with a line number.
//! * [`queue`] — a bounded priority queue with explicit backpressure
//!   (reject + retry hint) and visible overload shedding.
//! * [`supervisor`] — the job engine: workers, seeded-backoff retries,
//!   deadlines, cooperative cancellation, checkpoint-resume recovery, and
//!   graceful drain.
//! * [`http`] / [`server`] — a dependency-free HTTP/1.1 front end with
//!   hard request limits and a chunked progress-event stream.
//! * [`jobtrace`] — end-to-end job tracing: deterministic trace ids
//!   derived from the job fingerprint, per-job JSONL trace files that
//!   survive daemon restarts, and size-capped rotation.
//! * [`metrics`] — the daemon's service-level instruments (per-route
//!   request counters and latency histograms, queue and job-state
//!   gauges), exported in Prometheus text form by `GET /metrics`.
//! * [`top`] — the `fidelity top` live dashboard: polls `/metrics` and
//!   `/campaigns` and renders queue depth, injection throughput, and
//!   per-job progress in the terminal.
//! * [`client`] — a thin blocking client for scripting, smoke tests, and
//!   the integration suite.
//!
//! Nothing here invents randomness or reads wall clocks on campaign
//! paths: every campaign the daemon runs is exactly the campaign the CLI
//! would have run, which is what makes crash recovery verifiable — a
//! resumed job's checkpoint bytes and masking probabilities match an
//! uninterrupted run's.

pub mod client;
pub mod http;
pub mod jobspec;
pub mod jobtrace;
pub mod journal;
pub mod metrics;
#[cfg(feature = "loom_model")]
pub mod modelcheck;
pub mod queue;
pub mod server;
pub mod supervisor;
pub mod top;

pub use client::{Client, HttpReply};
pub use jobspec::JobSpec;
pub use server::{serve, ServeHandle};
pub use supervisor::{JobState, ServeConfig, SubmitOutcome, Supervisor};
