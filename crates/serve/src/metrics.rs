//! Service-level instruments for the daemon, registered in the global
//! `fidelity-obs` metrics registry so one `GET /metrics` scrape exports
//! the campaign engine's counters and the HTTP front end's side by side.
//!
//! Handles are resolved once at boot and cached here — the request path
//! pays one `fetch_add` per instrument, never a registry lock.

use std::sync::Arc;

use fidelity_obs::metrics::{self, Counter, Gauge, Histogram};

use crate::supervisor::JobState;

/// The routes the daemon distinguishes in its per-route instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `POST /campaigns`.
    Submit,
    /// `GET /campaigns`.
    List,
    /// `GET /campaigns/:id`.
    Status,
    /// `GET /campaigns/:id/events`.
    Events,
    /// `GET /campaigns/:id/trace`.
    Trace,
    /// `DELETE /campaigns/:id`.
    Cancel,
    /// `POST /shutdown`.
    Shutdown,
    /// Anything else (404/405 paths).
    Other,
}

impl Route {
    /// Every route, in instrument order.
    pub const ALL: [Route; 10] = [
        Route::Healthz,
        Route::Metrics,
        Route::Submit,
        Route::List,
        Route::Status,
        Route::Events,
        Route::Trace,
        Route::Cancel,
        Route::Shutdown,
        Route::Other,
    ];

    /// Metric-name suffix.
    pub fn as_str(self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Submit => "submit",
            Route::List => "list",
            Route::Status => "status",
            Route::Events => "events",
            Route::Trace => "trace",
            Route::Cancel => "cancel",
            Route::Shutdown => "shutdown",
            Route::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Route::Healthz => 0,
            Route::Metrics => 1,
            Route::Submit => 2,
            Route::List => 3,
            Route::Status => 4,
            Route::Events => 5,
            Route::Trace => 6,
            Route::Cancel => 7,
            Route::Shutdown => 8,
            Route::Other => 9,
        }
    }
}

/// Every job state, in instrument order.
pub(crate) const STATES: [JobState; 7] = [
    JobState::Queued,
    JobState::Running,
    JobState::Done,
    JobState::Failed,
    JobState::Cancelled,
    JobState::Expired,
    JobState::Shed,
];

pub(crate) fn state_index(state: JobState) -> usize {
    match state {
        JobState::Queued => 0,
        JobState::Running => 1,
        JobState::Done => 2,
        JobState::Failed => 3,
        JobState::Cancelled => 4,
        JobState::Expired => 5,
        JobState::Shed => 6,
    }
}

/// Cached handles to every service-level instrument.
#[derive(Debug)]
pub struct ServeMetrics {
    requests: Vec<Arc<Counter>>,
    latency: Vec<Arc<Histogram>>,
    /// Submissions accepted as new work.
    pub submitted: Arc<Counter>,
    /// Submissions deduplicated onto in-flight or finished jobs.
    pub dedup: Arc<Counter>,
    /// Queued jobs evicted by higher-priority submissions.
    pub shed: Arc<Counter>,
    /// Submissions rejected with 429 (queue full).
    pub rejected: Arc<Counter>,
    /// Job attempts retried.
    pub retries: Arc<Counter>,
    /// Jobs re-enqueued from the journal at boot.
    pub recovered: Arc<Counter>,
    /// Current queue depth.
    pub queue_depth: Arc<Gauge>,
    /// Remaining queue capacity.
    pub queue_headroom: Arc<Gauge>,
    /// Journal size on disk, bytes.
    pub journal_bytes: Arc<Gauge>,
    /// Process uptime, seconds (refreshed on scrape).
    pub uptime_seconds: Arc<Gauge>,
    jobs_by_state: Vec<Arc<Gauge>>,
}

impl ServeMetrics {
    /// Registers (or re-resolves) every instrument.
    pub fn new() -> ServeMetrics {
        ServeMetrics {
            requests: Route::ALL
                .iter()
                .map(|r| metrics::counter(&format!("serve.http.requests.{}", r.as_str())))
                .collect(),
            latency: Route::ALL
                .iter()
                .map(|r| metrics::histogram(&format!("serve.http.latency_us.{}", r.as_str())))
                .collect(),
            submitted: metrics::counter("serve.jobs.submitted"),
            dedup: metrics::counter("serve.jobs.dedup"),
            shed: metrics::counter("serve.jobs.shed"),
            rejected: metrics::counter("serve.jobs.rejected"),
            retries: metrics::counter("serve.jobs.retries"),
            recovered: metrics::counter("serve.jobs.recovered"),
            queue_depth: metrics::gauge("serve.queue.depth"),
            queue_headroom: metrics::gauge("serve.queue.headroom"),
            journal_bytes: metrics::gauge("serve.journal.bytes"),
            uptime_seconds: metrics::gauge("serve.uptime_seconds"),
            jobs_by_state: STATES
                .iter()
                .map(|s| metrics::gauge(&format!("serve.jobs.state.{}", s.as_str())))
                .collect(),
        }
    }

    /// Records one handled request on `route` with its latency (µs, when
    /// timing is enabled).
    pub fn on_request(&self, route: Route, latency_us: Option<u64>) {
        self.requests[route.index()].inc();
        self.latency[route.index()].record_opt(latency_us);
    }

    /// Requests counted on `route` so far.
    pub fn requests_on(&self, route: Route) -> u64 {
        self.requests[route.index()].get()
    }

    /// Publishes per-state job counts (`counts` indexed like [`JobState`]
    /// via [`ServeMetrics::set_state_count`] callers).
    pub fn set_state_count(&self, state: JobState, count: i64) {
        self.jobs_by_state[state_index(state)].set(count);
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_register_and_export() {
        let m = ServeMetrics::new();
        m.on_request(Route::Metrics, Some(120));
        m.on_request(Route::Metrics, None);
        m.submitted.inc();
        m.set_state_count(JobState::Running, 2);
        m.queue_depth.set(3);
        assert!(m.requests_on(Route::Metrics) >= 2);

        let text = fidelity_obs::prom::render(&metrics::snapshot());
        let dump = fidelity_obs::prom::parse(&text).expect("registry renders parseable");
        assert!(dump.scalar("serve_http_requests_metrics").unwrap_or(0.0) >= 2.0);
        assert!(
            dump.histogram_count("serve_http_latency_us_metrics")
                .unwrap_or(0.0)
                >= 1.0
        );
        // Registry is process-global: a concurrently running supervisor
        // test may overwrite the gauge, so assert presence, not value.
        assert!(dump.scalar("serve_jobs_state_running").is_some());
    }
}
