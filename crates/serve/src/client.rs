//! A thin blocking client for the campaign service.
//!
//! Used by the `fidelity serve --smoke` self-test, the integration suite,
//! and scripting. Speaks just enough HTTP/1.1 for this API: fixed-length
//! JSON responses and the chunked NDJSON event stream.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A client bound to one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

/// One HTTP exchange's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Decoded body (chunked framing removed).
    pub body: String,
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:8123`).
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(10),
        }
    }

    /// Submits a job spec (JSON text). `202` means accepted.
    ///
    /// # Errors
    ///
    /// Returns connection/protocol errors as text.
    pub fn submit(&self, spec_json: &str) -> Result<HttpReply, String> {
        self.request("POST", "/campaigns", Some(spec_json))
    }

    /// Fetches one job's status document.
    ///
    /// # Errors
    ///
    /// Returns connection/protocol errors as text.
    pub fn status(&self, id: &str) -> Result<HttpReply, String> {
        self.request("GET", &format!("/campaigns/{id}"), None)
    }

    /// Lists all jobs.
    ///
    /// # Errors
    ///
    /// Returns connection/protocol errors as text.
    pub fn list(&self) -> Result<HttpReply, String> {
        self.request("GET", "/campaigns", None)
    }

    /// Requests cancellation of a job.
    ///
    /// # Errors
    ///
    /// Returns connection/protocol errors as text.
    pub fn cancel(&self, id: &str) -> Result<HttpReply, String> {
        self.request("DELETE", &format!("/campaigns/{id}"), None)
    }

    /// Health check.
    ///
    /// # Errors
    ///
    /// Returns connection/protocol errors as text.
    pub fn healthz(&self) -> Result<HttpReply, String> {
        self.request("GET", "/healthz", None)
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Returns connection/protocol errors as text.
    pub fn shutdown(&self) -> Result<HttpReply, String> {
        self.request("POST", "/shutdown", None)
    }

    /// Opens the event stream for `id` and returns the first NDJSON line,
    /// then drops the connection.
    ///
    /// # Errors
    ///
    /// Fails if the stream yields no line within the client timeout.
    pub fn stream_one_event(&self, id: &str) -> Result<String, String> {
        let mut stream = self.connect()?;
        let req = format!(
            "GET /campaigns/{id}/events HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr
        );
        stream.write_all(req.as_bytes()).map_err(io_err)?;
        // Read until the first newline after the header block.
        let mut buf = Vec::new();
        let mut chunk = [0u8; 512];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    if let Some(line) = first_stream_line(&buf) {
                        return Ok(line);
                    }
                    if buf.len() > 256 * 1024 {
                        return Err("event stream produced no line in 256 KiB".to_owned());
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err("timed out waiting for an event".to_owned());
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("stream read: {e}")),
            }
        }
        Err("event stream closed without an event".to_owned())
    }

    /// Polls `GET /campaigns/:id` until the state is terminal, for at most
    /// `attempts` polls `interval` apart. Returns the final status body.
    ///
    /// # Errors
    ///
    /// Fails if the job is still running after the last poll.
    pub fn wait_terminal(
        &self,
        id: &str,
        attempts: usize,
        interval: Duration,
    ) -> Result<String, String> {
        for _ in 0..attempts {
            let reply = self.status(id)?;
            if reply.status == 200 && body_state_is_terminal(&reply.body) {
                return Ok(reply.body);
            }
            std::thread::sleep(interval);
        }
        Err(format!("job {id} did not finish within {attempts} polls"))
    }

    fn connect(&self) -> Result<TcpStream, String> {
        let stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(io_err)?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(io_err)?;
        Ok(stream)
    }

    /// One request/response exchange.
    ///
    /// # Errors
    ///
    /// Returns connection/protocol errors as text.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpReply, String> {
        let mut stream = self.connect()?;
        let body = body.unwrap_or("");
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        // A write error is not fatal: a server that rejects the request
        // early (e.g. 413 before reading the body) closes its read side,
        // which surfaces here as a broken pipe — the response is still on
        // the wire.
        let sent = stream.write_all(req.as_bytes());
        let mut raw = Vec::new();
        let mut chunk = [0u8; 2048];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    break
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if raw.is_empty() => {
                    if let Err(w) = sent {
                        return Err(format!("write: {w}"));
                    }
                    return Err(format!("read: {e}"));
                }
                Err(_) => break,
            }
        }
        if raw.is_empty() {
            if let Err(w) = sent {
                return Err(format!("write: {w}"));
            }
        }
        parse_reply(&raw)
    }
}

fn io_err(e: std::io::Error) -> String {
    format!("socket: {e}")
}

/// Parses a full response (status line, headers, body; chunked or fixed).
fn parse_reply(raw: &[u8]) -> Result<HttpReply, String> {
    let text = String::from_utf8_lossy(raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(format!("malformed response: {text}"));
    };
    let status_line = head.lines().next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let chunked = head.lines().any(|l| {
        l.to_ascii_lowercase()
            .contains("transfer-encoding: chunked")
    });
    let body = if chunked {
        decode_chunked(body)
    } else {
        body.to_owned()
    };
    Ok(HttpReply { status, body })
}

fn decode_chunked(raw: &str) -> String {
    let mut out = String::new();
    let mut rest = raw;
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else {
            break;
        };
        if size == 0 || tail.len() < size {
            break;
        }
        out.push_str(&tail[..size]);
        rest = tail[size..].strip_prefix("\r\n").unwrap_or("");
    }
    out
}

/// First NDJSON line of a chunked event stream, if complete.
fn first_stream_line(buf: &[u8]) -> Option<String> {
    let text = String::from_utf8_lossy(buf);
    let (_, body) = text.split_once("\r\n\r\n")?;
    let decoded = decode_chunked(body);
    let line = decoded.split('\n').next()?;
    if line.is_empty() {
        None
    } else {
        Some(line.to_owned())
    }
}

fn body_state_is_terminal(body: &str) -> bool {
    ["done", "failed", "cancelled", "expired", "shed"]
        .iter()
        .any(|s| body.contains(&format!("\"state\":\"{s}\"")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fixed_length_replies() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, "{\"a\":1}");
    }

    #[test]
    fn decodes_chunked_replies() {
        let raw =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nab\ncd\r\n3\r\nef\n\r\n0\r\n\r\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.body, "ab\ncdef\n");
    }

    #[test]
    fn extracts_the_first_stream_line() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n8\r\n{\"a\":1}\n\r\n";
        assert_eq!(first_stream_line(raw).as_deref(), Some("{\"a\":1}"));
        assert_eq!(first_stream_line(b"HTTP/1.1 200 OK\r\n\r\n"), None);
    }

    #[test]
    fn terminal_state_detection_reads_the_state_field() {
        assert!(body_state_is_terminal("{\"state\":\"done\"}"));
        assert!(body_state_is_terminal("{\"state\":\"failed\"}"));
        assert!(!body_state_is_terminal("{\"state\":\"running\"}"));
    }
}
