//! The HTTP listener: routes requests onto a [`Supervisor`].
//!
//! Routes:
//!
//! | Method   | Path                    | Purpose                               |
//! |----------|-------------------------|---------------------------------------|
//! | `POST`   | `/campaigns`            | submit a job (JSON [`JobSpec`] body)  |
//! | `GET`    | `/campaigns`            | list all jobs                         |
//! | `GET`    | `/campaigns/:id`        | job status + progress snapshot        |
//! | `GET`    | `/campaigns/:id/events` | chunked NDJSON progress stream        |
//! | `GET`    | `/campaigns/:id/trace`  | raw per-job trace file (NDJSON)       |
//! | `DELETE` | `/campaigns/:id`        | cooperative cancellation              |
//! | `GET`    | `/healthz`              | liveness + readiness facts            |
//! | `GET`    | `/metrics`              | Prometheus text exposition            |
//! | `POST`   | `/shutdown`             | graceful drain and exit               |
//!
//! Degradation is explicit at this layer too: a full queue answers `429`
//! with `Retry-After`, too many concurrent connections answer `503`, silent
//! drops do not exist.
//!
//! [`JobSpec`]: crate::jobspec::JobSpec

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

use fidelity_obs::json::escape_into;
use fidelity_obs::{clock, event, metrics as obs_metrics, prom, timing_enabled};

use crate::http::{
    end_chunked, read_request, respond_json, respond_json_with, respond_with, start_chunked,
    write_chunk, ParseError, Request,
};
use crate::jobspec::JobSpec;
use crate::metrics::Route;
use crate::supervisor::{SubmitOutcome, Supervisor};

/// Concurrent connection cap; excess connections get an immediate 503.
const MAX_CONNS: usize = 32;
/// Per-connection socket timeout.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

#[derive(Debug)]
struct Shared {
    sup: Arc<Supervisor>,
    stop: AtomicBool,
    active: AtomicUsize,
}

/// A running daemon: the bound address plus the accept thread.
#[derive(Debug)]
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: std::thread::JoinHandle<()>,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The supervisor behind the listener.
    pub fn supervisor(&self) -> Arc<Supervisor> {
        Arc::clone(&self.shared.sup)
    }

    /// Requests a graceful shutdown without an HTTP round-trip (the
    /// `/shutdown` route does the same thing).
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }

    /// Blocks until the daemon has fully drained and exited.
    pub fn wait(self) {
        let _ = self.accept.join();
    }
}

/// Binds `addr` and starts serving `sup`.
///
/// # Errors
///
/// Fails on bind errors.
pub fn serve(sup: Arc<Supervisor>, addr: &str) -> Result<ServeHandle, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking: {e}"))?;
    let shared = Arc::new(Shared {
        sup,
        stop: AtomicBool::new(false),
        active: AtomicUsize::new(0),
    });
    let shared2 = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("serve-accept".to_owned())
        .spawn(move || accept_loop(&listener, &shared2))
        .map_err(|e| format!("accept spawn: {e}"))?;
    let bound_text = format!("{bound}");
    event!("serve.listen", addr = &bound_text);
    Ok(ServeHandle {
        addr: bound,
        shared,
        accept,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.active.load(Ordering::Acquire) >= MAX_CONNS {
                    let mut s = stream;
                    let _ = respond_json(
                        &mut s,
                        503,
                        "{\"error\":\"too many connections; retry shortly\"}",
                    );
                    continue;
                }
                shared.active.fetch_add(1, Ordering::AcqRel);
                let sh = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_owned())
                    .spawn(move || {
                        handle_conn(stream, &sh);
                        sh.active.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    shared.active.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Stop accepting, then drain: cancel running campaigns to their
    // checkpoints, keep queued jobs journaled, join the engine threads.
    shared.sup.shutdown_and_drain();
    // Let in-flight connection threads (e.g. event streams) observe the
    // stop flag and finish; bounded wait so a wedged client cannot hold
    // the process open.
    for _ in 0..200 {
        if shared.active.load(Ordering::Acquire) == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(ParseError::Closed) => return,
        Err(ParseError::Timeout) => {
            let _ = respond_json(&mut stream, 408, "{\"error\":\"request timed out\"}");
            return;
        }
        Err(ParseError::TooLarge(what)) => {
            let body = format!("{{\"error\":\"{what} too large\"}}");
            let _ = respond_json(&mut stream, 413, &body);
            return;
        }
        Err(ParseError::BadRequest(why)) => {
            let _ = respond_json(&mut stream, 400, &error_body(&why));
            return;
        }
    };
    route(&mut stream, &req, shared);
}

fn error_body(msg: &str) -> String {
    let mut s = String::from("{\"error\":");
    escape_into(&mut s, msg);
    s.push('}');
    s
}

/// Classifies a request for the per-route instruments.
fn classify(method: &str, segments: &[&str]) -> Route {
    match (method, segments) {
        (_, ["healthz"]) => Route::Healthz,
        (_, ["metrics"]) => Route::Metrics,
        ("POST", ["campaigns"]) => Route::Submit,
        ("GET", ["campaigns"]) => Route::List,
        ("GET", ["campaigns", _]) => Route::Status,
        ("GET", ["campaigns", _, "events"]) => Route::Events,
        ("GET", ["campaigns", _, "trace"]) => Route::Trace,
        ("DELETE", ["campaigns", _]) => Route::Cancel,
        (_, ["shutdown"]) => Route::Shutdown,
        _ => Route::Other,
    }
}

fn route(stream: &mut TcpStream, req: &Request, shared: &Arc<Shared>) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let which = classify(req.method.as_str(), &segments);
    let sw = clock::Stopwatch::start_if(timing_enabled());
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            // Liveness is the 200/503 split: a draining daemon still
            // answers (alive) but reports not-ready so balancers stop
            // routing new work at it.
            let status = if shared.sup.is_accepting() { 200 } else { 503 };
            let _ = respond_json(stream, status, &shared.sup.healthz_json());
        }
        ("GET", ["metrics"]) => {
            shared.sup.refresh_gauges();
            let body = prom::render(&obs_metrics::snapshot());
            let _ = respond_with(
                stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &[],
                body.as_bytes(),
            );
        }
        ("POST", ["campaigns"]) => handle_submit(stream, req, shared),
        ("GET", ["campaigns"]) => {
            let _ = respond_json(stream, 200, &shared.sup.list_json());
        }
        ("GET", ["campaigns", id]) => match shared.sup.status_json(id) {
            Some(body) => {
                let _ = respond_json(stream, 200, &body);
            }
            None => {
                let _ = respond_json(stream, 404, &error_body("no such campaign"));
            }
        },
        ("GET", ["campaigns", id, "events"]) => handle_events(stream, id, shared),
        ("GET", ["campaigns", id, "trace"]) => handle_trace(stream, id, shared),
        ("DELETE", ["campaigns", id]) => match shared.sup.cancel(id) {
            Some(state) => {
                let body = format!(
                    "{{\"id\":\"{id}\",\"state\":\"{}\",\"cancelling\":true}}",
                    state.as_str()
                );
                let _ = respond_json(stream, 202, &body);
            }
            None => {
                let _ = respond_json(stream, 404, &error_body("no such campaign"));
            }
        },
        ("POST", ["shutdown"]) => {
            let _ = respond_json(stream, 202, "{\"status\":\"draining\"}");
            shared.stop.store(true, Ordering::Release);
        }
        (_, ["healthz" | "metrics" | "shutdown"]) | (_, ["campaigns", ..]) => {
            let _ = respond_json(stream, 405, &error_body("method not allowed"));
        }
        _ => {
            let _ = respond_json(stream, 404, &error_body("no such route"));
        }
    }
    shared.sup.metrics().on_request(which, sw.elapsed_us());
}

/// Serves the job's raw trace file. Only ids with a registered job are
/// served — the path is derived from the job id, never from the URL text,
/// so this route cannot be used to read arbitrary files.
fn handle_trace(stream: &mut TcpStream, id: &str, shared: &Arc<Shared>) {
    if shared.sup.status_json(id).is_none() {
        let _ = respond_json(stream, 404, &error_body("no such campaign"));
        return;
    }
    match std::fs::read(shared.sup.trace_path_for(id)) {
        Ok(bytes) => {
            let _ = respond_with(stream, 200, "application/x-ndjson", &[], &bytes);
        }
        Err(_) => {
            let _ = respond_json(stream, 404, &error_body("no trace recorded for campaign"));
        }
    }
}

fn handle_submit(stream: &mut TcpStream, req: &Request, shared: &Arc<Shared>) {
    if !shared.sup.is_accepting() {
        let _ = respond_json(stream, 503, &error_body("shutting down"));
        return;
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        let _ = respond_json(stream, 400, &error_body("body must be UTF-8 JSON"));
        return;
    };
    let spec = match JobSpec::from_json_str(text) {
        Ok(spec) => spec,
        Err(why) => {
            let _ = respond_json(stream, 400, &error_body(&why));
            return;
        }
    };
    match shared.sup.submit(spec) {
        Ok((id, SubmitOutcome::Accepted)) => {
            let body = format!("{{\"id\":\"{id}\",\"state\":\"queued\"}}");
            let _ = respond_json(stream, 202, &body);
        }
        Ok((id, SubmitOutcome::AcceptedShedding { victim })) => {
            let body = format!("{{\"id\":\"{id}\",\"state\":\"queued\",\"shed\":\"{victim}\"}}");
            let _ = respond_json(stream, 202, &body);
        }
        Ok((id, SubmitOutcome::Attached { state })) => {
            let body = format!(
                "{{\"id\":\"{id}\",\"state\":\"{}\",\"attached\":true}}",
                state.as_str()
            );
            let _ = respond_json(stream, 200, &body);
        }
        Ok((id, SubmitOutcome::AlreadyDone)) => {
            let body = shared
                .sup
                .status_json(&id)
                .unwrap_or_else(|| format!("{{\"id\":\"{id}\",\"state\":\"done\"}}"));
            let _ = respond_json(stream, 200, &body);
        }
        Ok((id, SubmitOutcome::Busy { retry_after })) => {
            let secs = retry_after.as_secs().max(1).to_string();
            let body =
                format!("{{\"id\":\"{id}\",\"error\":\"queue full\",\"retry_after_secs\":{secs}}}");
            let _ = respond_json_with(stream, 429, &[("Retry-After", &secs)], &body);
        }
        Err(why) => {
            let _ = respond_json(stream, 503, &error_body(&why));
        }
    }
}

/// Streams progress snapshots as chunked NDJSON until the job reaches a
/// terminal state (the final line is the job's status document).
fn handle_events(stream: &mut TcpStream, id: &str, shared: &Arc<Shared>) {
    let Some((rx, latest, mut terminal)) = shared.sup.subscribe(id) else {
        let _ = respond_json(stream, 404, &error_body("no such campaign"));
        return;
    };
    if start_chunked(stream, 200).is_err() {
        return;
    }
    if let Some(snap) = latest {
        let mut line = snap.to_json();
        line.push('\n');
        if write_chunk(stream, &line).is_err() {
            return;
        }
    }
    while !terminal && !shared.stop.load(Ordering::Acquire) {
        match rx.recv_timeout(Duration::from_millis(250)) {
            Ok(snap) => {
                let finished = snap.finished;
                let mut line = snap.to_json();
                line.push('\n');
                if write_chunk(stream, &line).is_err() {
                    return;
                }
                if finished {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        terminal = shared.sup.is_terminal(id).unwrap_or(true);
    }
    if let Some(status) = shared.sup.status_json(id) {
        let mut line = status;
        line.push('\n');
        if write_chunk(stream, &line).is_err() {
            return;
        }
    }
    let _ = end_chunked(stream);
    let _ = stream.flush();
}
