//! Offline drop-in subset of the [proptest](https://docs.rs/proptest) API.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the slice of proptest this workspace actually uses: the
//! [`proptest!`] macro, `prop_assert*` macros, numeric-range / tuple /
//! mapped / filtered / one-of strategies, and `prop::collection::vec`.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. A failing case reports its generated inputs (via the
//! strategy's `Debug` output where available) and the case index; cases are
//! seeded deterministically from the test's module path and name, so every
//! failure is reproducible by re-running the same test binary.
//!
//! Set `PROPTEST_CASES` to override the number of cases globally.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size range for generated collections, from the `a..b` / `a..=b` /
    /// `n` forms upstream accepts.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end.saturating_sub(1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi_inclusive.saturating_sub(self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias so `prop::collection::vec(...)` resolves as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "{} ({:?} != {:?})", format!($($fmt)*), l, r);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: both sides are {:?}", l);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "{} (both {:?})", format!($($fmt)*), l);
    }};
}

/// Chooses uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strategy))+
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = $crate::test_runner::case_count(config.cases);
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
