//! Value-generation strategies.

use crate::test_runner::TestRng;

/// Generates values of one type. The shim's strategies sample independently
/// per case; there is no shrinking.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Rejects values failing the predicate (bounded resampling; panics when
    /// the predicate is satisfied too rarely, as upstream eventually does).
    fn prop_filter<F>(self, whence: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            predicate,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1024 consecutive samples",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    variants: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} variants)", self.variants.len())
    }
}

impl<T> Union<T> {
    /// An empty union; populate with [`Union::or`].
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union {
            variants: Vec::new(),
        }
    }

    /// Adds one alternative.
    #[must_use]
    pub fn or(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
        self.variants.push(Box::new(strategy));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.variants.is_empty(),
            "prop_oneof! needs an alternative"
        );
        let idx = rng.below(self.variants.len() as u64) as usize;
        self.variants[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn union_covers_all_variants() {
        let s = Union::new()
            .or(Just(1u8))
            .or(Just(2u8))
            .or((3u8..5).prop_map(|v| v));
        let mut rng = TestRng::for_test("union");
        let seen: std::collections::HashSet<u8> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(seen.contains(&1) && seen.contains(&2) && (seen.contains(&3) || seen.contains(&4)));
    }

    #[test]
    fn filter_rejects() {
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = TestRng::for_test("filter");
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
