//! Case configuration, failure reporting, and the deterministic RNG.

use std::fmt;

/// Per-test configuration (subset of upstream's).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Resolves the effective case count, honoring `PROPTEST_CASES`.
pub fn case_count(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
}

/// A failed property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 stream seeding every generated case.
///
/// Seeded from the test's fully-qualified name so each test explores its own
/// sequence, yet every run of the same binary replays identical cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
