//! Offline drop-in subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the slice this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, and `Bencher::iter`. Measurement is a simple
//! warmup-then-sample loop reporting mean and best wall-clock time per
//! iteration — adequate for the relative comparisons the benches make, with
//! none of upstream's statistical machinery.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&id.into(), self.sample_size, &mut f);
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
    }

    /// Ends the group (upstream flushes reports here; the shim only marks
    /// the boundary).
    pub fn finish(self) {
        eprintln!("group {} done", self.name);
    }
}

/// A parameterized benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Passed to the benched closure; call [`Bencher::iter`] with the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: u64,
}

impl Bencher {
    /// Times the routine. Runs a short warmup, then the configured number of
    /// samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup + per-sample iteration sizing: target ~10ms per sample,
        // clamped to [1, 1024] iterations.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed();
        let iters = if once.is_zero() {
            1024
        } else {
            (Duration::from_millis(10).as_nanos() / once.as_nanos().max(1)).clamp(1, 1024) as u64
        };
        self.per_sample_iters = iters;
        let n = self.samples.capacity().max(1);
        for _ in 0..n {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        per_sample_iters: 0,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("  {label}: no samples (routine never called iter)");
        return;
    }
    let best = bencher.samples.iter().min().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    eprintln!(
        "  {label}: mean {mean:?}, best {best:?} ({} samples x {} iters)",
        bencher.samples.len(),
        bencher.per_sample_iters
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the bench-harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test` may invoke harness-less bench targets with libtest
            // flags; only measure under `cargo bench` (or a bare invocation).
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}
