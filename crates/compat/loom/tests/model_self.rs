//! Self-tests for the vendored model checker: it must find known bugs
//! (lost updates, deadlocks), certify known-good protocols, and explore
//! the analytically expected number of interleavings on tiny cases.

use loom::model::{sync, thread};
use loom::Builder;

/// A non-atomic read-modify-write through two lock sections loses updates;
/// the exhaustive DFS must find the interleaving that exposes it.
#[test]
fn finds_lost_update() {
    let report = Builder::default().explore(|| {
        let n = sync::Arc::new(sync::Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n = sync::Arc::clone(&n);
            handles.push(thread::spawn(move || {
                // Read under one lock, write under another: racy by design.
                let v = *n.lock().unwrap();
                let mut g = n.lock().unwrap();
                *g = v + 1;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2, "lost update");
    });
    let failure = report.failure.expect("DFS must expose the lost update");
    assert!(
        failure.contains("lost update"),
        "unexpected failure: {failure}"
    );
}

/// The same counter incremented entirely under one lock section never
/// loses updates, in any interleaving.
#[test]
fn mutex_increments_are_exclusive() {
    let report = Builder::default().check(|| {
        let n = sync::Arc::new(sync::Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let n = sync::Arc::clone(&n);
            handles.push(thread::spawn(move || {
                *n.lock().unwrap() += 1;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 3);
    });
    assert!(report.complete, "3-thread mutex case should be exhaustible");
    assert!(report.executions > 1, "must explore more than one schedule");
}

/// Classic AB-BA lock-order inversion: the model must report a deadlock
/// rather than hang.
#[test]
fn detects_ab_ba_deadlock() {
    let report = Builder::default().explore(|| {
        let a = sync::Arc::new(sync::Mutex::new(()));
        let b = sync::Arc::new(sync::Mutex::new(()));
        let (a2, b2) = (sync::Arc::clone(&a), sync::Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let failure = report
        .failure
        .expect("AB-BA must deadlock in some schedule");
    assert!(
        failure.contains("deadlock"),
        "unexpected failure: {failure}"
    );
}

/// Atomic ops are scheduling points: two racing `fetch_add`s still sum
/// correctly (atomicity is preserved even though interleaved).
#[test]
fn atomics_are_atomic_across_schedules() {
    let report = Builder::default().check(|| {
        let n = sync::Arc::new(sync::atomic::AtomicUsize::new(0));
        let n2 = sync::Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, sync::atomic::Ordering::Relaxed);
        });
        n.fetch_add(1, sync::atomic::Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(sync::atomic::Ordering::Relaxed), 2);
    });
    assert!(report.complete);
}

/// A racy flag protocol (non-atomic check-then-set through separate lock
/// sections) where both threads can observe "unset" — DFS must find it.
#[test]
fn finds_check_then_act_race() {
    let report = Builder::default().explore(|| {
        let winners = sync::Arc::new(sync::atomic::AtomicUsize::new(0));
        let flag = sync::Arc::new(sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let winners = sync::Arc::clone(&winners);
            let flag = sync::Arc::clone(&flag);
            handles.push(thread::spawn(move || {
                // load-then-store instead of swap/CAS: two winners possible.
                if !flag.load(sync::atomic::Ordering::SeqCst) {
                    flag.store(true, sync::atomic::Ordering::SeqCst);
                    winners.fetch_add(1, sync::atomic::Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            winners.load(sync::atomic::Ordering::SeqCst),
            1,
            "double winner"
        );
    });
    let failure = report.failure.expect("check-then-act race must be found");
    assert!(
        failure.contains("double winner"),
        "unexpected failure: {failure}"
    );
}

/// Condvar handoff: consumer waits until the producer pushes; no deadlock,
/// value always observed.
#[test]
fn condvar_handoff_completes() {
    let report = Builder::default().check(|| {
        let slot = sync::Arc::new((sync::Mutex::new(None::<u32>), sync::Condvar::new()));
        let s2 = sync::Arc::clone(&slot);
        let consumer = thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock().unwrap();
            while g.is_none() {
                g = cv.wait(g).unwrap();
            }
            g.take().unwrap()
        });
        {
            let (m, cv) = &*slot;
            *m.lock().unwrap() = Some(7);
            cv.notify_one();
        }
        assert_eq!(consumer.join().unwrap(), 7);
    });
    assert!(report.complete);
    assert!(report.failure.is_none());
}

/// Two independent two-step threads: the DFS must explore multiple
/// distinct schedules and terminate as complete.
#[test]
fn exhaustive_enumeration_terminates() {
    let report = Builder::default().check(|| {
        let a = sync::Arc::new(sync::atomic::AtomicUsize::new(0));
        let a2 = sync::Arc::clone(&a);
        let t = thread::spawn(move || {
            a2.fetch_add(1, sync::atomic::Ordering::SeqCst);
            a2.fetch_add(1, sync::atomic::Ordering::SeqCst);
        });
        a.fetch_add(1, sync::atomic::Ordering::SeqCst);
        t.join().unwrap();
        assert!(a.load(sync::atomic::Ordering::SeqCst) == 3);
    });
    assert!(report.complete);
    // Root interleaves one op against the child's two: at least 3 schedules.
    assert!(
        report.executions >= 3,
        "expected >= 3 interleavings, got {}",
        report.executions
    );
}

/// Random-walk mode runs the requested number of seeded walks and stays
/// deterministic for a fixed seed.
#[test]
fn random_walk_is_seeded_and_bounded() {
    let run = || {
        Builder {
            max_steps: 1_000,
            max_executions: 25,
            seed: Some(42),
            preemption_bound: None,
        }
        .explore(|| {
            let n = sync::Arc::new(sync::Mutex::new(0u32));
            let n2 = sync::Arc::clone(&n);
            let t = thread::spawn(move || {
                *n2.lock().unwrap() += 1;
            });
            *n.lock().unwrap() += 1;
            t.join().unwrap();
            assert_eq!(*n.lock().unwrap(), 2);
        })
    };
    let (r1, r2) = (run(), run());
    assert_eq!(r1.executions, 25);
    assert!(!r1.complete, "random walks never certify completeness");
    assert!(r1.failure.is_none());
    assert_eq!(r1.executions, r2.executions);
    assert_eq!(r1.truncated, r2.truncated);
}

/// The step bound cuts executions short as `truncated`, never as failures.
#[test]
fn step_bound_truncates_without_failing() {
    let report = Builder {
        max_steps: 5,
        max_executions: 50,
        seed: None,
        preemption_bound: None,
    }
    .explore(|| {
        let n = sync::Arc::new(sync::atomic::AtomicUsize::new(0));
        let n2 = sync::Arc::clone(&n);
        let t = thread::spawn(move || {
            for _ in 0..10 {
                n2.fetch_add(1, sync::atomic::Ordering::SeqCst);
            }
        });
        for _ in 0..10 {
            n.fetch_add(1, sync::atomic::Ordering::SeqCst);
        }
        t.join().unwrap();
    });
    assert!(report.truncated > 0, "5-step bound must truncate");
    assert!(report.failure.is_none(), "truncation is not a failure");
}

/// A 2-preemption bound still finds the classic lost-update race (it needs
/// exactly one preemption), while shrinking the searched space.
#[test]
fn preemption_bound_still_finds_lost_update() {
    let body = || {
        let n = sync::Arc::new(sync::atomic::AtomicUsize::new(0));
        let n2 = sync::Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(sync::atomic::Ordering::SeqCst);
            n2.store(v + 1, sync::atomic::Ordering::SeqCst);
        });
        let v = n.load(sync::atomic::Ordering::SeqCst);
        n.store(v + 1, sync::atomic::Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(sync::atomic::Ordering::SeqCst), 2, "lost update");
    };
    let bounded = Builder {
        preemption_bound: Some(2),
        ..Builder::default()
    }
    .explore(body);
    assert!(
        bounded.failure.is_some(),
        "bound 2 must still reach the racy schedule"
    );
}

/// The bounded DFS explores a strict subset of the unbounded space and
/// still certifies completeness (within the bound).
#[test]
fn preemption_bound_shrinks_the_space() {
    let body = || {
        let n = sync::Arc::new(sync::atomic::AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let n = sync::Arc::clone(&n);
                thread::spawn(move || {
                    for _ in 0..3 {
                        n.fetch_add(1, sync::atomic::Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(n.load(sync::atomic::Ordering::SeqCst), 6);
    };
    let unbounded = Builder::default().explore(body);
    let bounded = Builder {
        preemption_bound: Some(1),
        ..Builder::default()
    }
    .explore(body);
    assert!(unbounded.complete && bounded.complete);
    assert!(bounded.failure.is_none());
    assert!(
        bounded.executions < unbounded.executions,
        "bound 1 must prune schedules: {} vs {}",
        bounded.executions,
        unbounded.executions
    );
}
