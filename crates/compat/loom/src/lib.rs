//! Offline loom-style deterministic interleaving model checker.
//!
//! Vendored shim: no external dependencies, no unsafe. Provides drop-in
//! `sync`/`thread` facades that select the real `std` types unless built
//! with `RUSTFLAGS=--cfg loom_model`, plus an always-available
//! [`model`] namespace for tests that opt in via a cargo feature instead
//! of a global cfg flag.
//!
//! The checker runs a closure repeatedly, once per explored interleaving.
//! Model threads are real OS threads serialized by a turnstile scheduler
//! ([`rt`]): exactly one runs between scheduling points (every mutex,
//! condvar, atomic, spawn/join op), so every execution is a total order —
//! the model explores **sequential consistency**. Decision points (moments
//! with more than one runnable thread) identify an interleaving; the
//! driver enumerates them by depth-first backtracking, or samples them by
//! a seeded random walk for state spaces too big to exhaust.
//!
//! What is checked: assertion failures, real panics, and deadlocks in any
//! explored interleaving, with the decision trace reported on failure.
//! What is *not* checked: weak memory orderings (`Relaxed` vs `Acquire`
//! behave identically here — that discipline is checked statically by
//! `fidelity concheck`).
//!
//! ```
//! let report = loom::Builder::default().explore(|| {
//!     use loom::model::{sync, thread};
//!     let n = sync::Arc::new(sync::Mutex::new(0u32));
//!     let n2 = sync::Arc::clone(&n);
//!     let t = thread::spawn(move || {
//!         *n2.lock().unwrap() += 1;
//!     });
//!     *n.lock().unwrap() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*n.lock().unwrap(), 2);
//! });
//! assert!(report.complete && report.failure.is_none());
//! ```

mod rt;
mod sync_model;
mod thread_model;

use std::sync::{Arc, PoisonError};

use rt::{Mode, ModelAbort, Rt};

/// Always-available model types, independent of the `--cfg loom_model`
/// facade switch. Protocol tests gated behind a cargo feature use these.
pub mod model {
    /// Model `std::sync` subset (`Mutex`, `Condvar`, atomics).
    pub mod sync {
        pub use crate::sync_model::atomic;
        pub use crate::sync_model::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
        pub use std::sync::Arc;
    }
    /// Model `std::thread` subset (`spawn`, `JoinHandle`, `yield_now`).
    pub mod thread {
        pub use crate::thread_model::{spawn, yield_now, JoinHandle};
    }
}

/// Drop-in `std::sync` facade: real types unless built with
/// `--cfg loom_model`.
#[cfg(not(loom_model))]
pub mod sync {
    pub use std::sync::atomic;
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, WaitTimeoutResult};
}

/// Drop-in `std::sync` facade (model types; built with `--cfg loom_model`).
#[cfg(loom_model)]
pub mod sync {
    pub use crate::sync_model::atomic;
    pub use crate::sync_model::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    pub use std::sync::Arc;
}

/// Drop-in `std::thread` facade: real types unless built with
/// `--cfg loom_model`.
#[cfg(not(loom_model))]
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Drop-in `std::thread` facade (model types; built with `--cfg loom_model`).
#[cfg(loom_model)]
pub mod thread {
    pub use crate::thread_model::{spawn, yield_now, JoinHandle};
}

/// Drop-in `std::hint` facade; a spin-loop hint is a scheduling point
/// inside a model.
pub mod hint {
    /// Spin-loop hint: yields to the model scheduler when inside one.
    pub fn spin_loop() {
        if let Some((rt, tid)) = crate::rt_current() {
            rt.yield_point(tid);
        } else {
            std::hint::spin_loop();
        }
    }
}

pub(crate) use rt::current as rt_current;

/// Outcome of [`Builder::explore`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Interleavings (executions) actually run.
    pub executions: usize,
    /// How many of them hit the per-execution step bound and were cut short.
    pub truncated: usize,
    /// Whether the DFS exhausted the interleaving space (always `false` in
    /// random-walk mode and when `max_executions` stopped the search).
    pub complete: bool,
    /// First failure observed (assertion/panic/deadlock), with its decision
    /// trace; exploration stops at the first failure.
    pub failure: Option<String>,
}

/// Exploration budget and strategy for one model-checking run.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Per-execution scheduling-point bound; executions exceeding it are
    /// counted as `truncated`, not failures.
    pub max_steps: usize,
    /// DFS: stop after this many interleavings even if incomplete.
    /// Random-walk: exactly this many walks.
    pub max_executions: usize,
    /// `Some(seed)` switches from exhaustive DFS to a seeded random walk.
    pub seed: Option<u64>,
    /// CHESS-style preemption bound: schedules may contain at most this
    /// many context switches at points where the running thread was still
    /// runnable (switches at blocking points stay free). `None` explores
    /// the full space. With a bound, a `complete` report means the DFS
    /// exhausted every schedule *within the bound* — empirically, almost
    /// all concurrency bugs manifest within two preemptions, at a state
    /// space orders of magnitude smaller.
    pub preemption_bound: Option<usize>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_steps: 20_000,
            max_executions: 100_000,
            seed: None,
            preemption_bound: None,
        }
    }
}

/// Runs `f` as one model execution replaying `prefix`; returns the decision
/// trace, whether it was truncated, and any failure.
fn run_once(
    f: &Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<usize>,
    max_steps: usize,
    mode: Mode,
    seed: u64,
    preemption_bound: Option<usize>,
) -> (Vec<usize>, Vec<usize>, bool, Option<String>) {
    let rt = Rt::new(prefix, max_steps, mode, seed, preemption_bound);
    let tid = rt.register_thread();
    let trt = Arc::clone(&rt);
    let body = Arc::clone(f);
    let root = std::thread::Builder::new()
        .name("loom-model-root".to_string())
        .spawn(move || {
            rt::set_current(Some((Arc::clone(&trt), tid)));
            trt.wait_first_schedule(tid);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body()));
            let failure = match outcome {
                Ok(()) => None,
                Err(payload) => {
                    if payload.downcast_ref::<ModelAbort>().is_some() {
                        None
                    } else if let Some(s) = payload.downcast_ref::<&str>() {
                        Some((*s).to_string())
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        Some(s.clone())
                    } else {
                        Some("model root panicked (non-string payload)".to_string())
                    }
                }
            };
            trt.thread_finished(tid, failure);
            rt::set_current(None);
        })
        .expect("spawn model root thread");
    rt.start();
    rt.wait_execution_done();
    let _ = root.join();
    loop {
        let handles: Vec<_> = {
            let mut h = rt.os_handles.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *h)
        };
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    let (choices, truncated, failure) = rt.take_outcome();
    let ranks = choices.iter().map(|c| c.rank).collect();
    let alts = choices.iter().map(|c| c.alternatives).collect();
    (ranks, alts, truncated, failure)
}

/// Increments a decision trace to the next DFS prefix, or `None` when the
/// space is exhausted: bump the deepest decision that still has an
/// untried alternative, discarding everything below it.
fn next_prefix(mut ranks: Vec<usize>, alts: &[usize]) -> Option<Vec<usize>> {
    while let Some(last) = ranks.last().copied() {
        let depth = ranks.len() - 1;
        if last + 1 < alts[depth] {
            ranks[depth] = last + 1;
            return Some(ranks);
        }
        ranks.pop();
    }
    None
}

impl Builder {
    /// Explores interleavings of `f` and returns the [`Report`] without
    /// panicking; use this for coverage stats and negative tests.
    pub fn explore<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut report = Report {
            executions: 0,
            truncated: 0,
            complete: false,
            failure: None,
        };
        match self.seed {
            Some(seed) => {
                for i in 0..self.max_executions {
                    report.executions += 1;
                    let walk_seed = seed
                        .wrapping_add(i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let (ranks, _alts, truncated, failure) = run_once(
                        &f,
                        Vec::new(),
                        self.max_steps,
                        Mode::Random,
                        walk_seed,
                        self.preemption_bound,
                    );
                    if truncated {
                        report.truncated += 1;
                    }
                    if let Some(msg) = failure {
                        report.failure = Some(format!(
                            "{msg}\n  decision trace (seed {walk_seed}): {ranks:?}"
                        ));
                        return report;
                    }
                }
            }
            None => {
                let mut prefix = Vec::new();
                loop {
                    report.executions += 1;
                    let (ranks, alts, truncated, failure) = run_once(
                        &f,
                        prefix,
                        self.max_steps,
                        Mode::Dfs,
                        0,
                        self.preemption_bound,
                    );
                    if truncated {
                        report.truncated += 1;
                    }
                    if let Some(msg) = failure {
                        report.failure = Some(format!("{msg}\n  decision trace: {ranks:?}"));
                        return report;
                    }
                    match next_prefix(ranks, &alts) {
                        Some(p) if report.executions < self.max_executions => prefix = p,
                        Some(_) => break,
                        None => {
                            report.complete = true;
                            break;
                        }
                    }
                }
            }
        }
        report
    }

    /// Explores interleavings of `f`, panicking with the decision trace on
    /// the first failing one — the `#[test]`-facing entry point.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let report = self.explore(f);
        if let Some(msg) = &report.failure {
            panic!(
                "loom model failed after {} interleaving(s): {msg}",
                report.executions
            );
        }
        report
    }
}

/// Exhaustively model-checks `f` with default bounds (loom's classic entry
/// point); panics on the first failing interleaving.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}
