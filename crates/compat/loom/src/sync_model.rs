//! Model `Mutex`, `Condvar`, and atomics: drop-in shapes of the `std::sync`
//! types whose every operation is a scheduling point of the
//! [`crate::rt`] turnstile.
//!
//! Data lives in an inner `std::sync::Mutex` that is never contended (only
//! the scheduled thread touches it after winning the *model* lock), so the
//! whole shim stays safe Rust. Memory orderings are accepted and recorded
//! nowhere: the model explores interleavings under sequential consistency.
//!
//! Model objects must be created *inside* the closure passed to
//! [`crate::model`] (the usual loom discipline): lock/condvar ids are
//! registered lazily against the execution's runtime on first use.

use std::sync::{Arc, LockResult, Mutex as StdMutex, OnceLock, PoisonError};

use crate::rt::{self, Rt};

/// Lazily registers a per-execution resource id with the current runtime.
fn resource_id(slot: &OnceLock<usize>, register: impl Fn(&Rt) -> usize, what: &str) -> usize {
    *slot.get_or_init(|| {
        let (rt, _) = rt::current_expect(what);
        register(&rt)
    })
}

/// A model mutex. API-compatible with `std::sync::Mutex` for the subset the
/// workspace uses (`new`, `lock`, `into_inner`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    data: StdMutex<T>,
    id: OnceLock<usize>,
}

/// Guard for a held model [`Mutex`]; releasing it (drop) re-enables waiters.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    rt: Arc<Rt>,
    lock_id: usize,
    /// Set when a condvar takes over the release protocol; `Drop` then
    /// releases nothing.
    defused: bool,
}

impl<T> Mutex<T> {
    /// A new model mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            data: StdMutex::new(value),
            id: OnceLock::new(),
        }
    }

    fn lock_id(&self) -> usize {
        resource_id(&self.id, Rt::register_lock, "Mutex")
    }

    /// Acquires the lock, parking (and re-offering the scheduler baton)
    /// while another model thread holds it. Never actually poisoned: the
    /// `LockResult` shape exists so call sites keep their
    /// `unwrap_or_else(PoisonError::into_inner)` recovery idiom.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (rt, tid) = rt::current_expect("Mutex");
        let lock_id = self.lock_id();
        rt.lock_acquire(tid, lock_id);
        Ok(self.guard(rt, lock_id))
    }

    /// Builds a guard for a model lock the runtime already granted.
    fn guard(&self, rt: Arc<Rt>, lock_id: usize) -> MutexGuard<'_, T> {
        let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            mutex: self,
            inner: Some(inner),
            rt,
            lock_id,
            defused: false,
        }
    }

    /// Consumes the mutex, returning the data. Usable outside the model.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self
            .data
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data guard before the model lock so the next owner
        // can never contend on the inner std mutex.
        self.inner = None;
        if !self.defused {
            self.rt.lock_release(self.lock_id);
        }
    }
}

/// A model condvar (`wait`, `wait_timeout`, `notify_one`, `notify_all`).
#[derive(Debug, Default)]
pub struct Condvar {
    id: OnceLock<usize>,
}

/// Timeout result shape mirroring `std::sync::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait timed out (always true in the model; see
    /// [`Condvar::wait_timeout`]).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// A new model condvar.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Releases the guard's mutex, parks until notified, re-acquires.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (rt, tid) = rt::current_expect("Condvar");
        let cv = resource_id(&self.id, Rt::register_condvar, "Condvar");
        let mutex = guard.mutex;
        let lock_id = guard.lock_id;
        guard.inner = None;
        guard.defused = true; // condvar_wait owns the release below
        drop(guard);
        rt.condvar_wait(tid, cv, lock_id); // releases, parks, re-acquires
        Ok(mutex.guard(rt, lock_id))
    }

    /// Modeled as a *spurious timeout*: release, one scheduling point,
    /// re-acquire, report timed-out. Spurious wakeups are legal condvar
    /// behavior, so every execution explored is a real one; schedules where
    /// the waiter stays parked until a notify are under-explored (use
    /// [`Condvar::wait`] in protocol models that need them).
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        _dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (rt, tid) = rt::current_expect("Condvar");
        let mutex = guard.mutex;
        let lock_id = guard.lock_id;
        guard.inner = None;
        guard.defused = true;
        drop(guard);
        rt.lock_release(lock_id);
        rt.yield_point(tid);
        rt.lock_acquire(tid, lock_id);
        Ok((mutex.guard(rt, lock_id), WaitTimeoutResult(true)))
    }

    /// Wakes one waiter (FIFO).
    pub fn notify_one(&self) {
        let (rt, tid) = rt::current_expect("Condvar");
        let cv = resource_id(&self.id, Rt::register_condvar, "Condvar");
        rt.condvar_notify(tid, cv, 1);
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        let (rt, tid) = rt::current_expect("Condvar");
        let cv = resource_id(&self.id, Rt::register_condvar, "Condvar");
        rt.condvar_notify(tid, cv, usize::MAX);
    }
}

/// Model atomics: every operation is a scheduling point; orderings are
/// accepted for drop-in compatibility and explored as sequentially
/// consistent.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt;

    macro_rules! model_atomic {
        ($name:ident, $ty:ty) => {
            /// Model counterpart of the std atomic of the same name.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$name,
            }

            impl $name {
                /// A new atomic holding `v`.
                pub const fn new(v: $ty) -> Self {
                    $name {
                        inner: std::sync::atomic::$name::new(v),
                    }
                }

                fn point() {
                    if let Some((rt, tid)) = rt::current() {
                        rt.yield_point(tid);
                    }
                }

                /// Atomic load (scheduling point).
                pub fn load(&self, _o: Ordering) -> $ty {
                    Self::point();
                    self.inner.load(std::sync::atomic::Ordering::SeqCst)
                }

                /// Atomic store (scheduling point).
                pub fn store(&self, v: $ty, _o: Ordering) {
                    Self::point();
                    self.inner.store(v, std::sync::atomic::Ordering::SeqCst);
                }

                /// Atomic swap (scheduling point).
                pub fn swap(&self, v: $ty, _o: Ordering) -> $ty {
                    Self::point();
                    self.inner.swap(v, std::sync::atomic::Ordering::SeqCst)
                }

                /// Atomic compare-exchange (scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _ok: Ordering,
                    _err: Ordering,
                ) -> Result<$ty, $ty> {
                    Self::point();
                    self.inner.compare_exchange(
                        current,
                        new,
                        std::sync::atomic::Ordering::SeqCst,
                        std::sync::atomic::Ordering::SeqCst,
                    )
                }
            }
        };
    }

    macro_rules! model_atomic_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Atomic add, returning the previous value (scheduling
                /// point).
                pub fn fetch_add(&self, v: $ty, _o: Ordering) -> $ty {
                    Self::point();
                    self.inner.fetch_add(v, std::sync::atomic::Ordering::SeqCst)
                }

                /// Atomic subtract, returning the previous value
                /// (scheduling point).
                pub fn fetch_sub(&self, v: $ty, _o: Ordering) -> $ty {
                    Self::point();
                    self.inner.fetch_sub(v, std::sync::atomic::Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicBool, bool);
    model_atomic!(AtomicUsize, usize);
    model_atomic!(AtomicU64, u64);
    model_atomic!(AtomicU32, u32);
    model_atomic!(AtomicI64, i64);
    model_atomic_arith!(AtomicUsize, usize);
    model_atomic_arith!(AtomicU64, u64);
    model_atomic_arith!(AtomicU32, u32);
    model_atomic_arith!(AtomicI64, i64);

    impl AtomicBool {
        /// Atomic OR, returning the previous value (scheduling point).
        pub fn fetch_or(&self, v: bool, _o: Ordering) -> bool {
            Self::point();
            self.inner.fetch_or(v, std::sync::atomic::Ordering::SeqCst)
        }
    }
}
