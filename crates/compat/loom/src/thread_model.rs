//! Model `thread::spawn` / `JoinHandle` / `yield_now`.
//!
//! Each model thread is a real OS thread registered with the execution's
//! [`crate::rt::Rt`]; it parks immediately and only runs when the turnstile
//! hands it the baton. Panics in the body are caught: a [`crate::rt`]
//! `ModelAbort` (execution cut short) unwinds silently, anything else is
//! reported as the execution's failure.

use std::sync::{Arc, Mutex as StdMutex, PoisonError};

use crate::rt::{self, ModelAbort};

/// Handle to a spawned model thread; `join` parks until it finishes.
pub struct JoinHandle<T> {
    target: usize,
    result: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Waits (model-blocking) for the thread and returns its result.
    /// `Err` means the thread's body panicked.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        let (rt, tid) = rt::current_expect("JoinHandle::join");
        rt.join_wait(tid, self.target);
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .ok_or_else(|| Box::new("model thread panicked") as Box<dyn std::any::Any + Send>)
    }
}

/// Extracts a displayable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Spawns a model thread running `f` under the current execution's
/// scheduler. Must be called from inside `loom::model`.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (rt, _) = rt::current_expect("thread::spawn");
    let tid = rt.register_thread();
    let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let trt = Arc::clone(&rt);
    let os = std::thread::Builder::new()
        .name(format!("loom-model-{tid}"))
        .spawn(move || {
            rt::set_current(Some((Arc::clone(&trt), tid)));
            trt.wait_first_schedule(tid);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let failure = match outcome {
                Ok(v) => {
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                    None
                }
                Err(payload) => {
                    if payload.downcast_ref::<ModelAbort>().is_some() {
                        None // execution cut short elsewhere; not a failure
                    } else {
                        Some(panic_message(payload.as_ref()))
                    }
                }
            };
            trt.thread_finished(tid, failure);
            rt::set_current(None);
        })
        .expect("spawn model OS thread");
    rt.os_handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(os);
    JoinHandle {
        target: tid,
        result,
    }
}

/// A bare scheduling point ("let someone else run").
pub fn yield_now() {
    let (rt, tid) = rt::current_expect("thread::yield_now");
    rt.yield_point(tid);
}
