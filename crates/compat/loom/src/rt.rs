//! The scheduler runtime: one turnstile that serializes model threads and
//! enumerates their interleavings.
//!
//! Every model thread is a real OS thread, but only the thread named by
//! `State::current` may run; everyone else parks on the runtime condvar.
//! Each shared-memory operation (mutex acquire/release, atomic op, condvar
//! wait/notify, spawn/join) passes through a *scheduling point* that hands
//! the baton back to the scheduler, which picks the next thread to run.
//! When more than one thread is runnable the pick is a *decision point*;
//! the sequence of decisions identifies the interleaving, and the driver
//! ([`crate::Builder`]) enumerates decision sequences by depth-first
//! backtracking (or by a seeded random walk).
//!
//! Because exactly one thread runs between scheduling points and the baton
//! hand-off goes through a mutex, every operation is globally ordered: the
//! model explores interleavings under **sequential consistency**. Memory
//! orderings are accepted for API compatibility but not weakened — a
//! `Relaxed`-vs-`Acquire` distinction is *not* modeled (that discipline is
//! checked statically by `fidelity concheck` instead).

use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

/// Hard ceiling on model threads per execution; models are meant to be tiny.
pub const MAX_THREADS: usize = 8;

/// Why a model thread is parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// Waiting to acquire model lock `.0`.
    Lock(usize),
    /// Waiting for thread `.0` to finish.
    Join(usize),
    /// Waiting on model condvar `.0`.
    Condvar(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Runnable (or currently running, when `current` names it).
    Ready,
    /// Parked until the wait condition promotes it back to `Ready`.
    Blocked(Wait),
    /// Exited (normally or by unwinding).
    Finished,
}

/// Payload used to unwind model threads when an execution is cut short
/// (failure elsewhere, deadlock, or the step bound). The thread wrapper
/// recognizes it and does not report it as a test failure.
pub(crate) struct ModelAbort;

/// One decision point: which runnable thread (by rank in the enabled list)
/// was chosen, out of how many.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    pub rank: usize,
    pub alternatives: usize,
}

/// How decision points are resolved past the replay prefix.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Mode {
    /// Always take rank 0; the driver backtracks through the alternatives.
    Dfs,
    /// Seeded xorshift pick (seed lives in `State::rng`); the driver runs
    /// a fixed number of walks.
    Random,
}

#[derive(Debug)]
pub(crate) struct State {
    statuses: Vec<Status>,
    /// The one thread allowed to run; `None` while the baton is in flight.
    current: Option<usize>,
    /// Model mutexes: the holder's tid, if held.
    lock_holders: Vec<Option<usize>>,
    /// Model condvars: FIFO of waiting tids.
    condvar_queues: Vec<Vec<usize>>,
    /// Decisions made this execution (alternatives > 1 only).
    pub choices: Vec<Choice>,
    /// Replayed ranks for the first `prefix.len()` decision points.
    prefix: Vec<usize>,
    depth: usize,
    steps: usize,
    max_steps: usize,
    mode: Mode,
    rng: u64,
    /// Context switches taken at points where the running thread could have
    /// continued (voluntary yields it lost). `None` bound = unlimited.
    preemptions: usize,
    preemption_bound: Option<usize>,
    live: usize,
    pub aborted: bool,
    pub truncated: bool,
    pub failure: Option<String>,
}

/// The per-execution runtime shared by every model thread.
#[derive(Debug)]
pub struct Rt {
    state: StdMutex<State>,
    cv: StdCondvar,
    /// OS handles for every spawned model thread, joined by the driver.
    pub(crate) os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl Rt {
    pub(crate) fn new(
        prefix: Vec<usize>,
        max_steps: usize,
        mode: Mode,
        seed: u64,
        preemption_bound: Option<usize>,
    ) -> Arc<Rt> {
        Arc::new(Rt {
            state: StdMutex::new(State {
                statuses: Vec::new(),
                current: None,
                lock_holders: Vec::new(),
                condvar_queues: Vec::new(),
                choices: Vec::new(),
                prefix,
                depth: 0,
                steps: 0,
                max_steps,
                mode,
                rng: seed,
                preemptions: 0,
                preemption_bound,
                live: 0,
                aborted: false,
                truncated: false,
                failure: None,
            }),
            cv: StdCondvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        })
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a new model thread; returns its tid.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        let tid = st.statuses.len();
        assert!(
            tid < MAX_THREADS,
            "model spawned more than {MAX_THREADS} threads; shrink the protocol model"
        );
        st.statuses.push(Status::Ready);
        st.live += 1;
        tid
    }

    /// Registers a model mutex; returns its lock id.
    pub(crate) fn register_lock(&self) -> usize {
        let mut st = self.lock_state();
        st.lock_holders.push(None);
        st.lock_holders.len() - 1
    }

    /// Registers a model condvar; returns its id.
    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.lock_state();
        st.condvar_queues.push(Vec::new());
        st.condvar_queues.len() - 1
    }

    /// Picks the next thread to run among the runnable ones and publishes it
    /// as `current`. No runnable thread means either a finished execution
    /// (nothing live) or a deadlock (everything live is blocked).
    ///
    /// `last` names the thread that just yielded *while still runnable*
    /// (a voluntary scheduling point); `None` when the previous thread
    /// blocked or finished, making the switch forced. Under a preemption
    /// bound, once the budget is spent a runnable `last` keeps the baton —
    /// the CHESS-style bounding that keeps exhaustive DFS tractable:
    /// forced switches stay free, so the bounded space still contains
    /// every schedule with at most `preemption_bound` preemptions.
    fn schedule(&self, st: &mut State, last: Option<usize>) {
        if st.aborted {
            self.cv.notify_all();
            return;
        }
        if let (Some(bound), Some(l)) = (st.preemption_bound, last) {
            if st.preemptions >= bound && st.statuses[l] == Status::Ready {
                st.current = Some(l);
                self.cv.notify_all();
                return;
            }
        }
        let enabled: Vec<usize> = st
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.live > 0 {
                let waits: Vec<String> = st
                    .statuses
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        Status::Blocked(w) => Some(format!("thread {i} blocked on {w:?}")),
                        _ => None,
                    })
                    .collect();
                st.failure = Some(format!("deadlock: {}", waits.join(", ")));
                st.aborted = true;
            }
            st.current = None;
            self.cv.notify_all();
            return;
        }
        let rank = if enabled.len() == 1 {
            0
        } else {
            let rank = if st.depth < st.prefix.len() {
                st.prefix[st.depth].min(enabled.len() - 1)
            } else {
                match st.mode {
                    Mode::Dfs => 0,
                    Mode::Random => (xorshift(&mut st.rng) % enabled.len() as u64) as usize,
                }
            };
            st.choices.push(Choice {
                rank,
                alternatives: enabled.len(),
            });
            st.depth += 1;
            rank
        };
        let chosen = enabled[rank];
        if let Some(l) = last {
            if chosen != l && st.statuses[l] == Status::Ready {
                st.preemptions += 1;
            }
        }
        st.current = Some(chosen);
        self.cv.notify_all();
    }

    /// Parks the calling thread until the scheduler hands it the baton.
    /// Unwinds with [`ModelAbort`] when the execution was cut short.
    fn wait_scheduled<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, State>,
        tid: usize,
    ) -> std::sync::MutexGuard<'a, State> {
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.current == Some(tid) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Counts one step against the execution bound; trips truncation when
    /// the bound is exceeded (cut short, counted separately from failures).
    fn count_step(&self, st: &mut State) {
        st.steps += 1;
        if st.steps > st.max_steps {
            st.truncated = true;
            st.aborted = true;
            self.cv.notify_all();
        }
    }

    /// The scheduling point: offer the baton to every runnable thread
    /// (including the caller) and park until re-chosen.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut st = self.lock_state();
        if st.aborted {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        self.count_step(&mut st);
        st.statuses[tid] = Status::Ready;
        st.current = None;
        self.schedule(&mut st, Some(tid));
        let st = self.wait_scheduled(st, tid);
        drop(st);
    }

    /// First wait of a freshly spawned thread (no step charged).
    pub(crate) fn wait_first_schedule(&self, tid: usize) {
        let st = self.lock_state();
        let st = self.wait_scheduled(st, tid);
        drop(st);
    }

    /// Acquires model lock `l` for `tid`, blocking (and re-offering the
    /// baton) while it is held. The acquisition attempt is itself a
    /// scheduling point.
    pub(crate) fn lock_acquire(&self, tid: usize, l: usize) {
        self.yield_point(tid);
        let mut st = self.lock_state();
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.lock_holders[l].is_none() {
                st.lock_holders[l] = Some(tid);
                return;
            }
            assert_ne!(
                st.lock_holders[l],
                Some(tid),
                "model thread {tid} re-locked model mutex {l} it already holds (self-deadlock)"
            );
            st.statuses[tid] = Status::Blocked(Wait::Lock(l));
            st.current = None;
            self.schedule(&mut st, None);
            st = self.wait_scheduled(st, tid);
        }
    }

    /// Releases model lock `l` and promotes its waiters. Not a scheduling
    /// point: the release becomes visible at the caller's next one.
    pub(crate) fn lock_release(&self, l: usize) {
        let mut st = self.lock_state();
        st.lock_holders[l] = None;
        for s in &mut st.statuses {
            if *s == Status::Blocked(Wait::Lock(l)) {
                *s = Status::Ready;
            }
        }
    }

    /// Condvar wait: atomically release `l`, park on condvar `cv`, and on
    /// wake-up re-acquire `l` before returning.
    pub(crate) fn condvar_wait(&self, tid: usize, cv: usize, l: usize) {
        {
            let mut st = self.lock_state();
            if st.aborted {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            self.count_step(&mut st);
            st.lock_holders[l] = None;
            for s in &mut st.statuses {
                if *s == Status::Blocked(Wait::Lock(l)) {
                    *s = Status::Ready;
                }
            }
            st.statuses[tid] = Status::Blocked(Wait::Condvar(cv));
            st.condvar_queues[cv].push(tid);
            st.current = None;
            self.schedule(&mut st, None);
            let st = self.wait_scheduled(st, tid);
            drop(st);
        }
        // Re-acquire the mutex (may block again; that is real condvar
        // behavior).
        let mut st = self.lock_state();
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.lock_holders[l].is_none() {
                st.lock_holders[l] = Some(tid);
                return;
            }
            st.statuses[tid] = Status::Blocked(Wait::Lock(l));
            st.current = None;
            self.schedule(&mut st, None);
            st = self.wait_scheduled(st, tid);
        }
    }

    /// Wakes up to `n` condvar waiters (FIFO). A scheduling point.
    pub(crate) fn condvar_notify(&self, tid: usize, cv: usize, n: usize) {
        self.yield_point(tid);
        let mut st = self.lock_state();
        for _ in 0..n {
            let Some(waiter) = ({
                let q = &mut st.condvar_queues[cv];
                if q.is_empty() {
                    None
                } else {
                    Some(q.remove(0))
                }
            }) else {
                break;
            };
            st.statuses[waiter] = Status::Ready;
        }
    }

    /// Join: park until thread `target` finishes.
    pub(crate) fn join_wait(&self, tid: usize, target: usize) {
        self.yield_point(tid);
        let mut st = self.lock_state();
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.statuses[target] == Status::Finished {
                return;
            }
            st.statuses[tid] = Status::Blocked(Wait::Join(target));
            st.current = None;
            self.schedule(&mut st, None);
            st = self.wait_scheduled(st, tid);
        }
    }

    /// Marks `tid` finished, promotes its joiners, and hands off the baton.
    /// `failure` carries a real panic message from the thread body, if any.
    pub(crate) fn thread_finished(&self, tid: usize, failure: Option<String>) {
        let mut st = self.lock_state();
        st.statuses[tid] = Status::Finished;
        st.live -= 1;
        for s in &mut st.statuses {
            if *s == Status::Blocked(Wait::Join(tid)) {
                *s = Status::Ready;
            }
        }
        if let Some(msg) = failure {
            if st.failure.is_none() {
                st.failure = Some(msg);
            }
            st.aborted = true;
            self.cv.notify_all();
            return;
        }
        st.current = None;
        self.schedule(&mut st, None);
    }

    /// Driver side: hand the baton to the first runnable thread.
    pub(crate) fn start(&self) {
        let mut st = self.lock_state();
        self.schedule(&mut st, None);
    }

    /// Driver side: block until the execution is over (all threads finished
    /// or the run aborted).
    pub(crate) fn wait_execution_done(&self) {
        let mut st = self.lock_state();
        while st.live > 0 && !st.aborted {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        // On abort, parked threads must still observe it and unwind.
        self.cv.notify_all();
    }

    /// Driver side: the execution's outcome.
    pub(crate) fn take_outcome(&self) -> (Vec<Choice>, bool, Option<String>) {
        let mut st = self.lock_state();
        let choices = std::mem::take(&mut st.choices);
        (choices, st.truncated, st.failure.take())
    }
}

thread_local! {
    /// The runtime and tid of the model thread running on this OS thread.
    static CURRENT: std::cell::RefCell<Option<(Arc<Rt>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The runtime handle for the calling model thread, or `None` outside one.
pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The runtime handle for the calling model thread; panics outside `model()`.
pub(crate) fn current_expect(what: &str) -> (Arc<Rt>, usize) {
    current()
        .unwrap_or_else(|| panic!("loom model {what} used outside loom::model / Builder::check"))
}

/// Installs the (runtime, tid) pair for the calling OS thread.
pub(crate) fn set_current(rt: Option<(Arc<Rt>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = rt);
}
