//! # fidelity
//!
//! Facade crate for the FIdelity reproduction: re-exports the substrate
//! crates and the framework so examples and downstream users can depend on a
//! single crate.
//!
//! * [`dnn`] — the inference substrate (tensors, layers, graphs, precision
//!   codecs, injection hooks);
//! * [`accel`] — accelerator architecture models (FF census, dataflows,
//!   performance model, presets);
//! * [`rtl`] — the register-level golden simulator used for validation;
//! * [`core`] — the FIdelity framework itself (Reuse Factor Analysis,
//!   software fault models, campaigns, Eq. 1/Eq. 2, validation);
//! * [`workloads`] — representative networks, synthetic data, and
//!   correctness metrics;
//! * [`statcheck`] — static analyses: the model-level fault-model verifier
//!   and the source-level determinism lint (`fidelity statcheck`,
//!   `fidelity lint`);
//! * [`obs`] — the zero-dependency observability layer (structured tracing,
//!   metrics, live campaign progress, trace reports);
//! * [`serve`] — the crash-tolerant campaign-as-a-service daemon
//!   (`fidelity serve`): supervised jobs, backpressure, write-ahead
//!   journaling, and checkpoint-resume crash recovery.
//!
//! ## Quickstart
//!
//! ```
//! use fidelity::core::analysis::analyze;
//! use fidelity::core::campaign::CampaignSpec;
//! use fidelity::core::fit::PAPER_RAW_FIT_PER_MB;
//! use fidelity::core::outcome::TopOneMatch;
//! use fidelity::dnn::graph::Engine;
//! use fidelity::dnn::precision::Precision;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let accel = fidelity::accel::presets::nvdla_like();
//! let w = fidelity::workloads::classification_suite(42).remove(0);
//! let engine = Engine::new(w.network, Precision::Fp16, &[w.inputs.clone()])?;
//! let trace = engine.trace(&w.inputs)?;
//! let spec = CampaignSpec { samples_per_cell: 10, ..CampaignSpec::default() };
//! let analysis = analyze(&engine, &trace, &accel, &TopOneMatch, PAPER_RAW_FIT_PER_MB, &spec)?;
//! assert!(analysis.fit.total > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use fidelity_accel as accel;
pub use fidelity_core as core;
pub use fidelity_dnn as dnn;
pub use fidelity_obs as obs;
pub use fidelity_rtl as rtl;
pub use fidelity_serve as serve;
pub use fidelity_statcheck as statcheck;
pub use fidelity_workloads as workloads;
