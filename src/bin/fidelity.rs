//! `fidelity` — command-line front end to the resilience-analysis framework.
//!
//! ```text
//! fidelity rfa      [--lanes N] [--hold N] [--eyeriss K T]
//! fidelity analyze  --network NAME [--precision fp16|int16|int8]
//!                   [--samples N] [--bounding SLACK] [--seed N]
//!                   [--jobs N] [--batch N] [--mac-tier bitwise|fast]
//!                   [--adaptive] [--epsilon E] [--confidence C]
//!                   [--max-injections N]
//!                   [--checkpoint PATH] [--resume]
//! fidelity validate --network NAME [--layer NAME] [--sites N] [--systolic]
//! fidelity protect  --network NAME [--target FIT] [--samples N]
//! fidelity report   --trace FILE | --cert FILE
//! fidelity statcheck [--preset NAME] [--cert FILE]
//! fidelity lint     [--root PATH]...
//! fidelity concheck [--root PATH]...
//! ```
//!
//! Telemetry flags (accepted by `analyze`, `validate`, and `protect`):
//! `--trace FILE` streams structured JSONL events, `--progress` renders a
//! live campaign status line on stderr, and `--metrics` prints a metrics
//! snapshot (counters, gauges, latency histograms) after the run.
//!
//! Networks: inception, resnet, mobilenet, yolo, transformer, lstm.

use std::collections::HashMap;
use std::process::ExitCode;

use fidelity::accel::dataflow::{EyerissDataflow, NvdlaDataflow};
use fidelity::core::adaptive::AdaptivePlan;
use fidelity::core::analysis::analyze;
use fidelity::core::campaign::CampaignSpec;
use fidelity::core::fit::{
    ff_fit_budget, ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION, PAPER_RAW_FIT_PER_MB,
};
use fidelity::core::outcome::{CorrectnessMetric, TopOneMatch};
use fidelity::core::protect::{default_costs, plan_selective_protection};
use fidelity::core::resilience::CheckpointSpec;
use fidelity::core::rfa::reuse_factor_analysis;
use fidelity::core::validate::{random_sites, rtl_layer_for, validate_many};
use fidelity::dnn::graph::Engine;
use fidelity::dnn::init::SplitMix64;
use fidelity::dnn::precision::Precision;
use fidelity::rtl::RtlEngine;
use fidelity::workloads::metrics::{BleuThreshold, DetectionThreshold};
use fidelity::workloads::{
    classification_suite, lstm_workload, transformer_workload, yolo_workload, Workload,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // `report` reads an existing trace file; installing a sink on it would
    // truncate the input, so telemetry setup is skipped there.
    let telemetry = !matches!(command.as_str(), "report" | "help" | "--help" | "-h");
    if telemetry {
        if let Err(e) = setup_telemetry(&opts) {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    let result = match command.as_str() {
        "rfa" => cmd_rfa(&opts),
        "analyze" => cmd_analyze(&opts),
        "validate" => cmd_validate(&opts),
        "protect" => cmd_protect(&opts),
        "report" => cmd_report(&opts),
        "serve" => cmd_serve(&opts),
        "top" => cmd_top(&opts),
        "statcheck" => cmd_statcheck(&opts),
        "lint" => cmd_lint(rest, &opts),
        "concheck" => cmd_concheck(rest, &opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    // Flush the trace sink (and print metrics) even when the command failed,
    // so abort events reach the trace file.
    let result = if telemetry {
        result.and(finish_telemetry(&opts))
    } else {
        result
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fidelity rfa      [--lanes N] [--hold N] [--eyeriss K,T]
  fidelity analyze  --network NAME [--precision fp16|int16|int8]
                    [--samples N] [--bounding SLACK] [--seed N]
                    [--jobs N] [--batch N] [--mac-tier bitwise|fast]
                    [--adaptive] [--epsilon E] [--confidence C]
                    [--max-injections N]
                    [--checkpoint PATH] [--resume]
  fidelity validate --network NAME [--layer NAME] [--sites N]
  fidelity protect  --network NAME [--target FIT] [--samples N] [--jobs N]
  fidelity report   --trace FILE | --cert FILE
  fidelity serve    [--addr HOST:PORT] [--state DIR] [--queue-cap N]
                    [--workers N] [--jobs N] [--smoke]
  fidelity top      [--addr HOST:PORT] [--interval-ms N] [--once]
  fidelity statcheck [--preset NAME] [--cert FILE]
  fidelity lint     [--root PATH]...
  fidelity concheck [--root PATH]...

telemetry (analyze | validate | protect):
  --trace FILE      write structured JSONL trace events to FILE
  --progress        live campaign status line on stderr
  --metrics         print a metrics snapshot after the run
  --profile FILE    write a collapsed-stack self-profile to FILE
                    (flamegraph.pl / speedscope compatible)

parallelism (analyze | protect):
  --jobs N          campaign worker threads (default: all cores); results
                    are bit-identical for any N

adaptive sampling (analyze):
  --adaptive        confidence-driven campaign: per-stratum Wilson CIs stop
                    sampling once the FIT bound resolves below ε; emits a
                    machine-checkable confidence certificate
  --epsilon E       target FIT half-width ε (default 0.005; implies
                    --adaptive)
  --confidence C    CI level: 0.90 | 0.95 (default) | 0.99
  --max-injections N  total-injection ceiling (default 1000000)

performance (analyze | protect):
  --batch N         batched fault-cone evaluation: keep a golden snapshot
                    per worker and evaluate injections as sparse deltas,
                    re-ensured every N samples (default 0 = off); results
                    are bit-identical either way
  --mac-tier TIER   MAC kernel tier: `bitwise` (default, byte-identical to
                    the scalar oracle) or `fast` (tree-reduced Dense/MatMul;
                    measured worst-case divergence is reported)

networks: inception | resnet | mobilenet | yolo | transformer | lstm";

/// Flags that take no value; their presence maps to `"true"`.
const BARE_FLAGS: &[&str] = &["resume", "progress", "metrics", "smoke", "once", "adaptive"];

/// Applies the shared telemetry flags before the command runs: `--trace FILE`
/// installs the JSONL sink, `--metrics` enables timing instrumentation.
fn setup_telemetry(opts: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = opts.get("trace") {
        fidelity::obs::install_jsonl_sink(std::path::Path::new(path))
            .map_err(|e| format!("--trace {path}: {e}"))?;
    }
    if opts.contains_key("metrics") {
        fidelity::obs::set_timing(true);
    }
    if opts.contains_key("profile") {
        fidelity::obs::prof::set_enabled(true);
    }
    Ok(())
}

/// Tears telemetry down after the command: flushes the trace sink (surfacing
/// write errors), prints the metrics snapshot when `--metrics` was given, and
/// writes the collapsed-stack self-profile when `--profile FILE` was given.
fn finish_telemetry(opts: &HashMap<String, String>) -> Result<(), String> {
    let flushed = if opts.contains_key("trace") {
        fidelity::obs::flush().map_err(|e| format!("trace flush: {e}"))
    } else {
        Ok(())
    };
    if opts.contains_key("metrics") {
        print!("{}", fidelity::obs::metrics::snapshot());
    }
    if let Some(path) = opts.get("profile") {
        fidelity::obs::prof::set_enabled(false);
        std::fs::write(path, fidelity::obs::prof::collapsed())
            .map_err(|e| format!("--profile {path}: {e}"))?;
    }
    flushed
}

fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{flag}`"))?;
        if BARE_FLAGS.contains(&key) {
            opts.insert(key.to_owned(), "true".to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{key} requires a value"))?;
        opts.insert(key.to_owned(), value.clone());
    }
    Ok(opts)
}

fn get<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

fn workload(opts: &HashMap<String, String>, seed: u64) -> Result<Workload, String> {
    let name = opts
        .get("network")
        .ok_or_else(|| "--network is required".to_owned())?;
    Ok(match name.as_str() {
        "inception" => classification_suite(seed).remove(0),
        "resnet" => classification_suite(seed).remove(1),
        "mobilenet" => classification_suite(seed).remove(2),
        "yolo" => yolo_workload(seed),
        "transformer" => transformer_workload(seed),
        "lstm" => lstm_workload(seed),
        other => return Err(format!("unknown network `{other}`")),
    })
}

fn precision(opts: &HashMap<String, String>) -> Result<Precision, String> {
    Ok(match opts.get("precision").map(String::as_str) {
        None | Some("fp16") => Precision::Fp16,
        Some("fp32") => Precision::Fp32,
        Some("int16") => Precision::Int16,
        Some("int8") => Precision::Int8,
        Some(other) => return Err(format!("unknown precision `{other}`")),
    })
}

fn metric_for(w: &Workload) -> Box<dyn CorrectnessMetric> {
    match w.kind {
        fidelity::workloads::WorkloadKind::Classification => Box::new(TopOneMatch),
        fidelity::workloads::WorkloadKind::Translation => Box::new(BleuThreshold::ten_percent()),
        fidelity::workloads::WorkloadKind::Detection => Box::new(DetectionThreshold::ten_percent()),
    }
}

fn cmd_rfa(opts: &HashMap<String, String>) -> Result<(), String> {
    if let Some(spec) = opts.get("eyeriss") {
        let (k, t) = spec
            .split_once(',')
            .ok_or_else(|| "--eyeriss expects K,T".to_owned())?;
        let df = EyerissDataflow {
            k: k.trim().parse().map_err(|_| "bad K".to_owned())?,
            channel_reuse: t.trim().parse().map_err(|_| "bad T".to_owned())?,
        };
        for inputs in [
            df.example_b1(),
            df.example_b2(),
            df.example_b3(),
            df.private_input_rfa(),
            df.weight_broadcast_rfa(),
        ] {
            let r = reuse_factor_analysis(&inputs).map_err(|e| e.to_string())?;
            println!("{:<56} RF = {}", inputs.target, r.rf());
        }
        return Ok(());
    }
    let df = NvdlaDataflow {
        lanes: get(opts, "lanes", 16usize)?,
        weight_hold: get(opts, "hold", 16usize)?,
    };
    for inputs in [
        df.example_a1(),
        df.example_a2(),
        df.example_a3(),
        df.example_a4(),
    ] {
        let r = reuse_factor_analysis(&inputs).map_err(|e| e.to_string())?;
        println!("{:<56} RF = {}", inputs.target, r.rf());
    }
    Ok(())
}

fn deploy(
    opts: &HashMap<String, String>,
    seed: u64,
) -> Result<
    (
        Engine,
        fidelity::dnn::graph::Trace,
        Box<dyn CorrectnessMetric>,
    ),
    String,
> {
    let w = workload(opts, seed)?;
    let metric = metric_for(&w);
    let p = precision(opts)?;
    let inputs = w.inputs.clone();
    let mut engine =
        Engine::new(w.network, p, std::slice::from_ref(&inputs)).map_err(|e| e.to_string())?;
    if let Some(slack) = opts.get("bounding") {
        let slack: f32 = slack
            .parse()
            .map_err(|_| "--bounding: bad slack".to_owned())?;
        engine
            .enable_range_bounding(&inputs, slack)
            .map_err(|e| e.to_string())?;
    }
    let trace = engine.trace(&inputs).map_err(|e| e.to_string())?;
    Ok((engine, trace, metric))
}

fn spec_from(opts: &HashMap<String, String>) -> Result<CampaignSpec, String> {
    let mut spec = CampaignSpec {
        samples_per_cell: get(opts, "samples", 200usize)?,
        seed: get(opts, "seed", 0xF1DEu64)?,
        ..CampaignSpec::default()
    };
    // `--jobs N` pins the worker count (default: available parallelism).
    // Campaign results are bit-identical for any value; the flag only trades
    // wall-clock for cores.
    if let Some(jobs) = opts.get("jobs") {
        let jobs: usize = jobs
            .parse()
            .map_err(|_| format!("--jobs: cannot parse `{jobs}`"))?;
        if jobs == 0 {
            return Err("--jobs must be at least 1".to_owned());
        }
        spec.threads = jobs;
    }
    if opts.contains_key("progress") {
        spec.progress = Some(fidelity::obs::progress::ProgressSpec::default());
    }
    // `--batch N` turns on batched fault-cone evaluation: workers keep a
    // shared golden snapshot and evaluate injections as sparse deltas,
    // re-ensuring the snapshot every N samples. Results are bit-identical
    // with or without it; the flag only trades memory for speed.
    if let Some(batch) = opts.get("batch") {
        spec.batch = batch
            .parse()
            .map_err(|_| format!("--batch: cannot parse `{batch}`"))?;
    }
    if let Some(tier) = opts.get("mac-tier") {
        spec.mac_tier = fidelity::dnn::macspec::MacTier::parse(tier)
            .ok_or_else(|| format!("--mac-tier: `{tier}` is not bitwise|fast"))?;
    }
    // `--adaptive` switches the campaign to confidence-driven wave sampling:
    // per-stratum Wilson intervals terminate sampling once the total FIT
    // uncertainty resolves below ε. `--samples` is ignored in this mode;
    // `--epsilon` alone also implies it.
    if opts.contains_key("adaptive") || opts.contains_key("epsilon") {
        let mut plan = AdaptivePlan::new(get(opts, "epsilon", 0.005f64)?);
        plan.confidence = get(opts, "confidence", plan.confidence)?;
        plan.max_injections = get(opts, "max-injections", plan.max_injections)?;
        plan.validated_z().map_err(|e| e.to_string())?;
        spec.adaptive = Some(plan);
    }
    match (opts.get("checkpoint"), opts.contains_key("resume")) {
        (Some(path), resume) => {
            spec.resilience.checkpoint = Some(if resume {
                CheckpointSpec::resuming(path)
            } else {
                CheckpointSpec::new(path)
            });
        }
        (None, true) => return Err("--resume requires --checkpoint PATH".to_owned()),
        (None, false) => {}
    }
    Ok(spec)
}

fn cmd_analyze(opts: &HashMap<String, String>) -> Result<(), String> {
    let seed = get(opts, "seed", 42u64)?;
    let (engine, trace, metric) = deploy(opts, seed)?;
    let accel = fidelity::accel::presets::nvdla_like();
    let analysis = analyze(
        &engine,
        &trace,
        &accel,
        metric.as_ref(),
        PAPER_RAW_FIT_PER_MB,
        &spec_from(opts)?,
    )
    .map_err(|e| e.to_string())?;
    let f = &analysis.fit;
    println!(
        "Accelerator_FIT_rate = {:.3}  (datapath {:.3}, local {:.3}, global {:.3})",
        f.total, f.datapath, f.local, f.global
    );
    println!(
        "with global control protected: {:.3}",
        analysis.fit_global_protected.total
    );
    let budget = ff_fit_budget(ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION);
    println!(
        "ASIL-D FF budget {budget}: {}",
        if f.total > budget {
            format!("{:.0}x over", f.total / budget)
        } else {
            "within budget".to_owned()
        }
    );
    for term in &analysis.layer_terms {
        println!(
            "  layer {:<28} exec {:>8} cycles",
            term.name, term.exec_cycles
        );
    }
    if let Some(d) = analysis.campaign.fast_divergence {
        println!("fast-tier MAC divergence (measured worst case): {d:e}");
    }
    if let Some(cert) = &analysis.campaign.certificate {
        println!("\n{}", cert.render());
    }
    if opts.get("detail").map(String::as_str) == Some("true") {
        println!(
            "\n{}",
            fidelity::core::report::campaign_table(&analysis.campaign)
        );
    }
    Ok(())
}

fn cmd_validate(opts: &HashMap<String, String>) -> Result<(), String> {
    let seed = get(opts, "seed", 42u64)?;
    let (engine, trace, _) = deploy(opts, seed)?;
    let node = match opts.get("layer") {
        Some(name) => engine
            .network()
            .node_index(name)
            .ok_or_else(|| format!("layer `{name}` not found"))?,
        None => (0..engine.network().node_count())
            .filter(|&i| engine.mac_spec(i, &trace).is_some())
            .max_by_key(|&i| trace.node_outputs[i].len())
            .ok_or_else(|| "network has no MAC layer".to_owned())?,
    };
    let layer = rtl_layer_for(&engine, &trace, node)
        .ok_or_else(|| "layer does not lift to the register-level engine".to_owned())?;
    let rtl = RtlEngine::new(layer, 16, 16);
    let mut rng = SplitMix64::new(seed);
    let sites = random_sites(&rtl, get(opts, "sites", 1000usize)?, &mut rng);
    let report = validate_many(&rtl, &sites);
    println!(
        "sites {}  masked-agreed {}  datapath {}/{} exact  local {}/{}  global {} ({} masked)  timeouts {}",
        report.total,
        report.masked_agreed,
        report.datapath_exact,
        report.datapath_cases,
        report.local_match,
        report.local_cases,
        report.global_cases,
        report.global_masked,
        report.timeouts
    );
    if report.mismatches.is_empty() {
        println!("NO MISMATCHES — models validated");
        Ok(())
    } else {
        Err(format!("{} mismatches", report.mismatches.len()))
    }
}

fn cmd_report(opts: &HashMap<String, String>) -> Result<(), String> {
    // `--cert PATH` renders an adaptive campaign's confidence certificate
    // (per-stratum convergence table) from its checkpoint, re-verifying the
    // stored bounds in the process.
    if let Some(path) = opts.get("cert") {
        let cert = fidelity::core::adaptive::verify_checkpoint_file(std::path::Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("{}", cert.render());
        return Ok(());
    }
    let path = opts
        .get("trace")
        .ok_or_else(|| "report requires --trace FILE or --cert FILE".to_owned())?;
    let summary = fidelity::obs::report::summarize_file(std::path::Path::new(path))
        .map_err(|e| format!("{path}: {e}"))?;
    println!("{summary}");
    Ok(())
}

/// `fidelity serve`: boots the crash-tolerant campaign daemon. With
/// `--smoke`, boots on an ephemeral port, exercises the full API against
/// itself (submit, poll, stream, shutdown), and exits — the CI gate for the
/// service layer.
fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let default_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let smoke = opts.contains_key("smoke");
    let state_dir = match opts.get("state") {
        Some(path) => std::path::PathBuf::from(path),
        None if smoke => {
            std::env::temp_dir().join(format!("fidelity-serve-smoke-{}", std::process::id()))
        }
        None => std::path::PathBuf::from("fidelity-serve-state"),
    };
    let cfg = fidelity::serve::ServeConfig {
        state_dir,
        queue_cap: get(opts, "queue-cap", 8)?,
        workers: get(opts, "workers", 1)?,
        campaign_threads: get(opts, "jobs", default_threads)?,
        chaos: Vec::new(),
    };
    // Latency histograms on /metrics are only as good as their clock: the
    // daemon always arms timing instrumentation.
    fidelity::obs::set_timing(true);
    if smoke {
        return serve_smoke(cfg);
    }
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7350".to_owned());
    let sup = fidelity::serve::Supervisor::start(cfg)?;
    if sup.recovered_jobs() > 0 {
        println!(
            "recovered {} unfinished job(s) from the journal",
            sup.recovered_jobs()
        );
    }
    let handle = fidelity::serve::serve(sup, &addr)?;
    println!("listening on {}", handle.addr());
    println!("POST /shutdown to drain and exit");
    handle.wait();
    println!("drained; all accepted work is journaled");
    Ok(())
}

/// `fidelity top`: live terminal dashboard over a running daemon. With
/// `--once`, prints one frame and exits (scriptable / CI smoke).
fn cmd_top(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7350".to_owned());
    let interval_ms: u64 = get(opts, "interval-ms", 1000)?;
    fidelity::serve::top::run(
        &addr,
        opts.contains_key("once"),
        std::time::Duration::from_millis(interval_ms.max(100)),
    )
}

/// One full self-exercise of the running service, used by `--smoke` and CI:
/// boot → health → submit → stream an event → poll to completion → resubmit
/// (must dedup) → graceful shutdown.
fn serve_smoke(cfg: fidelity::serve::ServeConfig) -> Result<(), String> {
    let state_dir = cfg.state_dir.clone();
    let sup = fidelity::serve::Supervisor::start(cfg)?;
    let handle = fidelity::serve::serve(sup, "127.0.0.1:0")?;
    println!("smoke: listening on {}", handle.addr());
    let client = fidelity::serve::Client::new(handle.addr().to_string());

    let health = client.healthz()?;
    if health.status != 200 {
        return Err(format!("smoke: healthz {} {}", health.status, health.body));
    }
    for key in [
        "\"uptime_secs\":",
        "\"queue_headroom\":",
        "\"workers_alive\":",
    ] {
        if !health.body.contains(key) {
            return Err(format!("smoke: healthz missing {key}: {}", health.body));
        }
    }
    let spec = "{\"network\":\"lstm\",\"samples\":25,\"seed\":7}";
    let reply = client.submit(spec)?;
    if reply.status != 202 {
        return Err(format!("smoke: submit {} {}", reply.status, reply.body));
    }
    let id = reply
        .body
        .split("\"id\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .ok_or_else(|| format!("smoke: no id in {}", reply.body))?
        .to_owned();
    println!("smoke: accepted job {id}");

    // Scrape /metrics while the job runs: the export must parse strictly
    // even mid-campaign (concurrent counter updates), and a second scrape
    // must be monotone on every counter.
    let scrape = |label: &str| -> Result<fidelity::obs::prom::PromDump, String> {
        let reply = client.request("GET", "/metrics", None)?;
        if reply.status != 200 {
            return Err(format!("smoke: metrics {} {}", reply.status, reply.body));
        }
        fidelity::obs::prom::parse(&reply.body).map_err(|e| format!("smoke: metrics {label}: {e}"))
    };
    let first = scrape("first")?;
    let status = client.wait_terminal(&id, 600, std::time::Duration::from_millis(50))?;
    if !status.contains("\"state\":\"done\"") || !status.contains("\"fit_total\":") {
        return Err(format!("smoke: job did not finish cleanly: {status}"));
    }
    println!("smoke: job done");
    let second = scrape("second")?;
    for counter in ["serve_jobs_submitted", "serve_http_requests_metrics"] {
        let (a, b) = (
            first.scalar(counter).unwrap_or(0.0),
            second.scalar(counter).unwrap_or(0.0),
        );
        if b < a {
            return Err(format!(
                "smoke: counter {counter} went backwards: {a} -> {b}"
            ));
        }
    }
    if second.scalar("serve_jobs_submitted").unwrap_or(0.0) < 1.0 {
        return Err("smoke: serve_jobs_submitted never counted".to_owned());
    }
    if second.scalar("campaign_injections").unwrap_or(0.0) < 1.0 {
        return Err("smoke: campaign_injections never counted".to_owned());
    }
    println!("smoke: /metrics parses strictly and counters are monotone");

    // The job's trace file is served over the API and carries its
    // deterministic trace id on every line.
    let trace = client.request("GET", &format!("/campaigns/{id}/trace"), None)?;
    if trace.status != 200 {
        return Err(format!("smoke: trace {} {}", trace.status, trace.body));
    }
    let want_trace_id = fidelity::serve::jobtrace::trace_id(&id);
    let mut lines = 0usize;
    for line in trace.body.lines().filter(|l| !l.is_empty()) {
        if !line.contains(&want_trace_id) {
            return Err(format!(
                "smoke: trace line missing id {want_trace_id}: {line}"
            ));
        }
        lines += 1;
    }
    if lines < 3 {
        return Err(format!("smoke: trace too short ({lines} lines)"));
    }
    println!("smoke: trace endpoint served {lines} records with trace id {want_trace_id}");

    // The `top` dashboard renders one frame from the same endpoints.
    let frame = fidelity::serve::top::fetch(&client)?;
    let rendered = fidelity::serve::top::render(&frame, None);
    if !rendered.contains("fidelity top") || !rendered.contains(&id) {
        return Err(format!("smoke: top frame incomplete:\n{rendered}"));
    }
    println!("smoke: top rendered a frame");

    let event = client.stream_one_event(&id)?;
    if !event.starts_with('{') {
        return Err(format!("smoke: bad event line `{event}`"));
    }
    println!("smoke: streamed one progress event");

    let again = client.submit(spec)?;
    if again.status != 200 || !again.body.contains("\"state\":\"done\"") {
        return Err(format!(
            "smoke: duplicate submit was not deduplicated: {} {}",
            again.status, again.body
        ));
    }
    println!("smoke: duplicate submit answered from the record");

    let reply = client.shutdown()?;
    if reply.status != 202 {
        return Err(format!("smoke: shutdown {} {}", reply.status, reply.body));
    }
    handle.wait();
    if client.healthz().is_ok() {
        return Err("smoke: daemon still listening after drain".to_owned());
    }
    let _ = std::fs::remove_dir_all(&state_dir);
    println!("serve smoke: PASS");
    Ok(())
}

fn cmd_statcheck(opts: &HashMap<String, String>) -> Result<(), String> {
    // `--cert PATH` re-verifies an adaptive campaign's confidence
    // certificate offline: every CI and FIT bound is recomputed from the
    // checkpoint's raw tallies and compared bit-for-bit against the stored
    // footer.
    if let Some(path) = opts.get("cert") {
        let cert = fidelity::core::adaptive::verify_checkpoint_file(std::path::Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?;
        println!(
            "certificate OK: fingerprint {:016x}, {} strata, {} injections over {} waves, \
             FIT {:.3} ± {:.3} ({}; ε = {})",
            cert.fingerprint,
            cert.strata.len(),
            cert.total_injections,
            cert.waves,
            cert.total_fit,
            cert.total_bound,
            if cert.converged {
                "converged"
            } else {
                "NOT converged"
            },
            cert.plan.epsilon,
        );
        return Ok(());
    }
    let report = match opts.get("preset") {
        Some(name) => {
            let cfg = fidelity::accel::presets::all()
                .into_iter()
                .find(|c| c.name == *name)
                .ok_or_else(|| format!("unknown preset `{name}`"))?;
            fidelity::statcheck::verifier::verify_preset(&cfg)
        }
        None => fidelity::statcheck::verifier::verify_all(),
    };
    println!("{report}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "statcheck failed: {} error(s)",
            report.error_count()
        ))
    }
}

fn cmd_lint(args: &[String], _opts: &HashMap<String, String>) -> Result<(), String> {
    // `--root` may repeat, which the flag map cannot express; read it from
    // the raw argument list instead.
    let mut roots: Vec<std::path::PathBuf> = args
        .iter()
        .zip(args.iter().skip(1))
        .filter(|(flag, _)| flag.as_str() == "--root")
        .map(|(_, value)| std::path::PathBuf::from(value))
        .collect();
    if roots.is_empty() {
        roots = [
            "crates/core",
            "crates/dnn",
            "crates/rtl",
            "crates/obs",
            "crates/par",
            "crates/serve",
        ]
        .iter()
        .map(std::path::PathBuf::from)
        .collect();
        if !roots.iter().all(|r| r.is_dir()) {
            return Err(
                "default lint roots not found; run from the workspace root or pass --root PATH"
                    .to_owned(),
            );
        }
    }
    let config = fidelity::statcheck::lint::LintConfig::default();
    let findings = fidelity::statcheck::lint::lint_paths(&roots, &config)
        .map_err(|e| format!("lint failed: {e}"))?;
    for f in &findings {
        println!("{f}");
    }
    // Warnings are errors: a single nondeterminism finding fails the gate.
    if findings.is_empty() {
        println!("determinism lint: clean");
        Ok(())
    } else {
        Err(format!("determinism lint: {} finding(s)", findings.len()))
    }
}

fn cmd_concheck(args: &[String], _opts: &HashMap<String, String>) -> Result<(), String> {
    // Same `--root` handling as `lint`: the flag may repeat.
    let mut roots: Vec<std::path::PathBuf> = args
        .iter()
        .zip(args.iter().skip(1))
        .filter(|(flag, _)| flag.as_str() == "--root")
        .map(|(_, value)| std::path::PathBuf::from(value))
        .collect();
    if roots.is_empty() {
        roots = [
            "crates/core",
            "crates/dnn",
            "crates/rtl",
            "crates/obs",
            "crates/par",
            "crates/serve",
        ]
        .iter()
        .map(std::path::PathBuf::from)
        .collect();
        if !roots.iter().all(|r| r.is_dir()) {
            return Err(
                "default concheck roots not found; run from the workspace root or pass --root PATH"
                    .to_owned(),
            );
        }
    }
    let config = fidelity::statcheck::concheck::ConcheckConfig::default();
    let report = fidelity::statcheck::concheck::concheck_paths(&roots, &config)
        .map_err(|e| format!("concheck failed: {e}"))?;
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "concheck: {} function(s), {} lock(s), {} order edge(s); atomics: {} counter, {} flag, {} handoff",
        report.functions,
        report.locks,
        report.edges,
        report.atomics.counters,
        report.atomics.flags,
        report.atomics.handoffs,
    );
    // Warnings are errors: one unjustified discipline violation fails the gate.
    if report.findings.is_empty() {
        println!("concurrency check: clean");
        Ok(())
    } else {
        Err(format!(
            "concurrency check: {} finding(s)",
            report.findings.len()
        ))
    }
}

fn cmd_protect(opts: &HashMap<String, String>) -> Result<(), String> {
    let seed = get(opts, "seed", 42u64)?;
    let (engine, trace, metric) = deploy(opts, seed)?;
    let accel = fidelity::accel::presets::nvdla_like();
    let analysis = analyze(
        &engine,
        &trace,
        &accel,
        metric.as_ref(),
        PAPER_RAW_FIT_PER_MB,
        &spec_from(opts)?,
    )
    .map_err(|e| e.to_string())?;
    let target = get(
        opts,
        "target",
        ff_fit_budget(ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION),
    )?;
    let costs = default_costs(accel.census.iter().map(|(c, _)| c));
    let plan =
        plan_selective_protection(&analysis.fit, &costs, |c| accel.census.fraction(c), target);
    println!(
        "FIT {:.3} -> {:.3} (target {target}, met: {}, area cost {:.1}%)",
        analysis.fit.total,
        plan.final_fit,
        plan.met_target,
        plan.total_cost * 100.0
    );
    for step in &plan.steps {
        println!(
            "  protect {:<34} -{:.3} FIT (cost {:.2}%)",
            step.category.to_string(),
            step.fit_removed,
            step.cost * 100.0
        );
    }
    Ok(())
}
