//! The Sec. III-E extension: modeling on-chip **memory** errors with the
//! same framework.
//!
//! A bit flip in a buffer word behaves exactly like a fault in the
//! fetch-path FF that wrote it (Table I, row 2 / Datapath RF Property 1):
//! every output neuron consuming the word sees the corrupted value. This
//! example flips a weight-buffer bit in the register-level engine and shows
//! the before-buffer software fault model predicting the damage exactly.
//!
//! ```sh
//! cargo run --release --example memory_errors
//! ```

use fidelity::core::validate::rtl_layer_for;
use fidelity::dnn::graph::Engine;
use fidelity::dnn::init::SplitMix64;
use fidelity::dnn::macspec::{OperandKind, Operands, Substitution};
use fidelity::dnn::precision::Precision;
use fidelity::rtl::{Disturbance, MemFault, ObservedFault, RtlEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = fidelity::workloads::classification_suite(42).remove(2); // mobilenet
    let engine = Engine::new(
        workload.network,
        Precision::Fp16,
        std::slice::from_ref(&workload.inputs),
    )?;
    let trace = engine.trace(&workload.inputs)?;
    let node = engine
        .network()
        .node_index("ds0_pw")
        .expect("pointwise conv");
    let layer = rtl_layer_for(&engine, &trace, node).expect("conv lifts to RTL");
    let rtl = RtlEngine::new(layer.clone(), 8, 8);

    // Pick a weight word whose corruption is visible.
    let mut rng = SplitMix64::new(5);
    let (index, bit) = loop {
        let index = rng.next_below(layer.weight.len() as u64) as usize;
        let bit = 10 + rng.next_below(5) as u32; // exponent-ish bits
        let run = rtl.run(Disturbance::Memory(MemFault {
            weight_buffer: true,
            index,
            bit,
        }));
        if rtl.clean_output().diff_indices(&run.output, 0.0)?.len() > 1 {
            break (index, bit);
        }
    };

    println!("memory fault: weight buffer word {index}, bit {bit}");
    let run = rtl.run(Disturbance::Memory(MemFault {
        weight_buffer: true,
        index,
        bit,
    }));
    let observed = ObservedFault::from_run(rtl.clean_output(), &run);
    println!(
        "register-level engine: {} faulty neurons",
        observed.reuse_factor()
    );

    // The before-buffer software model for the same word.
    let faulty = layer.weight_codec.flip_bit(layer.weight.data()[index], bit);
    let subst = Substitution {
        kind: OperandKind::Weight,
        offset: index,
        value: faulty,
    };
    let ops = Operands {
        input: &layer.input,
        weight: &layer.weight,
    };
    let predicted: Vec<usize> = layer
        .spec
        .neurons_using_weight(index)
        .into_iter()
        .filter(|&off| {
            let v = layer
                .output_codec
                .quantize(layer.spec.compute_at(&ops, off, Some(&subst)));
            let clean = rtl.clean_output().data()[off];
            v.is_nan() || clean.is_nan() || (v - clean).abs() > 0.0
        })
        .collect();
    println!("software fault model:  {} faulty neurons", predicted.len());
    assert_eq!(observed.faulty_neurons, predicted);
    println!("\nverdict: EXACT MATCH — the datapath fault models cover memory errors too,");
    println!("so a memory-error study needs no new machinery (Sec. III-E).");
    Ok(())
}
