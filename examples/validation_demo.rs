//! A single fault, traced end to end through both worlds: the
//! register-level golden simulator and the software fault model.
//!
//! Picks one interesting fault site (a weight operand register mid-stripe),
//! shows what the hardware does cycle-accurately, what the software model
//! predicts, and that they agree bit-for-bit.
//!
//! ```sh
//! cargo run --release --example validation_demo
//! ```

use fidelity::core::validate::{predict, rtl_layer_for, validate_site, Agreement, Prediction};
use fidelity::dnn::graph::Engine;
use fidelity::dnn::init::SplitMix64;
use fidelity::dnn::precision::Precision;
use fidelity::rtl::{Disturbance, FaultSite, FfId, ObservedFault, RtlEngine, SchedPoint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Deploy ResNet-lite at FP16 and lift its first residual conv into the
    // register-level engine (16 lanes, 16-cycle weight hold — the paper's
    // validated NVDLA geometry).
    let workload = fidelity::workloads::classification_suite(42).remove(1);
    let engine = Engine::new(
        workload.network,
        Precision::Fp16,
        std::slice::from_ref(&workload.inputs),
    )?;
    let trace = engine.trace(&workload.inputs)?;
    let node = engine
        .network()
        .node_index("r1_c1")
        .expect("resnet conv exists");
    let layer = rtl_layer_for(&engine, &trace, node).expect("conv lifts to RTL");
    let rtl = RtlEngine::new(layer, 16, 16);
    println!(
        "register-level engine: {} cycles fault-free, {} flip-flops",
        rtl.clean_cycles(),
        rtl.inventory().len()
    );

    // Find a compute cycle where lane 2's weight operand register is live,
    // mid-stripe (so the fault corrupts a strict suffix of the hold window).
    let mut rng = SplitMix64::new(9);
    let site = loop {
        let cycle = rng.next_below(rtl.clean_cycles());
        if let SchedPoint::Compute { y, t_eff, .. } = rtl.schedule_at(cycle) {
            if y > 0 && y + 2 < t_eff {
                let candidate = FaultSite {
                    ff: FfId::WeightOperand { lane: 2 },
                    bit: 13, // an FP16 exponent bit: a large perturbation
                    cycle,
                };
                // Keep sampling until the fault is visible (a flip whose
                // affected inputs are all zero — e.g. behind a ReLU — is
                // legitimately masked, which is less instructive to print).
                if matches!(predict(&rtl, candidate), Prediction::Neurons { .. }) {
                    break candidate;
                }
            }
        }
    };
    println!(
        "\nfault site: {} bit {} at cycle {} ({:?})",
        site.ff,
        site.bit,
        site.cycle,
        rtl.schedule_at(site.cycle)
    );

    // Hardware truth.
    let run = rtl.run(Disturbance::Ff(site));
    let observed = ObservedFault::from_run(rtl.clean_output(), &run);
    println!(
        "\nregister-level result: {} faulty neurons {:?}",
        observed.reuse_factor(),
        observed.faulty_neurons
    );

    // Software prediction for the very same site.
    match predict(&rtl, site) {
        Prediction::Neurons { offsets, values } => {
            println!(
                "software model says:   {} faulty neurons {:?}",
                offsets.len(),
                offsets
            );
            for (off, val) in offsets.iter().zip(&values) {
                let clean = rtl.clean_output().data()[*off];
                println!(
                    "  neuron {off}: clean {clean:>12.5}  predicted {:>12.5}",
                    val.expect("datapath values are deterministic")
                );
            }
        }
        other => println!("software model says: {other:?}"),
    }

    // And the formal comparison the validation campaign runs.
    let outcome = validate_site(&rtl, site);
    match outcome.agreement {
        Agreement::DatapathExact => {
            println!("\nverdict: EXACT MATCH — same neurons, bit-identical values (Sec. IV-C).");
        }
        other => println!("\nverdict: {other:?}"),
    }
    Ok(())
}
