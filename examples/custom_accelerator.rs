//! Analyzing a *different* accelerator: the Eyeriss-like row-stationary
//! design of the paper's Fig. 2(b).
//!
//! FIdelity's portability claim is that only a handful of dataflow facts are
//! needed to derive fault models for a new design. This example walks
//! through the Fig. 2(b) worked targets (b1–b3), derives the Table-II-style
//! models for the Eyeriss-like census, and runs a small campaign.
//!
//! ```sh
//! cargo run --release --example custom_accelerator
//! ```

use fidelity::accel::{DataflowKind, EyerissDataflow};
use fidelity::core::analysis::analyze;
use fidelity::core::campaign::CampaignSpec;
use fidelity::core::fit::PAPER_RAW_FIT_PER_MB;
use fidelity::core::models::model_for;
use fidelity::core::outcome::TopOneMatch;
use fidelity::core::rfa::reuse_factor_analysis;
use fidelity::dnn::graph::Engine;
use fidelity::dnn::precision::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = fidelity::accel::presets::eyeriss_like();
    let DataflowKind::Eyeriss(df) = cfg.dataflow else {
        unreachable!("preset is Eyeriss-like")
    };

    // Step 1 — Reuse Factor Analysis on the Fig. 2(b) targets.
    println!(
        "Eyeriss-like design: {}x{} PE array, {}-channel input reuse\n",
        df.k, df.k, df.channel_reuse
    );
    for inputs in [df.example_b1(), df.example_b2(), df.example_b3()] {
        let r = reuse_factor_analysis(&inputs)?;
        println!("  {:<48} RF = {}", inputs.target, r.rf());
    }
    let expect = EyerissDataflow {
        k: df.k,
        channel_reuse: df.channel_reuse,
    };
    assert_eq!(
        reuse_factor_analysis(&expect.example_b2())?.rf(),
        df.k * df.channel_reuse,
        "b2's RF must be k*t, as derived by hand in the paper"
    );

    // Step 2 — software fault models for every census category.
    println!("\nderived software fault models:");
    for (category, frac) in cfg.census.iter() {
        if let Some(model) = model_for(category, &cfg) {
            println!(
                "  {:<34} ({:>4.1}%)  {:?}",
                category.to_string(),
                frac * 100.0,
                model
            );
        }
    }

    // Step 3 — a small campaign + FIT rate on a CNN.
    let workload = fidelity::workloads::classification_suite(7).remove(2); // mobilenet
    let engine = Engine::new(
        workload.network,
        Precision::Fp16,
        std::slice::from_ref(&workload.inputs),
    )?;
    let trace = engine.trace(&workload.inputs)?;
    let spec = CampaignSpec {
        samples_per_cell: 80,
        seed: 3,
        ..CampaignSpec::default()
    };
    let analysis = analyze(
        &engine,
        &trace,
        &cfg,
        &TopOneMatch,
        PAPER_RAW_FIT_PER_MB,
        &spec,
    )?;
    println!(
        "\nmobilenet on the Eyeriss-like design: FIT = {:.2} (datapath {:.2}, local {:.3}, global {:.2})",
        analysis.fit.total, analysis.fit.datapath, analysis.fit.local, analysis.fit.global
    );
    println!("\nThe same framework, two different dataflows — only the RFA inputs changed.");
    Ok(())
}
