//! Sensitivity analysis: FIdelity's inputs are *estimates* early in the
//! design process (the paper, Sec. III: "estimated values can be varied for
//! sensitivity analysis to obtain resilience bounds"). This example sweeps
//! three of them — the FF census split, the raw FIT rate, and the MAC
//! geometry — and reports FIT-rate bounds.
//!
//! ```sh
//! cargo run --release --example sensitivity_sweep
//! ```

use fidelity::accel::{DataflowKind, NvdlaDataflow};
use fidelity::core::analysis::analyze;
use fidelity::core::campaign::CampaignSpec;
use fidelity::core::fit::PAPER_RAW_FIT_PER_MB;
use fidelity::core::outcome::TopOneMatch;
use fidelity::dnn::graph::Engine;
use fidelity::dnn::precision::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = CampaignSpec {
        samples_per_cell: 60,
        seed: 2,
        ..CampaignSpec::default()
    };

    // Sweep 1: raw FF FIT rate (technology node / environment).
    println!("sweep 1 — raw FF FIT rate (scales Eq. 2 linearly):");
    let base = run_once(
        fidelity::accel::presets::nvdla_like(),
        &spec,
        PAPER_RAW_FIT_PER_MB,
    )?;
    for raw in [150.0, 300.0, 600.0, 1200.0] {
        let fit = base * raw / PAPER_RAW_FIT_PER_MB;
        println!("  raw = {raw:>6} FIT/MB  ->  Accelerator_FIT_rate = {fit:.2}");
    }

    // Sweep 2: total FF count estimate (±50% around the preset).
    println!("\nsweep 2 — total flip-flop count estimate:");
    for scale in [0.5f64, 1.0, 1.5] {
        let mut cfg = fidelity::accel::presets::nvdla_like();
        cfg.total_ff_bits = (cfg.total_ff_bits as f64 * scale) as u64;
        let fit = run_once(cfg, &spec, PAPER_RAW_FIT_PER_MB)?;
        println!("  {:>4.1}x FFs  ->  FIT = {fit:.2}", scale);
    }

    // Sweep 3: MAC geometry (lanes × weight hold) — changes the reuse
    // factors and therefore the fault models themselves.
    println!("\nsweep 3 — MAC geometry (reuse factors change the fault models):");
    for (lanes, hold) in [(8usize, 8usize), (16, 16), (32, 32)] {
        let mut cfg = fidelity::accel::presets::nvdla_like();
        cfg.dataflow = DataflowKind::Nvdla(NvdlaDataflow {
            lanes,
            weight_hold: hold,
        });
        let fit = run_once(cfg, &spec, PAPER_RAW_FIT_PER_MB)?;
        println!("  lanes = {lanes:>2}, hold = {hold:>2}  ->  FIT = {fit:.2}");
    }

    println!("\nTakeaway: the FIT rate scales linearly in raw rate and FF count, and is");
    println!("mildly sensitive to geometry (higher reuse -> more neurons per fault, but");
    println!("each fault is also more likely to be detected by the correctness metric).");
    Ok(())
}

fn run_once(
    cfg: fidelity::accel::AcceleratorConfig,
    spec: &CampaignSpec,
    raw: f64,
) -> Result<f64, Box<dyn std::error::Error>> {
    let workload = fidelity::workloads::classification_suite(42).remove(1); // resnet
    let engine = Engine::new(
        workload.network,
        Precision::Fp16,
        std::slice::from_ref(&workload.inputs),
    )?;
    let trace = engine.trace(&workload.inputs)?;
    let analysis = analyze(&engine, &trace, &cfg, &TopOneMatch, raw, spec)?;
    Ok(analysis.fit.total)
}
