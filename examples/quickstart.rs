//! Quickstart: derive software fault models for an NVDLA-like accelerator,
//! run a fault-injection campaign on a CNN, and compute its FIT rate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fidelity::core::analysis::analyze;
use fidelity::core::campaign::{wilson_interval, CampaignSpec};
use fidelity::core::fit::{
    ff_fit_budget, ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION, PAPER_RAW_FIT_PER_MB,
};
use fidelity::core::outcome::TopOneMatch;
use fidelity::dnn::graph::Engine;
use fidelity::dnn::precision::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the accelerator — no RTL needed, just block-diagram facts:
    //    MAC geometry, FF census, bandwidths (here: the NVDLA-like preset the
    //    paper validates).
    let accel = fidelity::accel::presets::nvdla_like();
    accel.validate()?;
    println!(
        "accelerator: {} ({} MAC lanes, {:.2} MB of flip-flops)",
        accel.name,
        accel.dataflow.lanes(),
        accel.ff_megabytes()
    );

    // 2. Deploy a workload at FP16.
    let workload = fidelity::workloads::classification_suite(42).remove(0);
    println!("workload:    {} (image classification)", workload.name);
    let engine = Engine::new(
        workload.network,
        Precision::Fp16,
        std::slice::from_ref(&workload.inputs),
    )?;
    let trace = engine.trace(&workload.inputs)?;

    // 3. Run the FIdelity flow: activeness analysis, software fault-injection
    //    campaign over every MAC layer × FF category, then Eq. 2.
    let spec = CampaignSpec {
        samples_per_cell: 100,
        seed: 1,
        ..CampaignSpec::default()
    };
    let analysis = analyze(
        &engine,
        &trace,
        &accel,
        &TopOneMatch,
        PAPER_RAW_FIT_PER_MB,
        &spec,
    )?;

    println!(
        "\ncampaign:    {} injections",
        analysis.campaign.total_samples()
    );
    for cell in analysis.campaign.cells.iter().take(7) {
        let (lo, hi) = wilson_interval(cell.masked, cell.samples.max(1));
        println!(
            "  {:<28} {:<34} Prob_SWmask = {:.2} (95% CI {:.2}–{:.2})",
            cell.layer,
            cell.category.to_string(),
            cell.prob_swmask(),
            lo,
            hi
        );
    }
    println!("  ... ({} cells total)", analysis.campaign.cells.len());

    // 4. The resilience verdict.
    let fit = &analysis.fit;
    let budget = ff_fit_budget(ASIL_D_CHIPSET_FIT, NVDLA_FF_AREA_FRACTION);
    println!("\nAccelerator_FIT_rate = {:.2}", fit.total);
    println!(
        "  datapath: {:.2}   local control: {:.3}   global control: {:.2}",
        fit.datapath, fit.local, fit.global
    );
    println!(
        "  ASIL-D FF budget is {budget}; this deployment is {:.0}x over — unprotected FFs are not safe for automotive use (Key result 1).",
        fit.total / budget
    );
    Ok(())
}
